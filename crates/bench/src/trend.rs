//! Bench-trend regression checking: compares freshly produced
//! `BENCH_*.json` artifacts against checked-in baselines and flags
//! speedup regressions.
//!
//! The artifacts are the machine-readable output of
//! [`write_bench_artifact`](crate::write_bench_artifact) (schema:
//! `{bench, config, points:[{size, base_us, fast_us, speedup}]}`), and
//! baselines under `bench/baselines/` are verbatim copies of past
//! artifacts — so this module carries its own minimal parser for exactly
//! that shape (the build is offline; no serde). Comparison is by
//! *speedup ratio*, not absolute latency: wall-clock shifts with the host,
//! but "how much faster is the fast path than the baseline measured on the
//! same host" is the quantity the optimizations exist to protect.

use std::path::{Path, PathBuf};

/// One `(size, speedup)` measurement parsed from an artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Workload size of the point.
    pub size: u64,
    /// `base_us / fast_us` at that size.
    pub speedup: f64,
}

/// A parsed benchmark artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The producing bench binary's name (`"exec_scale"`, …).
    pub bench: String,
    /// The measured points, in file order.
    pub points: Vec<TrendPoint>,
}

fn extract_string(text: &str, key: &str) -> Option<String> {
    let pos = text.find(&format!("\"{key}\""))?;
    let after = &text[pos + key.len() + 2..];
    let start = after.find('"')? + 1;
    let end = start + after[start..].find('"')?;
    Some(after[start..end].to_string())
}

fn extract_number(object: &str, key: &str) -> Option<f64> {
    let pos = object.find(&format!("\"{key}\""))?;
    let after = object[pos + key.len() + 2..].trim_start();
    let value = after.strip_prefix(':')?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

/// Parses one artifact.
///
/// # Errors
///
/// Returns a description of the first structural problem: missing `bench`
/// field, a point without `size`/`speedup`, or an unterminated point.
pub fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let bench = extract_string(text, "bench").ok_or("artifact missing \"bench\" field")?;
    let mut points = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"size\"") {
        rest = &rest[pos..];
        let end = rest.find('}').ok_or("unterminated point object")?;
        let object = &rest[..end];
        let size = extract_number(object, "size").ok_or("point missing \"size\"")? as u64;
        let speedup = extract_number(object, "speedup").ok_or("point missing \"speedup\"")?;
        points.push(TrendPoint { size, speedup });
        rest = &rest[end..];
    }
    Ok(Artifact { bench, points })
}

/// One point whose fresh speedup fell below the allowed fraction of its
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload size of the regressed point.
    pub size: u64,
    /// The committed baseline speedup.
    pub baseline: f64,
    /// The freshly measured speedup.
    pub fresh: f64,
    /// The minimum the fresh run had to reach (`baseline * (1 - pct/100)`).
    pub floor: f64,
}

/// Result of comparing one fresh artifact against its baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Points that regressed beyond the tolerance.
    pub regressions: Vec<Regression>,
    /// Baseline sizes the fresh artifact did not measure (compared sizes
    /// are the intersection; these are reported so a knob edit that
    /// silently shrinks coverage is visible).
    pub missing_sizes: Vec<u64>,
    /// Sizes compared and found within tolerance.
    pub ok_points: usize,
}

/// Compares `fresh` against `baseline`: every baseline size the fresh run
/// also measured must reach at least `(1 - max_regression_pct/100)` of the
/// baseline speedup.
pub fn compare(baseline: &Artifact, fresh: &Artifact, max_regression_pct: f64) -> Comparison {
    let keep = (1.0 - max_regression_pct / 100.0).max(0.0);
    let mut out = Comparison::default();
    for base_point in &baseline.points {
        match fresh.points.iter().find(|p| p.size == base_point.size) {
            Some(fresh_point) => {
                let floor = base_point.speedup * keep;
                if fresh_point.speedup < floor {
                    out.regressions.push(Regression {
                        size: base_point.size,
                        baseline: base_point.speedup,
                        fresh: fresh_point.speedup,
                        floor,
                    });
                } else {
                    out.ok_points += 1;
                }
            }
            None => out.missing_sizes.push(base_point.size),
        }
    }
    out
}

/// Lists the `BENCH_*.json` files in `dir`, sorted by name (empty when the
/// directory does not exist).
pub fn artifact_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "exec_scale",
  "config": {
    "threads": "4",
    "conflict_pct": "0"
  },
  "points": [
    {"size": 128, "base_us": 1000.000, "fast_us": 250.000, "speedup": 4.000},
    {"size": 512, "base_us": 4000.000, "fast_us": 500.000, "speedup": 8.000}
  ]
}
"#;

    #[test]
    fn parses_the_writer_schema() {
        let artifact = parse_artifact(SAMPLE).unwrap();
        assert_eq!(artifact.bench, "exec_scale");
        assert_eq!(
            artifact.points,
            vec![TrendPoint { size: 128, speedup: 4.0 }, TrendPoint { size: 512, speedup: 8.0 }]
        );
    }

    #[test]
    fn parses_what_write_bench_artifact_emits() {
        // Round-trip against the real writer so the two halves of the
        // pipeline cannot drift: writer output must always parse.
        let dir = std::env::temp_dir().join(format!("sereth-trend-roundtrip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let point = crate::BenchPoint::from_durations(
            64,
            std::time::Duration::from_micros(900),
            std::time::Duration::from_micros(300),
        );
        let path = crate::write_bench_artifact_in(&dir, "trendtest", "val_scale", &[], &[point]).unwrap();
        let artifact = parse_artifact(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(artifact.bench, "val_scale");
        assert_eq!(artifact.points.len(), 1);
        assert_eq!(artifact.points[0].size, 64);
        assert!((artifact.points[0].speedup - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_artifacts_without_a_bench_name() {
        assert!(parse_artifact("{\"points\": []}").is_err());
    }

    #[test]
    fn compare_flags_only_points_beyond_tolerance() {
        let baseline = parse_artifact(SAMPLE).unwrap();
        let fresh = Artifact {
            bench: "exec_scale".into(),
            points: vec![
                // 4.0 → 2.5 is a 37.5% regression: within a 50% budget.
                TrendPoint { size: 128, speedup: 2.5 },
                // 8.0 → 3.0 is a 62.5% regression: flagged.
                TrendPoint { size: 512, speedup: 3.0 },
            ],
        };
        let comparison = compare(&baseline, &fresh, 50.0);
        assert_eq!(comparison.ok_points, 1);
        assert_eq!(comparison.missing_sizes, Vec::<u64>::new());
        assert_eq!(comparison.regressions.len(), 1);
        let regression = &comparison.regressions[0];
        assert_eq!(regression.size, 512);
        assert_eq!(regression.baseline, 8.0);
        assert_eq!(regression.fresh, 3.0);
        assert!((regression.floor - 4.0).abs() < 1e-9);
    }

    #[test]
    fn compare_reports_sizes_the_fresh_run_skipped() {
        let baseline = parse_artifact(SAMPLE).unwrap();
        let fresh =
            Artifact { bench: "exec_scale".into(), points: vec![TrendPoint { size: 128, speedup: 4.0 }] };
        let comparison = compare(&baseline, &fresh, 25.0);
        assert_eq!(comparison.missing_sizes, vec![512]);
        assert_eq!(comparison.ok_points, 1);
        assert!(comparison.regressions.is_empty());
    }

    #[test]
    fn improvement_and_equality_never_flag() {
        let baseline = parse_artifact(SAMPLE).unwrap();
        let comparison = compare(&baseline, &baseline, 0.0);
        assert!(comparison.regressions.is_empty());
        assert_eq!(comparison.ok_points, 2);
    }
}
