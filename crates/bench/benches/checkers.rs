//! Benchmarks for the post-hoc machinery added around the paper's core:
//! the committed-history checkers (`sereth-consistency`) and the PWV
//! dependency scheduler (EXT-PWV). Both must stay cheap enough to run on
//! every simulated block / audit pass, so their costs are tracked here
//! alongside the HMS microbenches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sereth_chain::state::StateDb;
use sereth_chain::txpool::TxPool;
use sereth_consistency::record::{History, MarketOp, MarketSpec, TxRecord};
use sereth_consistency::{seqcon, sss};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{buy_selector, default_contract_address, sereth_genesis_slots, set_selector};
use sereth_node::miner::{order_candidates, MinerPolicy};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

fn bench_spec() -> MarketSpec {
    MarketSpec {
        contract: default_contract_address(),
        set_selector: set_selector(),
        buy_selector: buy_selector(),
        set_ok_topic: H256::from_low_u64(1),
        buy_ok_topic: H256::from_low_u64(2),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(50),
    }
}

/// A valid history of `sets` intervals with `buys_per_interval` effective
/// buys each, plus one stale no-op buy per interval.
fn synthetic_history(sets: usize, buys_per_interval: usize) -> History {
    let mut tail = genesis_mark();
    let mut records = Vec::new();
    let mut n = 0u64;
    let mut push = |op: MarketOp, effective: bool, sender: u64, n: &mut u64| {
        records.push(TxRecord {
            tx_hash: H256::keccak(&n.to_be_bytes()),
            sender: Address::from_low_u64(sender),
            nonce: *n,
            block_number: 1 + *n / 50,
            index_in_block: (*n % 50) as u32,
            op,
            effective,
        });
        *n += 1;
    };
    for i in 0..sets {
        let value = H256::from_low_u64(100 + i as u64);
        let fpv = Fpv::new(Flag::Success, tail, value);
        tail = compute_mark(&tail, &value);
        push(MarketOp::Set(fpv), true, 1, &mut n);
        for b in 0..buys_per_interval {
            push(MarketOp::Buy(Fpv::new(Flag::Success, tail, value)), true, 100 + b as u64, &mut n);
        }
        push(MarketOp::Buy(Fpv::new(Flag::Success, H256::keccak(b"stale"), value)), false, 200, &mut n);
    }
    History::from_records(records)
}

fn bench_checkers(c: &mut Criterion) {
    let spec = bench_spec();
    let mut group = c.benchmark_group("consistency_check");
    for &(sets, buys) in &[(100usize, 9usize), (1_000, 9), (10_000, 9)] {
        let history = synthetic_history(sets, buys);
        group.bench_with_input(BenchmarkId::new("sss", history.len()), &history, |b, history| {
            b.iter(|| {
                let report = sss::check(&spec, black_box(history));
                assert!(report.holds());
                report
            })
        });
        group.bench_with_input(BenchmarkId::new("seqcon", history.len()), &history, |b, history| {
            b.iter(|| seqcon::check(black_box(history)))
        });
    }
    group.finish();
}

/// Builds a pool of `sets` chained sets plus `buys` committed-interval
/// buys, against genesis state.
fn pwv_fixture(sets: usize, buys: usize) -> (TxPool, StateDb, Address) {
    let contract = default_contract_address();
    let owner = SecretKey::from_label(1);
    let state = sereth_chain::genesis::GenesisBuilder::new()
        .contract_with_storage(
            contract,
            sereth_vm::exec::ContractCode::None,
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build()
        .state;

    let pool = TxPool::new();
    let mut arrival = 0u64;
    let m0 = genesis_mark();
    for b in 0..buys {
        let buyer = SecretKey::from_label(1_000 + b as u64);
        let fpv = Fpv::new(Flag::Success, m0, H256::from_low_u64(50));
        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(contract),
                value: U256::ZERO,
                input: fpv.to_calldata(buy_selector()),
            },
            &buyer,
        );
        pool.insert(tx, arrival).unwrap();
        arrival += 1;
    }
    let mut prev = m0;
    for i in 0..sets {
        let value = H256::from_low_u64(100 + i as u64);
        let flag = if i == 0 { Flag::Head } else { Flag::Success };
        let fpv = Fpv::new(flag, prev, value);
        prev = compute_mark(&prev, &value);
        let tx = Transaction::sign(
            TxPayload {
                nonce: i as u64,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(contract),
                value: U256::ZERO,
                input: fpv.to_calldata(set_selector()),
            },
            &owner,
        );
        pool.insert(tx, arrival).unwrap();
        arrival += 1;
    }
    (pool, state, contract)
}

fn bench_pwv_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("miner_order");
    for &(sets, buys) in &[(10usize, 90usize), (50, 450), (100, 900)] {
        let (pool, state, contract) = pwv_fixture(sets, buys);
        group.bench_with_input(BenchmarkId::new("pwv", sets + buys), &pool, |b, pool| {
            b.iter(|| order_candidates(black_box(pool), &state.view(), &contract, &MinerPolicy::Pwv))
        });
        group.bench_with_input(BenchmarkId::new("standard", sets + buys), &pool, |b, pool| {
            b.iter(|| order_candidates(black_box(pool), &state.view(), &contract, &MinerPolicy::Standard))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers, bench_pwv_scheduler);
criterion_main!(benches);
