//! Substrate micro-benchmarks: keccak throughput, the interpreter on the
//! Sereth contract bytecode vs the native contract, TxPool operations,
//! and state-root computation — the building blocks whose costs bound the
//! simulation's fidelity-per-second.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sereth_chain::txpool::TxPool;
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::keccak::keccak256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::exec::{CallEnv, MemStorage, Storage};
use sereth_vm::raa::{execute_call, RaaRegistry};

fn bench_keccak(c: &mut Criterion) {
    let mut group = c.benchmark_group("keccak256");
    for &size in &[32usize, 136, 1_024, 16_384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| keccak256(black_box(data)))
        });
    }
    group.finish();
}

fn bench_contract_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("sereth_set_call");
    let contract = default_contract_address();
    let calldata = Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(60)).to_calldata(set_selector());
    for (label, form) in [("native", ContractForm::Native), ("bytecode", ContractForm::Bytecode)] {
        let code = sereth_code(form);
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut storage = MemStorage::new();
                    for (k, v) in sereth_genesis_slots(&Address::from_low_u64(1), H256::from_low_u64(50)) {
                        storage.storage_set(&contract, k, v);
                    }
                    storage
                },
                |mut storage| {
                    let env = CallEnv::test_env(Address::from_low_u64(2), contract, calldata.clone());
                    execute_call(&code, env, &mut storage, 10_000_000, &RaaRegistry::new())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_txpool(c: &mut Criterion) {
    let keys: Vec<SecretKey> = (0..64).map(SecretKey::from_label).collect();
    let txs: Vec<Transaction> = (0..512)
        .map(|i| {
            Transaction::sign(
                TxPayload {
                    nonce: (i / 64) as u64,
                    gas_price: 1 + (i % 7) as u64,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64(1)),
                    value: U256::ZERO,
                    input: Bytes::new(),
                },
                &keys[i % 64],
            )
        })
        .collect();

    let mut group = c.benchmark_group("txpool");
    group.bench_function("insert_512", |b| {
        b.iter_batched(
            TxPool::new,
            |pool| {
                for (i, tx) in txs.iter().enumerate() {
                    let _ = pool.insert(tx.clone(), i as u64);
                }
                pool
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let pool = TxPool::new();
    for (i, tx) in txs.iter().enumerate() {
        let _ = pool.insert(tx.clone(), i as u64);
    }
    group.bench_function("ready_by_price_512", |b| b.iter(|| black_box(&pool).ready_by_price(|_| 0)));
    group.bench_function("pending_by_arrival_512", |b| b.iter(|| black_box(&pool).pending_by_arrival()));
    group.finish();
}

fn bench_state_root(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_root");
    for &accounts in &[16usize, 128, 1_024] {
        let mut builder = sereth_chain::genesis::GenesisBuilder::new();
        for i in 0..accounts {
            let addr = Address::from_low_u64(i as u64);
            builder = builder.fund(addr, U256::from(i as u64)).contract_with_storage(
                addr,
                sereth_vm::exec::ContractCode::None,
                [(H256::from_low_u64(1), H256::from_low_u64(i as u64))],
            );
        }
        let state = builder.build().state;
        group.bench_with_input(BenchmarkId::from_parameter(accounts), &state, |b, state| {
            b.iter(|| black_box(state).state_root())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_keccak, bench_contract_forms, bench_txpool, bench_state_root);
criterion_main!(benches);
