//! HMS micro-benchmarks (ABL-OVERHEAD in DESIGN.md): the paper's §III-C
//! claims "the overhead of HMS is relatively small" thanks to the
//! signature filter; these benches quantify PROCESS and SERIES over pool
//! sizes from 10² to 10⁴, plus the recursive-vs-dynamic-program ablation
//! for DEEPESTBRANCH.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sereth_bench::pool_with_chain;
use sereth_core::hms::{hash_mark_set, HmsConfig};
use sereth_core::mark::genesis_mark;
use sereth_core::process::process;
use sereth_core::series::SeriesGraph;
use sereth_crypto::hash::H256;
use sereth_node::contract::{default_contract_address, set_selector};

fn bench_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("hms_process");
    for &(chain, noise) in &[(10usize, 90usize), (100, 900), (1_000, 9_000)] {
        let pool = pool_with_chain(chain, noise);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{}tx_{}pct_hms",
                chain + noise,
                100 * chain / (chain + noise)
            )),
            &pool,
            |b, pool| b.iter(|| process(black_box(pool), &default_contract_address(), set_selector())),
        );
    }
    group.finish();
}

fn bench_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("hms_series");
    for &len in &[10usize, 100, 1_000] {
        let pool = pool_with_chain(len, 0);
        let nodes = process(&pool, &default_contract_address(), set_selector());
        group.bench_with_input(BenchmarkId::new("build", len), &nodes, |b, nodes| {
            b.iter(|| SeriesGraph::build(black_box(nodes.clone()), None))
        });
        let graph = SeriesGraph::build(nodes, None);
        group.bench_with_input(BenchmarkId::new("longest_dp", len), &graph, |b, graph| {
            b.iter(|| black_box(graph).longest_series())
        });
        group.bench_with_input(BenchmarkId::new("longest_recursive_paper", len), &graph, |b, graph| {
            b.iter(|| black_box(graph).longest_series_recursive())
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("hms_hash_mark_set");
    for &(chain, noise) in &[(20usize, 180usize), (200, 1_800)] {
        let pool = pool_with_chain(chain, noise);
        let committed = (genesis_mark(), H256::from_low_u64(50));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}tx", chain + noise)),
            &pool,
            |b, pool| {
                b.iter(|| {
                    hash_mark_set(
                        black_box(pool),
                        &default_contract_address(),
                        set_selector(),
                        committed,
                        &HmsConfig::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_process, bench_series, bench_end_to_end);
criterion_main!(benches);
