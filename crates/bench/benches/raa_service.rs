//! RAA read-path scaling: recompute-per-query (the paper-literal
//! `HmsRaaProvider`) vs. the incremental `sereth-raa` view service, as
//! the pool grows. The recompute path pays O(pool) per read to filter
//! the snapshot; the service pays O(events) once and O(1) per clean
//! read — the gap is the point of the `sereth-raa` subsystem.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sereth_bench::{market_txpool, PoolSource};
use sereth_core::hms::HmsConfig;
use sereth_core::mark::genesis_mark;
use sereth_core::provider::HmsRaaProvider;
use sereth_crypto::hash::H256;
use sereth_node::contract::set_selector;
use sereth_raa::{RaaConfig, RaaService};

fn bench_read_latency(c: &mut Criterion) {
    let markets = 16usize;
    let sets = 64usize;
    let committed = (genesis_mark(), H256::from_low_u64(50));
    let mut group = c.benchmark_group("raa_read");
    for &noise in &[0usize, 3_072, 15_360] {
        let (pool, contracts) = market_txpool(markets, sets, noise);
        let pool_len = pool.len();

        let source = Arc::new(PoolSource { pool: Arc::new(pool.clone()), committed });
        let provider = HmsRaaProvider::new(source, set_selector(), HmsConfig::default());
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::new("recompute", pool_len), &(), |b, ()| {
            b.iter(|| {
                let contract = &contracts[next % contracts.len()];
                next += 1;
                black_box(provider.run(contract))
            })
        });

        let service = RaaService::new(RaaConfig::new(set_selector()));
        service.sync(&pool);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::new("service", pool_len), &(), |b, ()| {
            b.iter(|| {
                // The steady-state node path: a (no-op) event sync, then
                // the cached view.
                service.sync(&pool);
                let contract = &contracts[next % contracts.len()];
                next += 1;
                black_box(service.view(contract, committed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_latency);
criterion_main!(benches);
