//! The service's central invariant, property-tested: after ANY sequence
//! of pool events, [`RaaService::view`] is identical to batch
//! [`hash_mark_set`] over a snapshot of the same pool — for every
//! contract, under both HMS configs, and across the lag/resync path.

use proptest::prelude::*;
use sereth_chain::txpool::{PoolConfig, TxPool};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::hms::{hash_mark_set, HmsConfig};
use sereth_core::mark::genesis_mark;
use sereth_core::process::PendingTx;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_raa::{RaaConfig, RaaService};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::abi;

fn set_selector() -> abi::Selector {
    abi::selector("set(bytes32[3])")
}

fn contracts() -> [Address; 3] {
    [
        Address::from_low_u64(0x5e7e_0001),
        Address::from_low_u64(0x5e7e_0002),
        Address::from_low_u64(0x5e7e_0003),
    ]
}

/// One encoded pool operation; decoded against the running state so the
/// same tuple stream always replays identically.
///
/// `kind % 8`: 0..=4 insert a set, 5 inserts noise, 6 removes a pooled
/// tx, 7 commits a pooled tx (with same-sender stale collateral drops).
type RawOp = (u8, u8, u8, u8, u64, u8);

fn committed_for(contract: &Address) -> (H256, H256) {
    // Distinct committed AMVs per contract, so cross-contract mix-ups
    // would be caught.
    (genesis_mark(), H256::from_low_u64(50 + contract.as_bytes()[19] as u64))
}

/// Replays `ops` into a `TxPool`, syncing `service` every `sync_every`
/// operations, then checks the invariant for every contract.
fn replay_and_check(
    ops: &[RawOp],
    sync_every: usize,
    event_capacity: usize,
    config: &HmsConfig,
) -> Result<(), TestCaseError> {
    let pool = TxPool::with_config(PoolConfig { event_capacity, ..PoolConfig::default() });
    pool.subscribe();
    let service = RaaService::new(RaaConfig { shards: 4, set_selector: set_selector(), hms: config.clone() });

    // Marks seen per contract, so successor inserts can chain onto real
    // predecessors (the interesting graph shapes).
    let mut seen_marks: Vec<Vec<H256>> = vec![vec![genesis_mark()]; 3];
    let mut nonces: [u64; 8] = [0; 8];

    for (step, &(kind, contract_sel, sender_sel, flag_sel, value, prev_sel)) in ops.iter().enumerate() {
        let now = step as u64;
        let kind = kind % 8;
        match kind {
            0..=4 => {
                let market = contract_sel as usize % 3;
                let contract = contracts()[market];
                let key = SecretKey::from_label(10 + (sender_sel % 8) as u64);
                let sender = (sender_sel % 8) as usize;
                let flag = match flag_sel % 4 {
                    0 => Flag::Head.to_word(),
                    1 | 2 => Flag::Success.to_word(),
                    _ => H256::from_low_u64(0xbad), // rejected by Alg. 2
                };
                let prev = seen_marks[market][prev_sel as usize % seen_marks[market].len()];
                let fpv = Fpv { flag_word: flag, prev_mark: prev, value: H256::from_low_u64(value % 64) };
                let tx = Transaction::sign(
                    TxPayload {
                        nonce: nonces[sender],
                        gas_price: 1 + (value % 5),
                        gas_limit: 100_000,
                        to: Some(contract),
                        value: U256::ZERO,
                        input: fpv.to_calldata(set_selector()),
                    },
                    &key,
                );
                if pool.insert(tx, now).is_ok() {
                    nonces[sender] += 1;
                    let mark = sereth_core::compute_mark(&fpv.prev_mark, &fpv.value);
                    if !seen_marks[market].contains(&mark) {
                        seen_marks[market].push(mark);
                    }
                }
            }
            5 => {
                let key = SecretKey::from_label(200 + (sender_sel % 4) as u64);
                let sender = 4 + (sender_sel % 4) as usize;
                let tx = Transaction::sign(
                    TxPayload {
                        nonce: nonces[sender],
                        gas_price: 1,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0xee)),
                        value: U256::ZERO,
                        input: bytes::Bytes::new(),
                    },
                    &key,
                );
                if pool.insert(tx, now).is_ok() {
                    nonces[sender] += 1;
                }
            }
            6 | 7 => {
                let entries = pool.pending_by_arrival();
                if !entries.is_empty() {
                    let victim = entries[value as usize % entries.len()].tx.clone();
                    if kind == 6 {
                        pool.remove(&victim.hash());
                    } else {
                        pool.remove_committed([&victim]);
                    }
                }
            }
            _ => unreachable!("kind masked to 0..8"),
        }
        if sync_every > 0 && step % sync_every == 0 {
            service.sync(&pool);
        }
    }
    service.sync(&pool);

    // The oracle: batch Algorithm 1 over a full snapshot.
    let snapshot: Vec<PendingTx> = pool
        .pending_by_arrival()
        .into_iter()
        .map(|entry| PendingTx {
            hash: entry.tx.hash(),
            sender: entry.tx.sender(),
            to: entry.tx.to(),
            input: entry.tx.input().clone(),
            arrival_seq: entry.arrival_seq,
        })
        .collect();
    for contract in contracts() {
        let committed = committed_for(&contract);
        let expected = hash_mark_set(&snapshot, &contract, set_selector(), committed, config);
        let incremental = service.outcome(&contract, committed);
        prop_assert_eq!(expected.view, incremental.view, "view diverged for contract {:?}", contract);
        prop_assert_eq!(
            expected.series.len(),
            incremental.series.len(),
            "series diverged for contract {:?}",
            contract
        );
        for (a, b) in expected.series.iter().zip(incremental.series.iter()) {
            prop_assert_eq!(a, b);
        }
        // Repeat reads are cache hits and stay identical.
        prop_assert_eq!(service.view(&contract, committed), expected.view);
    }
    Ok(())
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u8>()),
        0..48,
    )
}

proptest! {
    // The acceptance bar is ≥ 1000 randomized sequences; run 1024 here
    // plus the dedicated config variants below.
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn incremental_view_equals_batch_hms(ops in ops_strategy(), sync_every in 1usize..6) {
        replay_and_check(&ops, sync_every, 16_384, &HmsConfig::default())?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn equivalence_holds_with_committed_head_extension(ops in ops_strategy(), sync_every in 1usize..6) {
        replay_and_check(&ops, sync_every, 16_384, &HmsConfig { committed_head: true })?;
    }

    #[test]
    fn equivalence_survives_event_buffer_lag(ops in ops_strategy()) {
        // A 4-event buffer forces the Lagged → full-resync path on
        // nearly every sync; correctness must not depend on the buffer.
        replay_and_check(&ops, 7, 4, &HmsConfig::default())?;
    }
}

#[test]
fn resync_metric_counts_lag_recoveries() {
    let pool = TxPool::with_config(PoolConfig { event_capacity: 2, ..PoolConfig::default() });
    pool.subscribe();
    let service = RaaService::new(RaaConfig::new(set_selector()));
    let key = SecretKey::from_label(1);
    for nonce in 0..6 {
        let tx = Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(contracts()[0]),
                value: U256::ZERO,
                input: Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(nonce))
                    .to_calldata(set_selector()),
            },
            &key,
        );
        pool.insert(tx, nonce).unwrap();
    }
    service.sync(&pool);
    let metrics = service.metrics();
    assert_eq!(metrics.resyncs, 1, "cursor 0 against a 2-event buffer must resync");
    assert_eq!(metrics.tracked_nodes, 6);
    // And the rebuilt state matches the oracle.
    let committed = committed_for(&contracts()[0]);
    let snapshot: Vec<PendingTx> = pool
        .pending_by_arrival()
        .into_iter()
        .map(|entry| PendingTx {
            hash: entry.tx.hash(),
            sender: entry.tx.sender(),
            to: entry.tx.to(),
            input: entry.tx.input().clone(),
            arrival_seq: entry.arrival_seq,
        })
        .collect();
    let expected =
        hash_mark_set(&snapshot, &contracts()[0], set_selector(), committed, &HmsConfig::default());
    assert_eq!(service.view(&contracts()[0], committed), expected.view);
}
