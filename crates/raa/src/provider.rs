//! The adapter wiring [`RaaService`] into the VM's RAA hook.
//!
//! [`ServiceRaaProvider`] is the drop-in replacement for the
//! recompute-per-query `HmsRaaProvider` in `sereth-core`: on each
//! read-only call it (1) lets its [`RaaDataSource`] push any new pool
//! events into the service, (2) reads the contract's committed AMV, and
//! (3) serves the cached incremental view — writing it into the call's
//! three argument words exactly as Fig. 1 activity R3 prescribes.

use std::sync::Arc;

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_vm::abi;
use sereth_vm::raa::{RaaProvider, RaaRequest};

use crate::service::RaaService;

/// The live node data the service adapter needs per query. `sereth-node`
/// implements this over its pool and chain; tests use fixtures.
pub trait RaaDataSource: Send + Sync {
    /// Pushes any new pool events into `service` — typically by briefly
    /// locking the node and calling [`RaaService::sync`] with its pool.
    fn sync(&self, service: &RaaService);

    /// The committed `(mark, value)` of `contract` at the canonical
    /// head.
    fn committed(&self, contract: &Address) -> (H256, H256);
}

/// An [`RaaProvider`] backed by the incremental [`RaaService`].
pub struct ServiceRaaProvider {
    service: Arc<RaaService>,
    source: Arc<dyn RaaDataSource>,
}

impl ServiceRaaProvider {
    /// Builds the adapter over a shared service and its data source.
    pub fn new(service: Arc<RaaService>, source: Arc<dyn RaaDataSource>) -> Self {
        Self { service, source }
    }

    /// The underlying service (e.g. for metrics inspection).
    pub fn service(&self) -> &Arc<RaaService> {
        &self.service
    }
}

impl RaaProvider for ServiceRaaProvider {
    fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes> {
        self.source.sync(&self.service);
        let committed = self.source.committed(&request.contract);
        let view = self.service.view(&request.contract, committed);
        let words = view.to_words();
        // Write the view into the three argument words (Fig. 1, R3).
        let with_hint = abi::replace_arg_word(request.calldata, 0, words[0])?;
        let with_mark = abi::replace_arg_word(&with_hint, 1, words[1])?;
        abi::replace_arg_word(&with_mark, 2, words[2])
    }
}

impl core::fmt::Debug for ServiceRaaProvider {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServiceRaaProvider").field("service", &self.service).finish()
    }
}
