//! **`sereth-raa`** — an incremental, concurrent RAA view service.
//!
//! The paper's RAA data service (Fig. 1, activities R1–R3) answers
//! read-only `get`/`mark` calls with READ-UNCOMMITTED views computed by
//! Hash-Mark-Set. The baseline provider in `sereth-core` recomputes
//! Algorithm 1 from a full pool snapshot on **every** query — O(pool)
//! work per read, which collapses once many clients hammer many markets
//! over a large pool.
//!
//! This crate replaces that hot path with an event-driven service:
//!
//! 1. **Pool events** — `sereth-chain`'s `TxPool` publishes an ordered
//!    [`PoolEvent`](sereth_chain::txpool::PoolEvent) stream
//!    (`Inserted` / `Removed` / `Committed`) through a bounded,
//!    cursor-based subscription API.
//! 2. **[`RaaService`]** — a shard-per-contract-group cache that applies
//!    those events to per-contract filtered series (Algorithm 2's output,
//!    maintained incrementally) and rebuilds a contract's series graph
//!    only when that contract's own transactions changed. Reads are
//!    `RwLock`-read-cheap and O(1) on a clean cache; registry-backed
//!    [`metrics`](RaaMetrics) (`raa.*` telemetry counters) expose
//!    hit/rebuild/staleness counts.
//! 3. **[`ServiceRaaProvider`]** — the adapter that plugs the service
//!    into the VM's RAA hook ([`sereth_vm::raa::RaaProvider`]), replacing
//!    the recompute-per-query provider in `sereth-node`.
//!
//! # Invariants
//!
//! * **Equivalence.** For any pool reachable by any event sequence,
//!   [`RaaService::view`] equals batch
//!   [`hash_mark_set`](sereth_core::hash_mark_set) over a snapshot of
//!   that pool — both funnel into
//!   [`outcome_from_nodes`](sereth_core::outcome_from_nodes) over the
//!   same filtered, arrival-ordered node list (property-tested in
//!   `tests/equivalence.rs` across randomized event sequences).
//! * **Lag safety.** If a subscriber's cursor falls off the bounded
//!   event buffer, the service rebuilds from a full snapshot instead of
//!   serving silently wrong views (`resyncs` metric counts these).
//! * **Monotone cursor.** Events apply in sequence order under a single
//!   sync lock; shard locks are only held per-contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod provider;
pub mod service;

pub use metrics::RaaMetrics;
pub use provider::{RaaDataSource, ServiceRaaProvider};
pub use service::{RaaConfig, RaaService};
