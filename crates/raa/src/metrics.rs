//! Service observability: registry-backed counters, aggregated on read.
//!
//! Counters are telemetry [`Counter`]s (relaxed atomics) — they are
//! monotone event counts with no cross-counter invariants, so readers
//! may observe a torn aggregate mid-update; that is fine for
//! monitoring. Because they live in a telemetry registry (named
//! `raa.*`), a node-wide snapshot and the Prometheus/JSON exporters
//! carry them without the service summing anything itself.

use sereth_telemetry::{Counter, Telemetry};

/// The service's counters, registered as `raa.*` in a telemetry
/// registry (updated lock-free on the read and event paths).
#[derive(Debug, Clone)]
pub(crate) struct RaaCounters {
    /// Views served straight from a clean cache.
    pub(crate) hits: Counter,
    /// Views that had to rebuild the contract's series graph first.
    pub(crate) rebuilds: Counter,
    /// Pool events applied across shards.
    pub(crate) events: Counter,
    /// Events ignored because the transaction is not a tracked Sereth
    /// `set` (foreign traffic filtered by Algorithm 2).
    pub(crate) filtered: Counter,
    /// Full resynchronisations after event-buffer lag.
    pub(crate) resyncs: Counter,
}

impl RaaCounters {
    pub(crate) fn register(telemetry: &Telemetry) -> Self {
        Self {
            hits: telemetry.counter("raa.hits"),
            rebuilds: telemetry.counter("raa.rebuilds"),
            events: telemetry.counter("raa.events_applied"),
            filtered: telemetry.counter("raa.events_filtered"),
            resyncs: telemetry.counter("raa.resyncs"),
        }
    }
}

/// A point-in-time aggregate of the service's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaaMetrics {
    /// Views served from a clean cache (no graph work).
    pub hits: u64,
    /// Views that rebuilt a contract's series graph.
    pub rebuilds: u64,
    /// Pool events applied across all shards.
    pub events_applied: u64,
    /// Events dropped by the Algorithm 2 filter.
    pub events_filtered: u64,
    /// Full resynchronisations after event-buffer lag.
    pub resyncs: u64,
    /// Contracts currently holding a cache entry.
    pub tracked_contracts: u64,
    /// Filtered `set` transactions currently cached across contracts.
    pub tracked_nodes: u64,
}

impl RaaMetrics {
    /// Fraction of views served without graph work (`hits / views`), or
    /// 1.0 when nothing was read yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.rebuilds;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl core::fmt::Display for RaaMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "raa: {} hits / {} rebuilds ({:.1}% hit), {} events (+{} filtered), \
             {} resyncs, {} contracts, {} nodes",
            self.hits,
            self.rebuilds,
            self.hit_rate() * 100.0,
            self.events_applied,
            self.events_filtered,
            self.resyncs,
            self.tracked_contracts,
            self.tracked_nodes,
        )
    }
}
