//! Service observability: per-shard counters, aggregated on read.
//!
//! Counters are plain relaxed atomics — they are monotone event counts
//! with no cross-counter invariants, so readers may observe a torn
//! aggregate mid-update; that is fine for monitoring.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard counters (updated lock-free on the read and event paths).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Views served straight from a clean cache.
    pub hits: AtomicU64,
    /// Views that had to rebuild the contract's series graph first.
    pub rebuilds: AtomicU64,
    /// Pool events applied to this shard.
    pub events: AtomicU64,
    /// Events ignored because the transaction is not a tracked Sereth
    /// `set` (foreign traffic filtered by Algorithm 2).
    pub filtered: AtomicU64,
}

impl ShardMetrics {
    pub(crate) fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn event(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn filter(&self) {
        self.filtered.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time aggregate of the service's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaaMetrics {
    /// Views served from a clean cache (no graph work).
    pub hits: u64,
    /// Views that rebuilt a contract's series graph.
    pub rebuilds: u64,
    /// Pool events applied across all shards.
    pub events_applied: u64,
    /// Events dropped by the Algorithm 2 filter.
    pub events_filtered: u64,
    /// Full resynchronisations after event-buffer lag.
    pub resyncs: u64,
    /// Contracts currently holding a cache entry.
    pub tracked_contracts: u64,
    /// Filtered `set` transactions currently cached across contracts.
    pub tracked_nodes: u64,
}

impl RaaMetrics {
    /// Fraction of views served without graph work (`hits / views`), or
    /// 1.0 when nothing was read yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.rebuilds;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl core::fmt::Display for RaaMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "raa: {} hits / {} rebuilds ({:.1}% hit), {} events (+{} filtered), \
             {} resyncs, {} contracts, {} nodes",
            self.hits,
            self.rebuilds,
            self.hit_rate() * 100.0,
            self.events_applied,
            self.events_filtered,
            self.resyncs,
            self.tracked_contracts,
            self.tracked_nodes,
        )
    }
}
