//! The incremental RAA view service.
//!
//! [`RaaService`] consumes the ordered [`PoolEvent`] stream of a
//! [`TxPool`] and maintains, per contract, the filtered Sereth `set`
//! list that Algorithm 2 (`PROCESS`) would produce over a snapshot —
//! keyed and ordered by pool arrival sequence. A query then only pays
//! for Algorithm 3/1 over **that contract's own transactions**, and only
//! when they changed since the last query; clean reads return a cached
//! view under a shard read-lock.
//!
//! Sharding is by contract address, so independent markets contend on
//! independent locks — the service-level analogue of the paper's
//! observation that independent managed state variables have independent
//! series.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sereth_chain::txpool::{PoolEvent, TxPool};
use sereth_core::hms::{HmsConfig, HmsOutcome, HmsView};
use sereth_core::outcome_from_nodes;
use sereth_core::process::{filter_one, PendingTx, TxnNode};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_telemetry::Telemetry;
use sereth_types::transaction::Transaction;
use sereth_vm::abi::Selector;

use crate::metrics::{RaaCounters, RaaMetrics};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct RaaConfig {
    /// Number of contract shards (locks). More shards, less read/write
    /// contention across independent markets.
    pub shards: usize,
    /// The Sereth `set` selector (Algorithm 2's SIGNATURE filter).
    pub set_selector: Selector,
    /// HMS extension toggles, applied identically to every contract.
    pub hms: HmsConfig,
}

impl RaaConfig {
    /// A default configuration for `set_selector` (8 shards, baseline
    /// HMS).
    pub fn new(set_selector: Selector) -> Self {
        Self { shards: 8, set_selector, hms: HmsConfig::default() }
    }
}

/// One contract's incrementally-maintained state.
#[derive(Debug, Default)]
struct ContractCache {
    /// Filtered `set` nodes in pool-arrival order — exactly what
    /// `process()` would return over a snapshot.
    nodes: BTreeMap<u64, TxnNode>,
    /// The committed `(mark, value)` the cached outcome was built with.
    committed: (H256, H256),
    /// The cached outcome; `None` means dirty (events arrived since).
    outcome: Option<HmsOutcome>,
}

#[derive(Debug, Default)]
struct Shard {
    contracts: HashMap<Address, ContractCache>,
    /// Tracked set-transaction hash → (contract, arrival_seq), so
    /// `Removed`/`Committed` events resolve in O(1).
    by_hash: HashMap<H256, (Address, u64)>,
}

/// The incremental, concurrent RAA view service (see crate docs).
pub struct RaaService {
    config: RaaConfig,
    shards: Vec<RwLock<Shard>>,
    counters: RaaCounters,
    /// Serialises event application; readers never take it.
    sync_cursor: Mutex<u64>,
}

impl RaaService {
    /// Builds a service from `config` (`config.shards` is clamped to at
    /// least 1) with its own (enabled) telemetry hub backing
    /// [`RaaService::metrics`].
    pub fn new(config: RaaConfig) -> Self {
        Self::with_telemetry(config, Arc::new(Telemetry::enabled()))
    }

    /// Builds a service recording into a shared `telemetry` hub — what
    /// a node does so `raa.*` counters land in the node-wide registry.
    /// With a disabled hub, [`RaaService::metrics`] counters read as
    /// zero (the `tracked_*` cache sizes still report).
    pub fn with_telemetry(config: RaaConfig, telemetry: Arc<Telemetry>) -> Self {
        let shard_count = config.shards.max(1);
        Self {
            config,
            shards: (0..shard_count).map(|_| RwLock::new(Shard::default())).collect(),
            counters: RaaCounters::register(&telemetry),
            sync_cursor: Mutex::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &RaaConfig {
        &self.config
    }

    fn shard_index(&self, contract: &Address) -> usize {
        (sereth_crypto::hash::fnv1a_64(contract.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Applies every pool event since the service's cursor. On
    /// [`EventLag`](sereth_chain::txpool::EventLag) the service rebuilds
    /// from a full snapshot (counted in
    /// [`RaaMetrics::resyncs`]).
    pub fn sync(&self, pool: &TxPool) {
        let mut cursor = self.sync_cursor.lock();
        match pool.events_since(*cursor) {
            Ok(records) => {
                // Advance exactly past what was read: the pool is shared
                // with concurrent submitters now, so re-reading the head
                // cursor after the drain could skip events appended in
                // between.
                if let Some(last) = records.last() {
                    *cursor = last.seq + 1;
                }
                for record in records {
                    self.apply_event(&record.event);
                }
            }
            Err(_lag) => {
                *cursor = self.rebuild_from(pool);
                self.counters.resyncs.inc();
            }
        }
    }

    /// Drops every cache and re-ingests an atomic pool snapshot,
    /// returning the event cursor that immediately follows the snapshot
    /// (so applying later events to the rebuilt caches is gap-free).
    /// Public so integrators can force-reconcile (e.g. after swapping
    /// pools); the service's own cursor is **not** touched — use
    /// [`RaaService::sync`] for cursor management.
    pub fn rebuild_from(&self, pool: &TxPool) -> u64 {
        let (entries, cursor) = pool.snapshot_with_cursor();
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.contracts.clear();
            guard.by_hash.clear();
        }
        for entry in &entries {
            self.ingest(&entry.tx, entry.arrival_seq);
        }
        cursor
    }

    /// Applies a single pool event.
    pub fn apply_event(&self, event: &PoolEvent) {
        match event {
            PoolEvent::Inserted { tx, arrival_seq } => self.ingest(tx, *arrival_seq),
            PoolEvent::Removed { hash, to } | PoolEvent::Committed { hash, to } => {
                let Some(contract) = to else { return };
                let index = self.shard_index(contract);
                let mut shard = self.shards[index].write();
                let Some((owner, seq)) = shard.by_hash.remove(hash) else {
                    self.counters.filtered.inc();
                    return;
                };
                if let Some(cache) = shard.contracts.get_mut(&owner) {
                    cache.nodes.remove(&seq);
                    cache.outcome = None;
                    if cache.nodes.is_empty() {
                        // Keep the map bounded by *live* contracts: the
                        // empty-cache query path serves the committed
                        // view without an entry, so nothing is lost.
                        shard.contracts.remove(&owner);
                    }
                }
                self.counters.events.inc();
            }
        }
    }

    fn ingest(&self, tx: &Transaction, arrival_seq: u64) {
        let Some(contract) = tx.to() else { return };
        let index = self.shard_index(&contract);
        let pending = PendingTx {
            hash: tx.hash(),
            sender: tx.sender(),
            to: Some(contract),
            input: tx.input().clone(),
            arrival_seq,
        };
        let Some(node) = filter_one(&pending, &contract, self.config.set_selector) else {
            self.counters.filtered.inc();
            return;
        };
        let mut shard = self.shards[index].write();
        shard.by_hash.insert(pending.hash, (contract, arrival_seq));
        let cache = shard.contracts.entry(contract).or_default();
        cache.nodes.insert(arrival_seq, node);
        cache.outcome = None;
        self.counters.events.inc();
    }

    /// The READ-UNCOMMITTED view of `contract` given its committed
    /// `(mark, value)` — byte-identical to batch
    /// [`hash_mark_set`](sereth_core::hash_mark_set) over a pool
    /// snapshot at the service's cursor.
    pub fn view(&self, contract: &Address, committed: (H256, H256)) -> HmsView {
        self.outcome(contract, committed).view
    }

    /// Like [`RaaService::view`] but returns the full outcome, series
    /// included (what a semantic miner consumes).
    pub fn outcome(&self, contract: &Address, committed: (H256, H256)) -> HmsOutcome {
        let index = self.shard_index(contract);
        let counters = &self.counters;
        {
            let shard = self.shards[index].read();
            match shard.contracts.get(contract) {
                Some(cache) if cache.committed == committed => {
                    if let Some(outcome) = &cache.outcome {
                        counters.hits.inc();
                        return outcome.clone();
                    }
                }
                Some(_) => {}
                None => {
                    // Never saw a set for this contract: the filtered
                    // list is empty and Algorithm 1 line 4 serves the
                    // committed view. No cache entry is created, so
                    // foreign contracts cannot bloat the service.
                    counters.hits.inc();
                    return outcome_from_nodes(Vec::new(), committed, &self.config.hms);
                }
            }
        }

        let mut shard = self.shards[index].write();
        let Some(cache) = shard.contracts.get_mut(contract) else {
            counters.hits.inc();
            return outcome_from_nodes(Vec::new(), committed, &self.config.hms);
        };
        // Double-check under the write lock: another thread may have
        // rebuilt while we waited.
        if cache.committed == committed {
            if let Some(outcome) = &cache.outcome {
                counters.hits.inc();
                return outcome.clone();
            }
        }
        let nodes: Vec<TxnNode> = cache.nodes.values().cloned().collect();
        let outcome = outcome_from_nodes(nodes, committed, &self.config.hms);
        cache.committed = committed;
        cache.outcome = Some(outcome.clone());
        counters.rebuilds.inc();
        outcome
    }

    /// Aggregated counters, read back from the registry cells plus a
    /// walk of the shard caches for the `tracked_*` sizes.
    pub fn metrics(&self) -> RaaMetrics {
        let mut out = RaaMetrics {
            hits: self.counters.hits.get(),
            rebuilds: self.counters.rebuilds.get(),
            events_applied: self.counters.events.get(),
            events_filtered: self.counters.filtered.get(),
            resyncs: self.counters.resyncs.get(),
            ..Default::default()
        };
        for shard in &self.shards {
            let guard = shard.read();
            out.tracked_contracts += guard.contracts.len() as u64;
            out.tracked_nodes += guard.by_hash.len() as u64;
        }
        out
    }
}

impl core::fmt::Debug for RaaService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RaaService")
            .field("shards", &self.shards.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}
