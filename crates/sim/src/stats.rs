//! Summary statistics for experiment aggregation: means, confidence
//! intervals, percentiles, and the moving-average smoothing used to present
//! Figure 2 ("the lines are smoothed averages of the points shown, with the
//! shaded areas representing the 90 percent confidence interval").

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Unbiased sample standard deviation; 0 with fewer than two samples.
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 90 % confidence interval for the mean (normal
/// approximation, z = 1.645); 0 with fewer than two samples.
pub fn ci90_half_width(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    1.645 * std_dev(samples) / (samples.len() as f64).sqrt()
}

/// A `(mean, ci90)` summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// 90 % CI half-width.
    pub ci90: f64,
    /// Number of samples.
    pub n: usize,
}

/// Summarises `samples`.
pub fn summarize(samples: &[f64]) -> Summary {
    Summary { mean: mean(samples), ci90: ci90_half_width(samples), n: samples.len() }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`); 0 for empty input.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let frac = rank - low as f64;
        sorted[low] * (1.0 - frac) + sorted[high] * frac
    }
}

/// Centered moving average with the given window (odd windows recommended);
/// the ends shrink the window symmetrically, so output length equals input
/// length.
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() || window <= 1 {
        return series.to_vec();
    }
    let half = window / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(series.len() - 1);
            mean(&series[lo..=hi])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_set() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&samples) - 5.0).abs() < 1e-12);
        // Sample (n-1) std dev of this classic set is ~2.138.
        assert!((std_dev(&samples) - 2.138).abs() < 0.001);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(ci90_half_width(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn ci_narrows_with_more_samples() {
        let few = [1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        assert!(ci90_half_width(&many) < ci90_half_width(&few));
    }

    #[test]
    fn percentiles_interpolate() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn moving_average_smooths_and_preserves_length() {
        let series = [0.0, 10.0, 0.0, 10.0, 0.0];
        let smoothed = moving_average(&series, 3);
        assert_eq!(smoothed.len(), series.len());
        assert!((smoothed[2] - (10.0 + 0.0 + 10.0) / 3.0).abs() < 1e-12);
        // Constant series is unchanged.
        let flat = [5.0; 7];
        assert_eq!(moving_average(&flat, 5), flat.to_vec());
    }

    #[test]
    fn summary_bundles_fields() {
        let summary = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(summary.n, 3);
        assert!((summary.mean - 2.0).abs() < 1e-12);
        assert!(summary.ci90 > 0.0);
    }
}
