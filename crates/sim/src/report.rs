//! Rendering experiment results: aligned tables, CSV, and a terminal
//! line plot for Figure 2.

use std::fmt::Write as _;

use crate::experiment::SweepPoint;

/// Renders sweep points as an aligned markdown-ish table, one row per
/// (scenario, ratio).
pub fn table(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:<18} | {:>6} | {:>6} | {:>8} | {:>8} | {:>10} | {:>6} |",
        "scenario", "ratio", "sets", "eta_mean", "eta_ci90", "latency_ms", "seeds"
    );
    let _ =
        writeln!(out, "|{:-<20}|{:-<8}|{:-<8}|{:-<10}|{:-<10}|{:-<12}|{:-<8}|", "", "", "", "", "", "", "");
    for point in points {
        let _ = writeln!(
            out,
            "| {:<18} | {:>6.1} | {:>6} | {:>8.3} | {:>8.3} | {:>10.0} | {:>6} |",
            point.scenario,
            point.ratio,
            point.num_sets,
            point.eta.mean,
            point.eta.ci90,
            point.buy_latency_mean_ms,
            point.eta.n,
        );
    }
    out
}

/// Renders sweep points as CSV with a header row.
pub fn csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("scenario,ratio,num_sets,eta_mean,eta_ci90,buy_latency_mean_ms,seeds\n");
    for point in points {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{:.6},{:.1},{}",
            point.scenario,
            point.ratio,
            point.num_sets,
            point.eta.mean,
            point.eta.ci90,
            point.buy_latency_mean_ms,
            point.eta.n
        );
    }
    out
}

/// A terminal line plot of η (y, 0–1) against the sweep index (x), one
/// letter-coded series per scenario — a stand-in for Figure 2.
pub fn ascii_plot(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let mut grid = vec![vec![' '; width]; height];
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, points) in series {
        for &(x, _) in points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
        }
    }
    if !x_min.is_finite() || x_max <= x_min {
        x_min = 0.0;
        x_max = 1.0;
    }

    for (index, (_, points)) in series.iter().enumerate() {
        let marker = (b'A' + (index as u8 % 26)) as char;
        for &(x, y) in points {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = marker;
        }
    }

    let mut out = String::new();
    for (row_index, row) in grid.iter().enumerate() {
        let y_label = 1.0 - row_index as f64 / (height - 1) as f64;
        let _ = write!(out, "{y_label:>5.2} |");
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    let _ = write!(out, "       x: {x_min:.1} .. {x_max:.1}   series: ");
    for (index, (name, _)) in series.iter().enumerate() {
        let marker = (b'A' + (index as u8 % 26)) as char;
        let _ = write!(out, "{marker}={name} ");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn fake_point(scenario: &str, ratio: f64, eta: f64) -> SweepPoint {
        SweepPoint {
            scenario: scenario.to_string(),
            num_sets: (100.0 / ratio) as u64,
            ratio,
            etas: vec![eta],
            eta: Summary { mean: eta, ci90: 0.01, n: 5 },
            buy_latency_mean_ms: 12_345.0,
            set_latency_mean_ms: 15_000.0,
            runs: vec![],
        }
    }

    #[test]
    fn table_has_header_and_rows() {
        let points = vec![fake_point("geth_unmodified", 1.0, 0.04), fake_point("semantic_mining", 1.0, 0.85)];
        let rendered = table(&points);
        assert!(rendered.contains("scenario"));
        assert!(rendered.contains("geth_unmodified"));
        assert!(rendered.contains("semantic_mining"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    fn csv_is_machine_readable() {
        let points = vec![fake_point("sereth_client", 4.0, 0.42)];
        let rendered = csv(&points);
        let mut lines = rendered.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scenario,ratio,num_sets,eta_mean,eta_ci90,buy_latency_mean_ms,seeds"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("sereth_client,4,25,0.420000"));
    }

    #[test]
    fn ascii_plot_places_series_markers() {
        let series = vec![("low", vec![(1.0, 0.1), (2.0, 0.1)]), ("high", vec![(1.0, 0.9), (2.0, 0.9)])];
        let plot = ascii_plot(&series, 40, 10);
        assert!(plot.contains('A'));
        assert!(plot.contains('B'));
        assert!(plot.contains("A=low"));
        assert!(plot.contains("B=high"));
        // The high series must be rendered above the low one.
        let a_row = plot.lines().position(|l| l.contains('A')).unwrap();
        let b_row = plot.lines().position(|l| l.contains('B')).unwrap();
        assert!(b_row < a_row);
    }

    #[test]
    fn ascii_plot_handles_empty_input() {
        let plot = ascii_plot(&[], 20, 5);
        assert!(plot.contains("x: 0.0 .. 1.0"));
    }
}
