//! The three experimental scenarios of paper §V — `geth_unmodified`,
//! `sereth_client`, `semantic_mining` — plus the knobs the ablation
//! experiments sweep.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::GenesisBuilder;
use sereth_core::hms::HmsConfig;
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_net::latency::{FaultModel, LatencyModel};
use sereth_net::sim::{Actor, NetworkConfig, Simulation};
use sereth_net::topology::{Topology, TopologyKind};
use sereth_node::client::{Buyer, Owner};
use sereth_node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth_node::messages::Msg;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockSchedule, ClientKind, NodeActor, NodeConfig, NodeHandle};
use sereth_types::u256::U256;
use sereth_types::{IsolationLevel, SimTime};

use crate::metrics::{collect_metrics, RunMetrics, SubmissionLog};
use crate::workload::{market_plan, sequential_plan, MarketDriver, TimedStep};

/// Which of the paper's scenarios a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// §V-A: unmodified clients, fee-priority miner (READ-COMMITTED).
    GethUnmodified,
    /// §V-B: Sereth clients (HMS via RAA), fee-priority miner.
    SerethClient,
    /// §V-C: Sereth clients *and* an HMS-aware miner.
    SemanticMining,
    /// §VI comparator: unmodified clients, PWV dependency-scheduling
    /// miner (early write visibility confined to block assembly).
    PwvScheduler,
}

impl ScenarioKind {
    /// The label used in Figure 2 (and in the EXT-PWV extension).
    pub fn label(&self) -> &'static str {
        match self {
            Self::GethUnmodified => "geth_unmodified",
            Self::SerethClient => "sereth_client",
            Self::SemanticMining => "semantic_mining",
            Self::PwvScheduler => "pwv_scheduler",
        }
    }
}

/// A full experiment configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario label (used in reports).
    pub name: String,
    /// Number of network nodes.
    pub num_nodes: usize,
    /// Client kind per node (length `num_nodes`).
    pub node_kinds: Vec<ClientKind>,
    /// The mining policy of node 0 (the sole miner by default).
    pub miner_policy: MinerPolicy,
    /// Block production schedule.
    pub block_schedule: BlockSchedule,
    /// Per-block transaction cap (None = gas-limit bound only). The paper's
    /// small private blocks are what create pool backlog (§V-A).
    pub max_txs_per_block: Option<usize>,
    /// Buys submitted (the paper uses 100 per data point).
    pub num_buys: u64,
    /// Sets submitted (100 … 5 ⇒ ratios 1:1 … 20:1).
    pub num_sets: u64,
    /// Submission interval (the paper uses 1 s).
    pub tx_interval_ms: SimTime,
    /// Distinct buyer addresses, round-robin over nodes.
    pub num_buyers: usize,
    /// Opening price.
    pub initial_price: u64,
    /// Gossip latency model.
    pub latency: LatencyModel,
    /// Gossip fault injection.
    pub faults: FaultModel,
    /// Peer topology (over the nodes).
    pub topology: TopologyKind,
    /// HMS extensions.
    pub hms: HmsConfig,
    /// Extra simulated time after the last submission for the pool to
    /// drain.
    pub drain_ms: SimTime,
    /// The isolation rung every node serves reads (and the miner orders)
    /// at. READ-UNCOMMITTED — the paper's mode — by default; the
    /// ISO-FRONTIER experiment sweeps the whole ladder.
    pub isolation: IsolationLevel,
}

impl ScenarioConfig {
    fn base(kind: ScenarioKind, num_buys: u64, num_sets: u64) -> Self {
        let (node_kinds, miner_policy) = match kind {
            ScenarioKind::GethUnmodified => (vec![ClientKind::Geth; 4], MinerPolicy::Standard),
            ScenarioKind::SerethClient => (vec![ClientKind::Sereth; 4], MinerPolicy::Standard),
            ScenarioKind::SemanticMining => {
                (vec![ClientKind::Sereth; 4], MinerPolicy::Semantic(HmsConfig::default()))
            }
            // PWV helps only inside the system: clients stay unmodified.
            ScenarioKind::PwvScheduler => (vec![ClientKind::Geth; 4], MinerPolicy::Pwv),
        };
        Self {
            name: kind.label().to_string(),
            num_nodes: 4,
            node_kinds,
            miner_policy,
            block_schedule: BlockSchedule::Exponential { mean: 15_000 },
            max_txs_per_block: Some(20),
            num_buys,
            num_sets,
            tx_interval_ms: 1_000,
            num_buyers: 10,
            initial_price: 50,
            latency: LatencyModel::Uniform { min: 20, max: 120 },
            faults: FaultModel::none(),
            topology: TopologyKind::Complete,
            hms: HmsConfig::default(),
            drain_ms: 8 * 15_000,
            isolation: IsolationLevel::ReadUncommitted,
        }
    }

    /// The §V-A baseline.
    pub fn geth_unmodified(num_buys: u64, num_sets: u64) -> Self {
        Self::base(ScenarioKind::GethUnmodified, num_buys, num_sets)
    }

    /// The §V-B Sereth-client scenario.
    pub fn sereth_client(num_buys: u64, num_sets: u64) -> Self {
        Self::base(ScenarioKind::SerethClient, num_buys, num_sets)
    }

    /// The §V-C semantic-mining scenario.
    pub fn semantic_mining(num_buys: u64, num_sets: u64) -> Self {
        Self::base(ScenarioKind::SemanticMining, num_buys, num_sets)
    }

    /// The §VI PWV comparator (EXT-PWV): a piece-wise-visibility
    /// dependency scheduler in the miner, unmodified clients everywhere.
    pub fn pwv_scheduler(num_buys: u64, num_sets: u64) -> Self {
        Self::base(ScenarioKind::PwvScheduler, num_buys, num_sets)
    }

    /// Moves every node (and the miner's ordering) to `level` — the
    /// ISO-FRONTIER sweep's knob.
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.isolation = level;
        self
    }

    /// The buy:set ratio of this configuration.
    pub fn ratio(&self) -> f64 {
        self.num_buys as f64 / self.num_sets.max(1) as f64
    }
}

/// Result of one seeded run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Scenario label.
    pub scenario: String,
    /// The seed.
    pub seed: u64,
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// The miner's canonical chain at the end of the run (blocks with
    /// their replay receipts, genesis included) — the raw material for
    /// post-hoc auditing, e.g. the `sereth-consistency` checkers.
    pub chain: Vec<(sereth_types::Block, Vec<sereth_types::Receipt>)>,
}

/// Snapshots the canonical chain of `node` for [`RunOutput::chain`].
pub(crate) fn snapshot_chain(node: &NodeHandle) -> Vec<(sereth_types::Block, Vec<sereth_types::Receipt>)> {
    node.with_inner(|inner| {
        inner.chain.canonical_chain().map(|stored| (stored.block.clone(), stored.receipts.clone())).collect()
    })
}

/// Node `i`'s configuration under `config`: node 0 mines with the
/// scenario's policy, every node serves reads at the scenario's
/// isolation rung.
fn node_config(config: &ScenarioConfig, i: usize, contract: Address) -> NodeConfig {
    let mut builder = NodeConfig::builder()
        .kind(config.node_kinds[i])
        .contract(contract)
        .isolation(config.isolation)
        .limits(BlockLimits { gas_limit: 8_000_000, max_txs: config.max_txs_per_block })
        .hms(config.hms.clone());
    if i == 0 {
        builder = builder
            .mining(config.miner_policy.clone())
            .schedule(config.block_schedule.clone())
            .coinbase(Address::from_low_u64(0xc0b0));
    }
    builder.build()
}

/// Runs one scenario instance; identical `(config, seed)` pairs produce
/// identical results.
pub fn run_scenario(config: &ScenarioConfig, seed: u64) -> RunOutput {
    assert_eq!(config.node_kinds.len(), config.num_nodes, "one client kind per node");
    let contract = default_contract_address();
    let owner_key = SecretKey::from_label(1);
    let buyer_keys: Vec<SecretKey> =
        (0..config.num_buyers).map(|i| SecretKey::from_label(1_000 + i as u64)).collect();

    // Genesis: fund everyone, install the contract (native form for speed;
    // the bytecode form is equivalence-tested in sereth-node).
    let mut genesis_builder = GenesisBuilder::new().fund(owner_key.address(), U256::from(u64::MAX / 2));
    for key in &buyer_keys {
        genesis_builder = genesis_builder.fund(key.address(), U256::from(u64::MAX / 2));
    }
    let genesis = genesis_builder
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(config.initial_price)),
        )
        .build();

    // Nodes. Node 0 mines.
    let nodes: Vec<NodeHandle> = (0..config.num_nodes)
        .map(|i| NodeHandle::new(genesis.clone(), node_config(config, i, contract)))
        .collect();

    // Gossip wiring among the nodes.
    let mut topo_rng = SmallRng::seed_from_u64(seed ^ 0x7090_7090);
    let node_topology = Topology::build(&config.topology, config.num_nodes, &mut topo_rng);

    // Buyers attach round-robin; each inherits its node's client kind.
    let mut buyers = Vec::new();
    let mut buyer_nodes = Vec::new();
    let mut buyer_node_ids = Vec::new();
    for (i, key) in buyer_keys.iter().enumerate() {
        let node_index = i % config.num_nodes;
        buyers.push(Buyer::new(key.clone(), contract, nodes[node_index].kind(), 1));
        buyer_nodes.push(nodes[node_index].clone());
        buyer_node_ids.push(node_index);
    }
    let owner =
        Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(config.initial_price), 1);

    let plan = market_plan(
        config.num_buys,
        config.num_sets,
        config.tx_interval_ms,
        config.num_buyers,
        config.initial_price,
    );
    run_plan(config, seed, nodes, node_topology, owner, buyers, buyer_nodes, buyer_node_ids, plan)
}

/// Runs the §V sequential-history validation: every transaction from one
/// address, alternating set/buy. Expected: zero failures, η = 1.0.
pub fn run_sequential_history(config: &ScenarioConfig, pairs: u64, seed: u64) -> RunOutput {
    let contract = default_contract_address();
    let owner_key = SecretKey::from_label(1);
    let genesis = GenesisBuilder::new()
        .fund(owner_key.address(), U256::from(u64::MAX / 2))
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(config.initial_price)),
        )
        .build();
    let nodes: Vec<NodeHandle> = (0..config.num_nodes)
        .map(|i| NodeHandle::new(genesis.clone(), node_config(config, i, contract)))
        .collect();
    let mut topo_rng = SmallRng::seed_from_u64(seed ^ 0x7090_7090);
    let node_topology = Topology::build(&config.topology, config.num_nodes, &mut topo_rng);
    let owner =
        Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(config.initial_price), 1);
    let plan = sequential_plan(pairs, config.tx_interval_ms, config.initial_price);
    run_plan(config, seed, nodes, node_topology, owner, vec![], vec![], vec![], plan)
}

/// Runs the abort-rate extension workload (see [`crate::retry`]): every
/// buyer retries one purchase until it lands while the owner reprices
/// `num_sets` times at `config.tx_interval_ms` intervals. Returns per-buyer
/// attempt counts alongside the usual submission metrics.
pub fn run_retry_scenario(config: &ScenarioConfig, seed: u64) -> (RunOutput, crate::retry::RetryStats) {
    assert_eq!(config.node_kinds.len(), config.num_nodes);
    let contract = default_contract_address();
    let owner_key = SecretKey::from_label(1);
    let buyer_keys: Vec<SecretKey> =
        (0..config.num_buyers).map(|i| SecretKey::from_label(1_000 + i as u64)).collect();

    let mut genesis_builder = GenesisBuilder::new().fund(owner_key.address(), U256::from(u64::MAX / 2));
    for key in &buyer_keys {
        genesis_builder = genesis_builder.fund(key.address(), U256::from(u64::MAX / 2));
    }
    let genesis = genesis_builder
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(config.initial_price)),
        )
        .build();

    let nodes: Vec<NodeHandle> = (0..config.num_nodes)
        .map(|i| NodeHandle::new(genesis.clone(), node_config(config, i, contract)))
        .collect();
    let mut topo_rng = SmallRng::seed_from_u64(seed ^ 0x7090_7090);
    let node_topology = Topology::build(&config.topology, config.num_nodes, &mut topo_rng);

    let mut buyers = Vec::new();
    let mut buyer_nodes = Vec::new();
    let mut buyer_node_ids = Vec::new();
    for (i, key) in buyer_keys.iter().enumerate() {
        let node_index = i % config.num_nodes;
        buyers.push(Buyer::new(key.clone(), contract, nodes[node_index].kind(), 1));
        buyer_nodes.push(nodes[node_index].clone());
        buyer_node_ids.push(node_index);
    }
    let owner =
        Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(config.initial_price), 1);

    let log = Arc::new(Mutex::new(crate::metrics::SubmissionLog::new()));
    let stats = Arc::new(Mutex::new(crate::retry::RetryStats::default()));
    let deadline = config.num_sets.max(1) * config.tx_interval_ms + config.drain_ms;
    let driver = crate::retry::RetryDriver::new(
        owner,
        nodes[0].clone(),
        0,
        buyers,
        buyer_nodes,
        buyer_node_ids,
        config.num_sets,
        config.tx_interval_ms,
        config.tx_interval_ms / 2,
        config.initial_price,
        deadline,
        log.clone(),
        stats.clone(),
    );

    let driver_id = config.num_nodes;
    let mut actors: Vec<Box<dyn Actor<Msg>>> = Vec::with_capacity(config.num_nodes + 1);
    for (i, node) in nodes.iter().enumerate() {
        actors.push(Box::new(NodeActor {
            handle: node.clone(),
            peers: node_topology.neighbors_of(i).to_vec(),
        }));
    }
    actors.push(Box::new(driver));

    let net = NetworkConfig {
        topology: TopologyKind::Complete,
        latency: config.latency.clone(),
        faults: config.faults.clone(),
    };
    let mut sim = Simulation::new(actors, &net, seed);
    let first_block_at = match &config.block_schedule {
        BlockSchedule::Fixed(interval) => *interval,
        BlockSchedule::Exponential { mean } => *mean,
    };
    sim.schedule(first_block_at, 0, Msg::MineTick);
    sim.schedule(config.tx_interval_ms, driver_id, Msg::WorkloadTick(0));
    sim.run_until(deadline);

    let mut metrics = collect_metrics(&nodes[0], &log.lock());
    metrics.node_telemetry = nodes.iter().map(|n| n.telemetry_snapshot()).collect();
    let final_stats = stats.lock().clone();
    let chain = snapshot_chain(&nodes[0]);
    (RunOutput { scenario: config.name.clone(), seed, metrics, chain }, final_stats)
}

#[allow(clippy::too_many_arguments)]
fn run_plan(
    config: &ScenarioConfig,
    seed: u64,
    nodes: Vec<NodeHandle>,
    node_topology: Topology,
    owner: Owner,
    buyers: Vec<Buyer>,
    buyer_nodes: Vec<NodeHandle>,
    buyer_node_ids: Vec<usize>,
    plan: Vec<TimedStep>,
) -> RunOutput {
    let log = Arc::new(Mutex::new(SubmissionLog::new()));
    let driver_id = config.num_nodes;

    let mut actors: Vec<Box<dyn Actor<Msg>>> = Vec::with_capacity(config.num_nodes + 1);
    for (i, node) in nodes.iter().enumerate() {
        actors.push(Box::new(NodeActor {
            handle: node.clone(),
            peers: node_topology.neighbors_of(i).to_vec(),
        }));
    }
    let driver =
        MarketDriver::new(plan, owner, buyers, buyer_nodes, buyer_node_ids, nodes[0].clone(), 0, log.clone());
    let first_tick = driver.first_tick_at();
    actors.push(Box::new(driver));

    let net = NetworkConfig {
        // The simulator-level topology only feeds `ctx.neighbors()`, which
        // the node actors do not use (they carry explicit peer lists); a
        // complete graph keeps client→node latency sampling uniform.
        topology: TopologyKind::Complete,
        latency: config.latency.clone(),
        faults: config.faults.clone(),
    };
    let mut sim = Simulation::new(actors, &net, seed);

    // Bootstrap the miner and the workload.
    let first_block_at = match &config.block_schedule {
        BlockSchedule::Fixed(interval) => *interval,
        BlockSchedule::Exponential { mean } => *mean,
    };
    sim.schedule(first_block_at, 0, Msg::MineTick);
    if let Some(at) = first_tick {
        sim.schedule(at, driver_id, Msg::WorkloadTick(0));
    }

    let last_submission = config.num_buys.max(1) * config.tx_interval_ms + config.tx_interval_ms;
    sim.run_until(last_submission + config.drain_ms);

    let mut metrics = collect_metrics(&nodes[0], &log.lock());
    metrics.node_telemetry = nodes.iter().map(|n| n.telemetry_snapshot()).collect();
    let chain = snapshot_chain(&nodes[0]);
    RunOutput { scenario: config.name.clone(), seed, metrics, chain }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(kind: ScenarioKind) -> ScenarioConfig {
        let mut config = ScenarioConfig::base(kind, 20, 10);
        config.num_buyers = 4;
        config.drain_ms = 6 * 15_000;
        config
    }

    #[test]
    fn scenario_constructors_label_correctly() {
        assert_eq!(ScenarioConfig::geth_unmodified(100, 5).name, "geth_unmodified");
        assert_eq!(ScenarioConfig::sereth_client(100, 5).name, "sereth_client");
        assert_eq!(ScenarioConfig::semantic_mining(100, 5).name, "semantic_mining");
        assert!((ScenarioConfig::geth_unmodified(100, 5).ratio() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let config = small(ScenarioKind::SerethClient);
        let a = run_scenario(&config, 7);
        let b = run_scenario(&config, 7);
        assert_eq!(a.metrics.buys_succeeded, b.metrics.buys_succeeded);
        assert_eq!(a.metrics.blocks, b.metrics.blocks);
        assert_eq!(a.metrics.sets_succeeded, b.metrics.sets_succeeded);
    }

    #[test]
    fn all_sets_succeed_in_every_scenario() {
        for kind in [ScenarioKind::GethUnmodified, ScenarioKind::SerethClient, ScenarioKind::SemanticMining] {
            let out = run_scenario(&small(kind), 3);
            assert_eq!(
                out.metrics.sets_succeeded, out.metrics.sets_submitted,
                "{}: sets are the owner's own chain and must all succeed",
                out.scenario
            );
        }
    }

    #[test]
    fn pwv_dominates_the_baseline_but_pays_in_writer_latency() {
        // EXT-PWV: in-system early write visibility rescues committed-view
        // buys, so η(pwv) ≥ η(geth) robustly. What η does NOT show is the
        // cost: the scheduler keeps intervals open by postponing sets, so
        // the writer's commit latency can only grow relative to the
        // baseline, which commits sets by fee order immediately.
        let seeds = [1u64, 2, 3];
        let mut geth = 0.0;
        let mut pwv = 0.0;
        let mut geth_set_latency = 0.0;
        let mut pwv_set_latency = 0.0;
        for &seed in &seeds {
            let g = run_scenario(&small(ScenarioKind::GethUnmodified), seed).metrics;
            let p = run_scenario(&small(ScenarioKind::PwvScheduler), seed).metrics;
            geth += g.eta_buys();
            pwv += p.eta_buys();
            geth_set_latency += crate::stats::mean(&g.set_latency_ms);
            pwv_set_latency += crate::stats::mean(&p.set_latency_ms);
        }
        assert!(pwv >= geth, "PWV ({pwv:.2}) must not lose to the baseline ({geth:.2})");
        assert!(
            pwv_set_latency >= geth_set_latency,
            "the scheduler's gain must come out of writer latency \
             (pwv {pwv_set_latency:.0}ms vs geth {geth_set_latency:.0}ms)"
        );
    }

    #[test]
    fn scenario_ordering_matches_the_paper() {
        // η(semantic) ≥ η(sereth) ≥ η(geth) on matched seeds — the core
        // qualitative claim of Figure 2.
        let seeds = [1u64, 2, 3];
        let mut geth = 0.0;
        let mut sereth = 0.0;
        let mut semantic = 0.0;
        for &seed in &seeds {
            geth += run_scenario(&small(ScenarioKind::GethUnmodified), seed).metrics.eta_buys();
            sereth += run_scenario(&small(ScenarioKind::SerethClient), seed).metrics.eta_buys();
            semantic += run_scenario(&small(ScenarioKind::SemanticMining), seed).metrics.eta_buys();
        }
        assert!(
            semantic >= sereth && sereth >= geth,
            "expected semantic ({semantic:.2}) ≥ sereth ({sereth:.2}) ≥ geth ({geth:.2})"
        );
        assert!(semantic > geth, "the improvement must be strict in aggregate");
    }

    #[test]
    fn sequential_history_has_unit_efficiency() {
        let config = small(ScenarioKind::GethUnmodified);
        let out = run_sequential_history(&config, 10, 5);
        assert_eq!(out.metrics.buys_submitted, 10);
        assert_eq!(out.metrics.buys_succeeded, 10, "single-sender history never fails (paper §V)");
        assert_eq!(out.metrics.sets_succeeded, 10);
        assert!((out.metrics.eta_buys() - 1.0).abs() < 1e-12);
    }
}
