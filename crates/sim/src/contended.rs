//! The `contended_market` scenario: a single Sereth market hammered by
//! many buyers, mined in parallel.
//!
//! Every candidate in every block touches the same contract slots (the
//! market's mark and value), so this is the parallel executor's worst
//! case: speculation can barely ever commit fast, the merge loop's
//! fallback and the adaptive sequential degradation carry the block, and
//! the result must *still* be byte-identical to a sequential miner's
//! chain. A twin node running `ExecMode::Sequential` over the identical
//! transaction feed is the oracle: after every block the two heads are
//! compared, and the run fails on the first divergence.

use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::GenesisBuilder;
use sereth_chain::parallel::{ExecMode, ExecStats};
use sereth_chain::validation::ValidationMode;
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    buy_selector, default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

/// Configuration of the contended-market run.
#[derive(Debug, Clone)]
pub struct ContendedConfig {
    /// Buyer clients, all bidding on the one market every round.
    pub buyers: usize,
    /// Rounds (one `set` + one block per round).
    pub rounds: usize,
    /// Worker threads of the parallel miner.
    pub threads: usize,
    /// Initial market price.
    pub initial_price: u64,
}

impl Default for ContendedConfig {
    fn default() -> Self {
        Self { buyers: 24, rounds: 5, threads: 4, initial_price: 50 }
    }
}

/// What the run observed.
#[derive(Debug, Clone)]
pub struct ContendedReport {
    /// Blocks mined (and head-compared) per node.
    pub blocks: u64,
    /// Transactions committed on the parallel node's chain.
    pub txs_committed: u64,
    /// The parallel miner's cumulative executor counters.
    pub stats: ExecStats,
    /// The parallel node's cumulative *replay-validation* counters — every
    /// sealed block is re-imported through the chain store, so the same
    /// conflict storm hits the validation path.
    pub validation_stats: ExecStats,
    /// `true` iff every block matched the sequential oracle's.
    pub heads_match: bool,
}

fn contended_node(
    config: &ContendedConfig,
    owner: &SecretKey,
    buyers: &[SecretKey],
    mode: ExecMode,
    validation_mode: ValidationMode,
) -> NodeHandle {
    let contract = default_contract_address();
    let mut genesis_builder =
        GenesisBuilder::new().fund(owner.address(), U256::from(u64::MAX / 2)).contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(config.initial_price)),
        );
    for key in buyers {
        genesis_builder = genesis_builder.fund(key.address(), U256::from(u64::MAX / 2));
    }
    NodeHandle::new(
        genesis_builder.build(),
        NodeConfig::miner(contract, MinerPolicy::Standard)
            .coinbase(Address::from_low_u64(0xc0b1))
            .limits(BlockLimits { gas_limit: 64_000_000, max_txs: None })
            .exec_mode(mode)
            .validation_mode(validation_mode)
            .build(),
    )
}

fn market_tx(
    key: &SecretKey,
    nonce: u64,
    selector: [u8; 4],
    flag: Flag,
    prev: H256,
    value: u64,
) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(flag, prev, H256::from_low_u64(value)).to_calldata(selector),
        },
        key,
    )
}

/// Runs the scenario: `rounds` blocks of 100 %-conflicting market traffic
/// mined by a parallel node, head-checked against a sequential twin.
///
/// # Panics
///
/// Panics on the first block whose hash diverges between the two miners —
/// the scenario is an equivalence check first, a stress test second.
pub fn run_contended_market(config: &ContendedConfig) -> ContendedReport {
    let owner = SecretKey::from_label(4_000);
    let buyers: Vec<SecretKey> =
        (0..config.buyers).map(|b| SecretKey::from_label(4_100 + b as u64)).collect();

    // The parallel node also *replays* its own sealed blocks on the wave
    // executor (every `mine` imports through the chain store), so the
    // scenario exercises 100 %-conflicting parallel validation too; the
    // sequential twin is the oracle on both paths.
    let parallel = contended_node(
        config,
        &owner,
        &buyers,
        ExecMode::Parallel { threads: config.threads },
        ValidationMode::Parallel { threads: config.threads },
    );
    let sequential =
        contended_node(config, &owner, &buyers, ExecMode::Sequential, ValidationMode::Sequential);

    let mut now = 1u64;
    let mut mark = genesis_mark();
    let mut price = config.initial_price;
    let mut txs_committed = 0u64;
    for round in 0..config.rounds {
        // Every buyer bids against the committed state; all of them read
        // the same mark/value slots the round's repricing writes.
        for (b, key) in buyers.iter().enumerate() {
            let buy = market_tx(key, round as u64, buy_selector(), Flag::Success, mark, price);
            assert!(parallel.receive_tx(buy.clone(), now + b as u64));
            assert!(sequential.receive_tx(buy, now + b as u64));
        }
        now += config.buyers as u64;
        let next_price = config.initial_price + 10 * (round as u64 + 1);
        let flag = if round == 0 { Flag::Head } else { Flag::Success };
        let set = market_tx(&owner, round as u64, set_selector(), flag, mark, next_price);
        assert!(parallel.receive_tx(set.clone(), now));
        assert!(sequential.receive_tx(set, now));
        now += 1;

        let timestamp = 15_000 * (round as u64 + 1);
        let par_block = parallel.mine(timestamp).expect("parallel miner seals");
        let seq_block = sequential.mine(timestamp).expect("sequential miner seals");
        assert_eq!(
            par_block.hash(),
            seq_block.hash(),
            "contended block {round} diverged between parallel and sequential mining"
        );
        txs_committed += par_block.transactions.len() as u64;
        mark = compute_mark(&mark, &H256::from_low_u64(next_price));
        price = next_price;
    }

    ContendedReport {
        blocks: config.rounds as u64,
        txs_committed,
        stats: parallel.exec_stats(),
        validation_stats: parallel.validation_stats(),
        heads_match: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_market_exercises_the_fallback_path_and_stays_equivalent() {
        let report = run_contended_market(&ContendedConfig::default());
        assert!(report.heads_match);
        assert_eq!(report.blocks, 5);
        assert!(report.txs_committed > 0);
        // The whole point of the scenario: the conflict machinery ran.
        assert!(
            report.stats.fallbacks > 0,
            "100 %-conflicting traffic must trigger mis-speculation fallbacks: {:?}",
            report.stats
        );
        assert!(report.stats.waves > 0);
        // The replay path ran the same machinery: every sealed block was
        // re-validated on the wave executor and still matched the oracle.
        assert!(
            report.validation_stats.waves > 0,
            "parallel replay validation must have run: {:?}",
            report.validation_stats
        );
        assert!(report.validation_stats.fallbacks + report.validation_stats.sequential_txs > 0);
    }

    #[test]
    fn contended_market_single_thread_degenerates_cleanly() {
        let config = ContendedConfig { buyers: 8, rounds: 3, threads: 1, ..ContendedConfig::default() };
        let report = run_contended_market(&config);
        assert!(report.heads_match);
        assert_eq!(report.blocks, 3);
    }
}
