//! The experiment harness reproducing the paper's evaluation (§V).
//!
//! * [`workload`] — the §II-F market workload: buys at 1-second intervals,
//!   sets evenly spaced across them;
//! * [`scenario`] — the three Figure 2 scenarios (`geth_unmodified`,
//!   `sereth_client`, `semantic_mining`) and the sequential-history
//!   validation;
//! * [`many_markets`] — the read-storm scenario exercising the
//!   incremental `sereth-raa` view service across dozens of markets;
//! * [`cluster`] — N full nodes behind `NetNode` on a real topology with
//!   loss, duplication, and partitions, with a post-quiescence
//!   convergence check (all heads agree, byte-equal state roots);
//! * [`contended`] — a 100 %-conflicting single-market scenario mined
//!   with the parallel executor against a sequential oracle twin;
//! * [`pool_feed`] — many submitters feeding a sharded, incrementally
//!   indexed TxPool, hash-checked against an unsharded oracle twin;
//! * [`restart`] — a durable miner killed mid-run, reopened byte-equal,
//!   and resynced from by a fresh in-memory peer;
//! * [`metrics`] — state throughput and transaction efficiency η (§III-A);
//! * [`audit`] — post-hoc isolation-ladder auditing of a run's committed
//!   chain + read log through the unified `sereth-consistency` checker;
//! * [`experiment`] — seed-replicated parameter sweeps (Figure 2's data);
//! * [`stats`] — means, 90 % confidence intervals, smoothing;
//! * [`report`] — tables, CSV, and a terminal Figure 2.
//!
//! # Examples
//!
//! A single small Figure 2 data point:
//!
//! ```
//! use sereth_sim::scenario::{run_scenario, ScenarioConfig};
//!
//! let mut config = ScenarioConfig::semantic_mining(10, 5);
//! config.drain_ms = 60_000;
//! let out = run_scenario(&config, 42);
//! assert_eq!(out.metrics.sets_succeeded, out.metrics.sets_submitted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod contended;
pub mod experiment;
pub mod many_markets;
pub mod metrics;
pub mod pool_feed;
pub mod report;
pub mod restart;
pub mod retry;
pub mod scenario;
pub mod stats;
pub mod workload;

pub use audit::{audit_run, market_spec, run_history};
pub use cluster::{run_cluster, ClusterConfig, ClusterOutput, Injection};
pub use contended::{run_contended_market, ContendedConfig, ContendedReport};
pub use experiment::{paper_scenarios, run_point, sweep, SweepPoint, PAPER_SET_COUNTS};
pub use many_markets::{
    run_many_markets, run_many_markets_concurrent, ConcurrentMarketsReport, ManyMarketsConfig,
    ManyMarketsReport,
};
pub use metrics::{collect_metrics, RunMetrics, Submission, SubmissionLog};
pub use pool_feed::{run_pool_feed, PoolFeedConfig, PoolFeedReport};
pub use restart::{run_restart, RestartConfig, RestartOutput};
pub use retry::{RetryDriver, RetryStats};
pub use scenario::{
    run_retry_scenario, run_scenario, run_sequential_history, RunOutput, ScenarioConfig, ScenarioKind,
};
pub use stats::{ci90_half_width, mean, moving_average, percentile, std_dev, summarize, Summary};
pub use workload::{market_plan, sequential_plan, MarketDriver, TimedStep, WorkloadStep};
