//! Multi-node cluster scenarios: complete nodes gossiping over the
//! deterministic network simulator.
//!
//! The Figure 2 scenarios in [`crate::scenario`] run a single miner with
//! explicit-peer flood gossip — enough to reproduce the paper's
//! efficiency claims, but the network itself is never stressed. A
//! *cluster* run puts N full nodes behind
//! [`sereth_node::netnode::NetNode`] on a real topology (ring, star,
//! random) with latency, loss, duplication, stragglers, and scheduled
//! partitions from [`FaultModel`], injects the §II-F market workload at
//! edge nodes, and then lets the network **quiesce**: mining stops at a
//! horizon, anti-entropy keeps running, and the harness steps simulated
//! time until every node agrees on the head (or a hard deadline passes).
//!
//! The output carries per-node heads and state roots (the convergence
//! check is byte-equality of state), the usual
//! [`crate::metrics::RunMetrics`], and the
//! canonical chain + read log, so [`crate::audit::audit_run`] gives every
//! cluster run an isolation-ladder verdict exactly like the single-miner
//! scenarios.
//!
//! Everything is a pure function of `(config, seed)`: actors take
//! randomness only from the simulator's seeded RNG, so identical seeds
//! reproduce identical per-node heads, byte-identical state, and
//! identical message counts — the property the NET-SCALE bench and the
//! seed-sweep tests pin.

use std::sync::Arc;

use parking_lot::Mutex;
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::GenesisBuilder;
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_net::latency::{FaultModel, LatencyModel, Partition};
use sereth_net::sim::{Actor, NetworkConfig, Simulation};
use sereth_net::topology::TopologyKind;
use sereth_node::client::{Buyer, Owner};
use sereth_node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth_node::messages::Msg;
use sereth_node::miner::MinerPolicy;
use sereth_node::netnode::NetNode;
use sereth_node::node::{BlockSchedule, ClientKind, NodeConfig, NodeHandle};
use sereth_types::u256::U256;
use sereth_types::{IsolationLevel, SimTime};

use crate::metrics::{collect_metrics, SubmissionLog};
use crate::scenario::{snapshot_chain, RunOutput};
use crate::workload::{market_plan, MarketDriver};

/// Where the workload's client submissions enter the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Every client attaches to node 0 (the first miner). With this
    /// wiring the network is pure overhead for the committed history —
    /// the lever the no-network ≡ in-process equivalence property pulls.
    MinerOnly,
    /// Clients attach round-robin over all nodes, so most submissions
    /// enter at non-mining edge nodes and must gossip to the miners.
    RoundRobin,
}

/// A full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Label used in reports and artifacts.
    pub name: String,
    /// Number of full nodes.
    pub num_nodes: usize,
    /// Nodes `0..num_miners` mine. Miner `i` seals on a fixed cadence of
    /// `block_every_ms * (i + 1)` — secondary miners are deliberately
    /// slower, so after a partition the mainland branch (holding miner 0)
    /// is strictly longer and the minority reorgs onto it.
    pub num_miners: usize,
    /// Client kind of every node.
    pub node_kind: ClientKind,
    /// Ordering policy of the miners.
    pub miner_policy: MinerPolicy,
    /// Miner 0's sealing cadence (ms); see [`ClusterConfig::num_miners`].
    pub block_every_ms: SimTime,
    /// Per-block transaction cap.
    pub max_txs_per_block: Option<usize>,
    /// Buys submitted.
    pub num_buys: u64,
    /// Sets submitted.
    pub num_sets: u64,
    /// Submission interval (ms).
    pub tx_interval_ms: SimTime,
    /// Distinct buyer addresses.
    pub num_buyers: usize,
    /// Opening price.
    pub initial_price: u64,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Loss, duplication, stragglers, partitions.
    pub faults: FaultModel,
    /// Peer wiring. The workload driver rides as actor `num_nodes`; it
    /// never relays, so the effective node topology is this graph with
    /// one silent tap attached.
    pub topology: TopologyKind,
    /// The isolation rung every node serves reads at.
    pub isolation: IsolationLevel,
    /// Client attachment policy.
    pub injection: Injection,
    /// Anti-entropy period of every node (ms).
    pub sync_every_ms: SimTime,
    /// Extra mining time after the last submission (the pool drain
    /// window); mining quiesces at `last_submission + drain_ms`.
    pub drain_ms: SimTime,
    /// Convergence-poll granularity after quiescence (ms).
    pub quiesce_step_ms: SimTime,
    /// Hard horizon: a cluster that has not converged by this simulated
    /// time reports `converged_at: None`.
    pub max_sim_ms: SimTime,
}

impl ClusterConfig {
    /// A baseline cluster: Geth nodes, one standard miner on a 5 s
    /// cadence, ring topology, default latency, no faults, round-robin
    /// edge injection.
    pub fn cluster(num_nodes: usize, num_buys: u64, num_sets: u64) -> Self {
        Self {
            name: format!("cluster_{num_nodes}"),
            num_nodes,
            num_miners: 1,
            node_kind: ClientKind::Geth,
            miner_policy: MinerPolicy::Standard,
            block_every_ms: 5_000,
            max_txs_per_block: Some(20),
            num_buys,
            num_sets,
            tx_interval_ms: 1_000,
            num_buyers: 10.min(num_buys.max(1) as usize),
            initial_price: 50,
            latency: LatencyModel::Uniform { min: 20, max: 120 },
            faults: FaultModel::none(),
            topology: TopologyKind::Ring,
            isolation: IsolationLevel::ReadUncommitted,
            injection: Injection::RoundRobin,
            sync_every_ms: 3_000,
            drain_ms: 30_000,
            quiesce_step_ms: 1_000,
            max_sim_ms: 600_000,
        }
    }

    /// Moves every node to `level`.
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.isolation = level;
        self
    }

    /// Adds loss and duplication to every link.
    pub fn lossy(mut self, drop_probability: f64, duplicate_probability: f64) -> Self {
        self.faults.drop_probability = drop_probability;
        self.faults.duplicate_probability = duplicate_probability;
        self
    }

    /// Schedules a partition episode cutting `island` off from the rest.
    pub fn partitioned(mut self, island: Vec<usize>, from_ms: SimTime, until_ms: SimTime) -> Self {
        self.faults.partitions.push(Partition { island, from_ms, until_ms });
        self
    }

    /// The instant the last workload submission fires.
    fn last_submission(&self) -> SimTime {
        self.num_buys.max(1) * self.tx_interval_ms + self.tx_interval_ms
    }
}

/// Result of one seeded cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutput {
    /// The run viewed from node 0 — metrics, read log, canonical chain —
    /// directly consumable by [`crate::audit::audit_run`].
    pub run: RunOutput,
    /// Every node's `(height, head hash)` at the end of the run.
    pub per_node_heads: Vec<(u64, H256)>,
    /// Every node's head state root (convergence is byte-equality here).
    pub per_node_state_roots: Vec<H256>,
    /// Every node's total stored blocks, side chains included. A node
    /// whose count exceeds the canonical length held — and abandoned — a
    /// competing branch: the observable trace of a reorg.
    pub per_node_stored_blocks: Vec<usize>,
    /// Simulated time at which every node first agreed on the head
    /// (polled at `quiesce_step_ms` granularity after mining stopped), or
    /// `None` if the cluster never converged before `max_sim_ms`.
    pub converged_at: Option<SimTime>,
    /// Total simulator events delivered — message deliveries plus timers,
    /// the NET-SCALE traffic measure.
    pub events: u64,
    /// Sum of every node's `net.msgs_sent` counter (gossip fan-out
    /// actually offered to the network, before loss).
    pub messages_sent: u64,
}

impl ClusterOutput {
    /// `true` when every node ended on the same head **and** the same
    /// state root.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
            && self.per_node_heads.windows(2).all(|w| w[0] == w[1])
            && self.per_node_state_roots.windows(2).all(|w| w[0] == w[1])
    }
}

/// Node `i`'s configuration: nodes `0..num_miners` mine (distinct
/// coinbases, miner `i` on a `block_every_ms * (i + 1)` cadence), every
/// node serves reads at the cluster's isolation rung.
fn node_config(config: &ClusterConfig, i: usize, contract: Address) -> NodeConfig {
    let mut builder = NodeConfig::builder()
        .kind(config.node_kind)
        .contract(contract)
        .isolation(config.isolation)
        .limits(BlockLimits { gas_limit: 8_000_000, max_txs: config.max_txs_per_block });
    if i < config.num_miners {
        builder = builder
            .mining(config.miner_policy.clone())
            .schedule(BlockSchedule::Fixed(config.block_every_ms * (i as u64 + 1)))
            .coinbase(Address::from_low_u64(0xc0b0 + i as u64));
    }
    builder.build()
}

/// Runs one cluster instance; identical `(config, seed)` pairs produce
/// identical outputs, including per-node heads and state roots.
pub fn run_cluster(config: &ClusterConfig, seed: u64) -> ClusterOutput {
    assert!(config.num_nodes >= 1, "a cluster needs at least one node");
    assert!(config.num_miners >= 1 && config.num_miners <= config.num_nodes, "miners must be nodes");
    let contract = default_contract_address();
    let owner_key = SecretKey::from_label(1);
    let buyer_keys: Vec<SecretKey> =
        (0..config.num_buyers).map(|i| SecretKey::from_label(1_000 + i as u64)).collect();

    let mut genesis_builder = GenesisBuilder::new().fund(owner_key.address(), U256::from(u64::MAX / 2));
    for key in &buyer_keys {
        genesis_builder = genesis_builder.fund(key.address(), U256::from(u64::MAX / 2));
    }
    let genesis = genesis_builder
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(config.initial_price)),
        )
        .build();

    let nodes: Vec<NodeHandle> = (0..config.num_nodes)
        .map(|i| NodeHandle::new(genesis.clone(), node_config(config, i, contract)))
        .collect();

    // Clients: the owner always talks to node 0; buyers attach per the
    // injection policy.
    let mut buyers = Vec::new();
    let mut buyer_nodes = Vec::new();
    let mut buyer_node_ids = Vec::new();
    for (i, key) in buyer_keys.iter().enumerate() {
        let node_index = match config.injection {
            Injection::MinerOnly => 0,
            Injection::RoundRobin => i % config.num_nodes,
        };
        buyers.push(Buyer::new(key.clone(), contract, nodes[node_index].kind(), 1));
        buyer_nodes.push(nodes[node_index].clone());
        buyer_node_ids.push(node_index);
    }
    let owner =
        Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(config.initial_price), 1);

    let plan = market_plan(
        config.num_buys,
        config.num_sets,
        config.tx_interval_ms,
        config.num_buyers,
        config.initial_price,
    );
    let log = Arc::new(Mutex::new(SubmissionLog::new()));
    let driver =
        MarketDriver::new(plan, owner, buyers, buyer_nodes, buyer_node_ids, nodes[0].clone(), 0, log.clone());
    let first_tick = driver.first_tick_at();
    let driver_id = config.num_nodes;

    let mine_until = config.last_submission() + config.drain_ms;
    let mut actors: Vec<Box<dyn Actor<Msg>>> = Vec::with_capacity(config.num_nodes + 1);
    for node in &nodes {
        actors.push(Box::new(NetNode::new(
            node.clone(),
            mine_until,
            config.sync_every_ms,
            config.max_sim_ms,
        )));
    }
    actors.push(Box::new(driver));

    let net = NetworkConfig {
        topology: config.topology.clone(),
        latency: config.latency.clone(),
        faults: config.faults.clone(),
    };
    // The simulator seeds its own RNG (topology + link sampling) from
    // `seed`; nothing else in a cluster draws randomness.
    let mut sim = Simulation::new(actors, &net, seed);

    // Bootstrap: miners on their cadences (offset by 73 ms per extra
    // miner so fixed schedules never collide on the same instant), one
    // staggered sync tick per node, the workload driver.
    for i in 0..config.num_miners {
        sim.schedule(config.block_every_ms * (i as u64 + 1) + 73 * i as u64, i, Msg::MineTick);
    }
    for i in 0..config.num_nodes {
        sim.schedule(config.sync_every_ms + i as u64, i, Msg::SyncTick);
    }
    if let Some(at) = first_tick {
        sim.schedule(at, driver_id, Msg::WorkloadTick(0));
    }

    // Phase 1: workload + mining, through the drain window.
    sim.run_until(mine_until);

    // Phase 2: quiescence. Mining has stopped; anti-entropy keeps
    // running. Poll until every node reports the same head.
    let mut converged_at = None;
    let mut horizon = sim.now();
    while horizon < config.max_sim_ms {
        if nodes.windows(2).all(|pair| pair[0].head_id() == pair[1].head_id()) {
            converged_at = Some(horizon);
            break;
        }
        horizon += config.quiesce_step_ms;
        sim.run_until(horizon);
    }

    let per_node_heads: Vec<(u64, H256)> = nodes.iter().map(|node| node.head_id()).collect();
    let per_node_state_roots: Vec<H256> = nodes.iter().map(|node| node.head_state_root()).collect();
    let per_node_stored_blocks: Vec<usize> = nodes.iter().map(|node| node.stored_blocks()).collect();
    let messages_sent: u64 = nodes
        .iter()
        .map(|node| node.telemetry_snapshot().counters.get("net.msgs_sent").copied().unwrap_or(0))
        .sum();

    let mut metrics = collect_metrics(&nodes[0], &log.lock());
    metrics.node_telemetry = nodes.iter().map(|node| node.telemetry_snapshot()).collect();
    let chain = snapshot_chain(&nodes[0]);
    ClusterOutput {
        run: RunOutput { scenario: config.name.clone(), seed, metrics, chain },
        per_node_heads,
        per_node_state_roots,
        per_node_stored_blocks,
        converged_at,
        events: sim.events_processed(),
        messages_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit_run;

    fn small(num_nodes: usize) -> ClusterConfig {
        let mut config = ClusterConfig::cluster(num_nodes, 24, 6);
        config.num_buyers = 6;
        config.drain_ms = 25_000;
        config
    }

    #[test]
    fn zero_latency_cluster_is_byte_equivalent_to_single_node() {
        // No-network ≡ in-process: with every client attached to node 0,
        // zero link latency, and no faults, the other five nodes are pure
        // observers — the committed history must be byte-identical to the
        // single-node run. Nothing here draws RNG (fixed schedule,
        // constant latency, no loss), so this is exact, not statistical.
        let mut lone = small(1);
        lone.injection = Injection::MinerOnly;
        lone.latency = LatencyModel::Constant(0);
        let mut wide = small(6);
        wide.injection = Injection::MinerOnly;
        wide.latency = LatencyModel::Constant(0);

        let a = run_cluster(&lone, 42);
        let b = run_cluster(&wide, 42);
        assert!(a.is_converged() && b.is_converged());
        let hashes = |out: &ClusterOutput| -> Vec<H256> {
            out.run.chain.iter().map(|(block, _)| block.hash()).collect()
        };
        assert_eq!(hashes(&a), hashes(&b), "identical canonical chains, block for block");
        assert_eq!(a.per_node_state_roots[0], b.per_node_state_roots[0], "byte-equal state");
        assert_eq!(a.run.metrics.buys_succeeded, b.run.metrics.buys_succeeded);
        assert_eq!(a.run.metrics.sets_succeeded, b.run.metrics.sets_succeeded);
    }

    #[test]
    fn seed_swept_lossy_partitioned_cluster_converges_deterministically() {
        // The acceptance-criteria run: 8 nodes, loss + duplication, a
        // partition that opens and heals mid-run, edge injection. Every
        // seed must converge; identical seeds must agree byte-for-byte.
        for seed in [3u64, 11, 29] {
            let config = small(8).lossy(0.05, 0.05).partitioned(vec![2, 5], 8_000, 20_000);
            let a = run_cluster(&config, seed);
            let b = run_cluster(&config, seed);
            assert!(a.is_converged(), "seed {seed} converged: {:?}", a.per_node_heads);
            assert_eq!(a.per_node_heads, b.per_node_heads, "seed {seed} heads reproduce");
            assert_eq!(a.per_node_state_roots, b.per_node_state_roots, "seed {seed} state reproduces");
            assert_eq!(a.converged_at, b.converged_at, "seed {seed} convergence time reproduces");
            assert_eq!(a.events, b.events, "seed {seed} event count reproduces");
            assert_eq!(a.messages_sent, b.messages_sent, "seed {seed} message count reproduces");
            // The committed chain stays G0-clean at the paper's rung even
            // under loss and partitions (set is a CAS).
            let report = audit_run(&a.run, config.initial_price);
            assert!(report.holds_at(IsolationLevel::ReadUncommitted), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn minority_branch_reorgs_onto_majority_after_heal() {
        // Two miners. The slower one (node 1) is cut off with two other
        // nodes long enough to seal its own branch; the mainland keeps
        // the faster miner, so its branch is strictly longer at heal
        // time. The minority must abandon its branch — visible as stored
        // side-chain blocks — and every node must end on one head.
        let mut config = small(8).partitioned(vec![1, 4, 6], 6_000, 30_000);
        config.num_miners = 2;
        config.topology = TopologyKind::Complete;
        let out = run_cluster(&config, 17);
        assert!(out.is_converged(), "heal reconnects the branches: {:?}", out.per_node_heads);
        // More stored blocks than the canonical chain (genesis included)
        // proves the minority miner held — and abandoned — a competing
        // branch when the longer mainland chain arrived.
        let canonical_len = (out.per_node_heads[0].0 + 1) as usize;
        assert!(
            out.per_node_stored_blocks[1] > canonical_len,
            "node 1 kept its orphaned branch as a side chain \
             (stored {} vs canonical {canonical_len})",
            out.per_node_stored_blocks[1]
        );
    }

    #[test]
    fn fault_free_sequential_cluster_is_clean_at_every_rung() {
        // With no faults there are no reorgs, so a SEQUENTIAL cluster
        // must audit clean at every rung of the ladder, exactly like the
        // single-miner scenarios.
        let mut config = small(4).with_isolation(IsolationLevel::Sequential);
        config.injection = Injection::RoundRobin;
        let out = run_cluster(&config, 9);
        assert!(out.is_converged());
        let report = audit_run(&out.run, config.initial_price);
        for level in IsolationLevel::ALL {
            assert!(report.holds_at(level), "violated {level}: {:?}", report.violations);
        }
        assert!(report.tallies.reads > 0, "edge-node observations were logged");
    }

    #[test]
    fn star_and_random_topologies_converge() {
        for topology in [TopologyKind::Star, TopologyKind::Random { degree: 2 }] {
            let mut config = small(8).lossy(0.03, 0.03);
            config.topology = topology.clone();
            let out = run_cluster(&config, 5);
            assert!(out.is_converged(), "{topology:?} converged: {:?}", out.per_node_heads);
            assert!(out.run.metrics.blocks > 0, "{topology:?} committed blocks");
        }
    }
}
