//! The `pool_feed` scenario: many submitters feeding one mining node
//! through the sharded, incrementally-indexed TxPool.
//!
//! The scenario is an equivalence check first and a scale demonstration
//! second: a node whose pool runs the full sharded configuration (many
//! sender-keyed locks, a bounded candidate budget per ordering pass) is
//! driven with the exact same submission feed as an **unsharded oracle
//! twin** (`shards = 1`, same budget). Shard count and the incremental
//! index are pure mechanism — ordering output is defined to be invariant
//! in them — so after every round the two sealed blocks must be
//! byte-identical; the run fails on the first divergence. The report
//! carries the sharded pool's counters (index hits, rebuilds, rescans,
//! events applied), which the assertions pin: blocks must have been fed
//! from the index, not by rescans.

use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::GenesisBuilder;
use sereth_chain::txpool::{PoolConfig, PoolStats};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    buy_selector, default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

/// Configuration of the pool-feed run.
#[derive(Debug, Clone)]
pub struct PoolFeedConfig {
    /// Independent submitting users (each is one sender/key).
    pub submitters: usize,
    /// Rounds (one block per round).
    pub rounds: usize,
    /// Transfers each submitter sends per round.
    pub txs_per_round: usize,
    /// Shard count of the node under test (the oracle twin always runs 1).
    pub shards: usize,
    /// Candidate budget per ordering pass (both nodes).
    pub candidate_budget: Option<usize>,
    /// Miner ordering policy (both nodes).
    pub policy: MinerPolicy,
    /// Market buyers salting the feed with `set`/`buy` traffic.
    pub buyers: usize,
    /// Initial market price.
    pub initial_price: u64,
}

impl Default for PoolFeedConfig {
    fn default() -> Self {
        Self {
            submitters: 48,
            rounds: 6,
            txs_per_round: 2,
            shards: 16,
            candidate_budget: Some(96),
            policy: MinerPolicy::Standard,
            buyers: 6,
            initial_price: 50,
        }
    }
}

/// What the run observed.
#[derive(Debug, Clone)]
pub struct PoolFeedReport {
    /// Blocks mined (and hash-compared) per node.
    pub blocks: u64,
    /// Transactions committed on the sharded node's chain.
    pub txs_committed: u64,
    /// Transactions submitted in total.
    pub txs_submitted: u64,
    /// The sharded node's pool counters.
    pub stats: PoolStats,
    /// The unsharded oracle twin's pool counters.
    pub oracle_stats: PoolStats,
}

fn feed_node(
    config: &PoolFeedConfig,
    owner: &SecretKey,
    submitters: &[SecretKey],
    buyers: &[SecretKey],
    shards: usize,
) -> NodeHandle {
    let contract = default_contract_address();
    let mut genesis_builder =
        GenesisBuilder::new().fund(owner.address(), U256::from(u64::MAX / 2)).contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(config.initial_price)),
        );
    for key in submitters.iter().chain(buyers) {
        genesis_builder = genesis_builder.fund(key.address(), U256::from(u64::MAX / 2));
    }
    NodeHandle::new(
        genesis_builder.build(),
        NodeConfig::builder()
            .contract(contract)
            .mining(config.policy.clone())
            .coinbase(Address::from_low_u64(0xc0b2))
            .candidate_budget(config.candidate_budget)
            .limits(BlockLimits { gas_limit: 64_000_000, max_txs: config.candidate_budget })
            .pool(PoolConfig { shards, ..PoolConfig::default() })
            .build(),
    )
}

fn market_tx(
    key: &SecretKey,
    nonce: u64,
    selector: [u8; 4],
    flag: Flag,
    prev: H256,
    value: u64,
) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 2,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(flag, prev, H256::from_low_u64(value)).to_calldata(selector),
        },
        key,
    )
}

/// Runs the scenario: `rounds` blocks of mixed transfer + market traffic
/// from many submitters, mined by a sharded-pool node and hash-checked
/// against an unsharded oracle twin fed identically.
///
/// # Panics
///
/// Panics on the first block whose hash diverges between the two nodes —
/// shard count and index must be unobservable in the chain.
pub fn run_pool_feed(config: &PoolFeedConfig) -> PoolFeedReport {
    let owner = SecretKey::from_label(5_000);
    let submitters: Vec<SecretKey> =
        (0..config.submitters).map(|s| SecretKey::from_label(5_100 + s as u64)).collect();
    let buyers: Vec<SecretKey> =
        (0..config.buyers).map(|b| SecretKey::from_label(5_900 + b as u64)).collect();

    let sharded = feed_node(config, &owner, &submitters, &buyers, config.shards);
    let oracle = feed_node(config, &owner, &submitters, &buyers, 1);

    let mut now = 1u64;
    let mut mark = genesis_mark();
    let mut price = config.initial_price;
    let mut txs_submitted = 0u64;
    let mut txs_committed = 0u64;
    let submit = |tx: Transaction, now: u64| {
        assert!(sharded.receive_tx(tx.clone(), now), "sharded node rejected a submission");
        assert!(oracle.receive_tx(tx, now), "oracle node rejected a submission");
    };

    for round in 0..config.rounds {
        // Ordinary users: transfers at deterministic, varied prices — the
        // fee-priority index has real sorting work every round.
        for (s, key) in submitters.iter().enumerate() {
            for i in 0..config.txs_per_round {
                let nonce = (round * config.txs_per_round + i) as u64;
                let gas_price = 1 + ((s + i) as u64 * 13 + round as u64 * 7 + nonce * 3) % 37;
                let tx = Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0xaa00 + (s % 7) as u64)),
                        value: U256::from(1u64),
                        input: bytes::Bytes::new(),
                    },
                    key,
                );
                submit(tx, now);
                now += 1;
                txs_submitted += 1;
            }
        }
        // Market traffic: buys against the committed state, then the
        // owner's repricing set — the per-contract market index feeds the
        // semantic/PWV policies without re-decoding any of the transfer
        // noise above.
        for (b, key) in buyers.iter().enumerate() {
            let buy = market_tx(key, round as u64, buy_selector(), Flag::Success, mark, price);
            submit(buy, now + b as u64);
            txs_submitted += 1;
        }
        now += config.buyers as u64;
        let next_price = config.initial_price + 5 * (round as u64 + 1);
        let flag = if round == 0 { Flag::Head } else { Flag::Success };
        let set = market_tx(&owner, round as u64, set_selector(), flag, mark, next_price);
        submit(set, now);
        now += 1;
        txs_submitted += 1;

        let timestamp = 15_000 * (round as u64 + 1);
        let sharded_block = sharded.mine(timestamp).expect("sharded miner seals");
        let oracle_block = oracle.mine(timestamp).expect("oracle miner seals");
        assert_eq!(
            sharded_block.hash(),
            oracle_block.hash(),
            "pool_feed block {round} diverged between sharded and unsharded pools"
        );
        txs_committed += sharded_block.transactions.len() as u64;
        mark = compute_mark(&mark, &H256::from_low_u64(next_price));
        price = next_price;
    }

    PoolFeedReport {
        blocks: config.rounds as u64,
        txs_committed,
        txs_submitted,
        stats: sharded.pool_stats(),
        oracle_stats: oracle.pool_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::hms::HmsConfig;

    #[test]
    fn sharded_feed_matches_the_unsharded_oracle() {
        let report = run_pool_feed(&PoolFeedConfig::default());
        assert_eq!(report.blocks, 6);
        assert!(report.txs_committed > 0);
        // The point of the feed: ordering was served by the index.
        assert!(report.stats.index_hits >= report.blocks, "every block reads the index: {:?}", report.stats);
        assert!(report.stats.events_applied > 0, "index must consume events: {:?}", report.stats);
        assert_eq!(report.stats.rescans, 0, "steady-state mining must never rescan: {:?}", report.stats);
    }

    #[test]
    fn semantic_and_pwv_policies_survive_the_sharded_feed() {
        for policy in [MinerPolicy::Semantic(HmsConfig::default()), MinerPolicy::Pwv] {
            let config =
                PoolFeedConfig { submitters: 12, rounds: 4, buyers: 4, policy, ..PoolFeedConfig::default() };
            let report = run_pool_feed(&config);
            assert!(report.txs_committed > 0);
            assert_eq!(report.stats.market_rescans, 0, "market reads must hit the index: {:?}", report.stats);
        }
    }

    #[test]
    fn backlogged_pool_still_seals_budgeted_blocks() {
        // More traffic per round than the candidate budget: the ordering
        // pass reads O(budget) from the index while the backlog grows,
        // and the two pools still agree block for block.
        let config = PoolFeedConfig {
            submitters: 64,
            txs_per_round: 3,
            candidate_budget: Some(40),
            rounds: 5,
            ..PoolFeedConfig::default()
        };
        let report = run_pool_feed(&config);
        assert!(report.txs_submitted > report.txs_committed, "the budget must leave a backlog: {report:?}");
        assert_eq!(report.stats.rescans, 0, "budgeted reads stay on the index: {:?}", report.stats);
    }
}
