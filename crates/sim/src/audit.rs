//! Offline consistency auditing of simulation runs.
//!
//! A [`RunOutput`] carries everything the `sereth-consistency` checkers
//! consume: the miner's canonical chain (blocks + replay receipts) and
//! the read observations the workload's buyers made along the way
//! ([`crate::metrics::RunMetrics::reads`]). This module joins the two
//! into a [`History`] and runs the unified [`FullChecker`], so every
//! experiment can answer "which rung of the isolation ladder did this
//! run actually satisfy?" without re-running anything.

use sereth_consistency::{Checker, FullChecker, History, MarketSpec, Report};
use sereth_core::mark::genesis_mark;
use sereth_crypto::hash::H256;
use sereth_node::contract::{
    buy_ok_topic, buy_selector, default_contract_address, set_ok_topic, set_selector,
};

use crate::scenario::RunOutput;

/// The [`MarketSpec`] matching the scenario harness's genesis: the
/// default contract, the real selectors/topics, and `initial_price` as
/// the opening value.
pub fn market_spec(initial_price: u64) -> MarketSpec {
    MarketSpec {
        contract: default_contract_address(),
        set_selector: set_selector(),
        buy_selector: buy_selector(),
        set_ok_topic: set_ok_topic(),
        buy_ok_topic: buy_ok_topic(),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(initial_price),
    }
}

/// Extracts the committed market history of a run, read log attached.
pub fn run_history(output: &RunOutput, initial_price: u64) -> History {
    let spec = market_spec(initial_price);
    History::from_blocks(&spec, output.chain.iter().map(|(block, receipts)| (block, receipts.as_slice())))
        .with_reads(output.metrics.reads.clone())
}

/// Audits one run end to end: program order, strict serialization of the
/// sets, and the Adya anomaly passes (dirty writes, dirty reads, lost
/// updates), each violation tagged with the weakest isolation level that
/// forbids it. `report.holds_at(level)` answers the ladder question.
pub fn audit_run(output: &RunOutput, initial_price: u64) -> Report {
    FullChecker { spec: market_spec(initial_price) }.check(&run_history(output, initial_price))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, ScenarioConfig};
    use sereth_types::IsolationLevel;

    fn small(kind: fn(u64, u64) -> ScenarioConfig) -> ScenarioConfig {
        let mut config = kind(8, 4);
        config.drain_ms = 60_000;
        config
    }

    #[test]
    fn sequential_run_is_clean_at_every_rung() {
        let config = small(ScenarioConfig::geth_unmodified).with_isolation(IsolationLevel::Sequential);
        let output = run_scenario(&config, 7);
        let report = audit_run(&output, config.initial_price);
        for level in IsolationLevel::ALL {
            assert!(report.holds_at(level), "sequential run violated {level}: {:?}", report.violations);
        }
        assert!(report.tallies.records > 0, "the run committed market traffic");
        assert!(report.tallies.reads > 0, "buyer observations were logged");
    }

    #[test]
    fn read_uncommitted_sereth_run_stays_g0_clean() {
        // Speculative reads may produce dirty reads (that is the paper's
        // trade), but the committed chain itself must stay free of
        // dirty-write cycles at every level — set is a CAS, so G0 is
        // impossible on a real chain.
        let config = small(ScenarioConfig::sereth_client);
        let output = run_scenario(&config, 7);
        let report = audit_run(&output, config.initial_price);
        assert!(report.holds_at(IsolationLevel::ReadUncommitted), "{:?}", report.violations);
    }
}
