//! The `many_markets` scenario: dozens of independent Sereth markets on
//! one node, hundreds of reader clients hammering READ-UNCOMMITTED views
//! while owners keep repricing and a miner keeps committing blocks.
//!
//! This is the workload the recompute-per-query RAA path collapses
//! under — every read re-filtered the whole pool — and the one the
//! incremental [`RaaService`](sereth_raa::RaaService) was built for:
//! reads touch only the queried market's cached series. The scenario
//! reports wall-clock read latency plus the service's hit/rebuild/resync
//! counters, and (sampled) cross-checks every view against batch
//! Algorithm 1 over a pool snapshot.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::GenesisBuilder;
use sereth_core::hms::{hash_mark_set, HmsConfig};
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::client::Owner;
use sereth_node::contract::{sereth_code, sereth_genesis_slots, set_selector, ContractForm};
use sereth_node::miner::{pending_view, MinerPolicy};
use sereth_node::node::{ClientKind, NodeConfig, NodeHandle, RaaBackend};
use sereth_raa::RaaMetrics;
use sereth_types::u256::U256;

/// Configuration of the many-markets read storm.
#[derive(Debug, Clone)]
pub struct ManyMarketsConfig {
    /// Independent Sereth market contracts (dozens).
    pub markets: usize,
    /// Reader clients issuing view queries (hundreds).
    pub readers: usize,
    /// Rounds of the workload loop.
    pub rounds: usize,
    /// Sets submitted per market per round.
    pub sets_per_round: usize,
    /// Reads issued per reader per round.
    pub reads_per_round: usize,
    /// A block is mined every `mine_every` rounds (commits pending sets).
    pub mine_every: usize,
    /// Which RAA backend the node runs.
    pub backend: RaaBackend,
    /// Every `verify_every`-th read is cross-checked against batch
    /// Algorithm 1 over a fresh pool snapshot (0 disables checking).
    pub verify_every: usize,
    /// Initial price of every market.
    pub initial_price: u64,
}

impl Default for ManyMarketsConfig {
    fn default() -> Self {
        Self {
            markets: 24,
            readers: 200,
            rounds: 6,
            sets_per_round: 4,
            reads_per_round: 2,
            mine_every: 2,
            backend: RaaBackend::default(),
            verify_every: 97,
            initial_price: 50,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct ManyMarketsReport {
    /// Scenario label (`many_markets/<backend>`).
    pub name: String,
    /// Total view reads issued.
    pub reads: u64,
    /// Mean wall-clock latency per read, in nanoseconds.
    pub mean_read_ns: f64,
    /// Reads that served an uncommitted (pending-series) view.
    pub uncommitted_views: u64,
    /// Reads cross-checked against batch Algorithm 1 (all must match —
    /// the run panics otherwise).
    pub verified_reads: u64,
    /// Blocks mined during the run.
    pub blocks: u64,
    /// Final pool size.
    pub pool_len: usize,
    /// Incremental-service counters (None on the recompute backend).
    pub raa: Option<RaaMetrics>,
}

/// Builds the scenario fixture shared by the scripted and concurrent
/// variants: one Sereth mining node with every market contract installed,
/// every owner funded, and RAA enabled for all markets. Both variants MUST
/// use this — their oracles assume the same genesis shape.
fn market_fixture(config: &ManyMarketsConfig) -> (Vec<SecretKey>, Vec<Address>, NodeHandle) {
    let owner_keys: Vec<SecretKey> =
        (0..config.markets).map(|m| SecretKey::from_label(7_000 + m as u64)).collect();
    let contracts: Vec<Address> =
        (0..config.markets).map(|m| Address::from_low_u64(0x3a17_0000 + m as u64)).collect();
    let mut genesis_builder = GenesisBuilder::new();
    for (key, contract) in owner_keys.iter().zip(&contracts) {
        genesis_builder =
            genesis_builder.fund(key.address(), U256::from(u64::MAX / 2)).contract_with_storage(
                *contract,
                sereth_code(ContractForm::Native),
                sereth_genesis_slots(&key.address(), H256::from_low_u64(config.initial_price)),
            );
    }
    let node = NodeHandle::new(
        genesis_builder.build(),
        NodeConfig::miner(contracts[0], MinerPolicy::Standard)
            .kind(ClientKind::Sereth)
            .coinbase(Address::from_low_u64(0xc0b0))
            .limits(BlockLimits { gas_limit: 64_000_000, max_txs: None })
            .raa_backend(config.backend.clone())
            .build(),
    );
    for contract in &contracts {
        node.enable_market(*contract);
    }
    (owner_keys, contracts, node)
}

/// The owners driving each market's repricing, built from the fixture.
fn market_owners(config: &ManyMarketsConfig, keys: &[SecretKey], contracts: &[Address]) -> Vec<Owner> {
    keys.iter()
        .zip(contracts)
        .map(|(key, contract)| {
            Owner::with_value(
                key.clone(),
                *contract,
                genesis_mark(),
                H256::from_low_u64(config.initial_price),
                1,
            )
        })
        .collect()
}

/// Runs the scenario; identical `(config, seed)` pairs take identical
/// decisions (wall-clock latencies vary, of course).
pub fn run_many_markets(config: &ManyMarketsConfig, seed: u64) -> ManyMarketsReport {
    assert!(config.markets > 0 && config.readers > 0, "markets and readers required");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9a9a_33aa);

    let (owner_keys, contracts, node) = market_fixture(config);
    let mut owners = market_owners(config, &owner_keys, &contracts);
    let readers: Vec<Address> =
        (0..config.readers).map(|r| Address::from_low_u64(0xbead_0000 + r as u64)).collect();

    let mut reads = 0u64;
    let mut uncommitted_views = 0u64;
    let mut verified_reads = 0u64;
    let mut blocks = 0u64;
    let mut read_time_ns = 0u128;
    let mut now = 0u64;

    for round in 0..config.rounds {
        // Owners reprice.
        for (m, owner) in owners.iter_mut().enumerate() {
            for s in 0..config.sets_per_round {
                let price = 100 + (round * config.sets_per_round + s) as u64 * 3 + m as u64;
                let tx = owner.next_set(&node, H256::from_low_u64(price));
                node.receive_tx(tx, now);
                now += 1;
            }
        }
        // Readers hammer views, spread over random markets.
        for reader in &readers {
            for _ in 0..config.reads_per_round {
                let market = rng.gen_range(0..config.markets);
                let start = Instant::now();
                let view = node.query_view_for(contracts[market], *reader);
                read_time_ns += start.elapsed().as_nanos();
                let (mark, value) = view.expect("sereth node always answers");
                reads += 1;
                let committed = node.with_inner(|inner| {
                    sereth_node::miner::committed_amv(&inner.chain.head_state_view(), &contracts[market])
                });
                if (mark, value) != committed {
                    uncommitted_views += 1;
                }
                if config.verify_every > 0 && reads.is_multiple_of(config.verify_every as u64) {
                    // Oracle: batch Algorithm 1 over a fresh snapshot.
                    let snapshot = node.with_inner(|inner| pending_view(&inner.pool));
                    let expected = hash_mark_set(
                        &snapshot,
                        &contracts[market],
                        set_selector(),
                        committed,
                        &HmsConfig::default(),
                    );
                    assert_eq!(
                        (mark, value),
                        (expected.view.mark, expected.view.value),
                        "read diverged from batch HMS on market {market}"
                    );
                    verified_reads += 1;
                }
            }
        }
        if config.mine_every > 0 && (round + 1).is_multiple_of(config.mine_every) {
            now = now.max((blocks + 1) * 15_000);
            if node.mine(now).is_some() {
                blocks += 1;
            }
        }
    }

    let backend_label = match config.backend {
        RaaBackend::Recompute => "recompute",
        RaaBackend::Service { .. } => "service",
    };
    ManyMarketsReport {
        name: format!("many_markets/{backend_label}"),
        reads,
        mean_read_ns: if reads == 0 { 0.0 } else { read_time_ns as f64 / reads as f64 },
        uncommitted_views,
        verified_reads,
        blocks,
        pool_len: node.pool_len(),
        raa: node.raa_metrics(),
    }
}

/// What the concurrent variant measured.
#[derive(Debug, Clone)]
pub struct ConcurrentMarketsReport {
    /// Total view reads issued across all reader threads.
    pub reads: u64,
    /// Reads whose `(mark, value)` components were cross-checked against
    /// the market's deterministic price chain (all of them — the run
    /// panics on a miss).
    pub verified_reads: u64,
    /// State-view integrity checks (view root vs header root).
    pub view_checks: u64,
    /// Blocks the sealer committed during the run.
    pub blocks: u64,
}

/// The concurrent read-storm variant: real OS threads instead of scripted
/// rounds. A sealer thread keeps repricing every market and committing
/// blocks while `reader_threads` threads hammer `query_view_for` and
/// capture O(1) `StateView`s.
///
/// Cross-checks under true concurrency:
/// * every captured view recomputes exactly the state root its header
///   committed to (no torn state reads);
/// * every served mark/value is a member of that market's deterministic
///   price chain (the sealer's prices are a pure function of the round, so
///   the full chain is known up front);
/// * held views from early blocks stay byte-stable to the end of the run.
pub fn run_many_markets_concurrent(
    config: &ManyMarketsConfig,
    reader_threads: usize,
    seed: u64,
) -> ConcurrentMarketsReport {
    use sereth_core::mark::compute_mark;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    assert!(config.markets > 0 && reader_threads > 0, "markets and reader threads required");

    let (owner_keys, contracts, node) = market_fixture(config);

    // The oracle: each market's full deterministic price chain. Prices are
    // a pure function of (round, s, market), so every mark/value a reader
    // can legally observe — committed or uncommitted — is known up front.
    let total_sets = config.rounds * config.sets_per_round;
    let mut valid_marks: Vec<std::collections::HashSet<H256>> = Vec::with_capacity(config.markets);
    let mut valid_values: Vec<std::collections::HashSet<H256>> = Vec::with_capacity(config.markets);
    for m in 0..config.markets {
        let mut mark = genesis_mark();
        let mut marks = std::collections::HashSet::from([mark]);
        let mut values = std::collections::HashSet::from([H256::from_low_u64(config.initial_price)]);
        for i in 0..total_sets {
            let value = H256::from_low_u64(100 + i as u64 * 3 + m as u64);
            mark = compute_mark(&mark, &value);
            marks.insert(mark);
            values.insert(value);
        }
        valid_marks.push(marks);
        valid_values.push(values);
    }

    let done = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let view_checks = AtomicU64::new(0);
    let mut blocks = 0u64;

    std::thread::scope(|scope| {
        // Readers first; they spin until the sealer raises `done`.
        for r in 0..reader_threads {
            let node = &node;
            let contracts = &contracts;
            let valid_marks = &valid_marks;
            let valid_values = &valid_values;
            let done = &done;
            let reads = &reads;
            let verified = &verified;
            let view_checks = &view_checks;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0xbead_0000 + r as u64));
                let caller = Address::from_low_u64(0xbead_0000 + r as u64);
                while !done.load(Ordering::Acquire) {
                    let market = rng.gen_range(0..contracts.len());
                    let (mark, value) =
                        node.query_view_for(contracts[market], caller).expect("sereth node answers");
                    assert!(
                        valid_marks[market].contains(&mark),
                        "market {market} served a mark outside its chain"
                    );
                    assert!(
                        valid_values[market].contains(&value),
                        "market {market} served a value outside its chain"
                    );
                    // Counted only after both membership checks passed, so
                    // the report's verified count is earned, not assumed.
                    verified.fetch_add(1, Ordering::Relaxed);
                    reads.fetch_add(1, Ordering::Relaxed);

                    // Every few reads, audit a captured state view against
                    // the header it was taken with.
                    if reads.load(Ordering::Relaxed).is_multiple_of(16) {
                        let (height, header_root, view) = node.with_inner(|inner| {
                            (
                                inner.chain.head_number(),
                                inner.chain.head_block().header.state_root,
                                inner.chain.head_state_view(),
                            )
                        });
                        assert_eq!(view.state_root(), header_root, "torn view at height {height}");
                        view_checks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The sealer: same repricing schedule as the scripted scenario,
        // committing every `mine_every` rounds, holding one view per block
        // and re-verifying them all at the end.
        let mut owners = market_owners(config, &owner_keys, &contracts);
        let mut held: Vec<(H256, sereth_chain::state::StateView)> = Vec::new();
        let mut now = 0u64;
        for round in 0..config.rounds {
            for (m, owner) in owners.iter_mut().enumerate() {
                for s in 0..config.sets_per_round {
                    let price = 100 + (round * config.sets_per_round + s) as u64 * 3 + m as u64;
                    let tx = owner.next_set(&node, H256::from_low_u64(price));
                    node.receive_tx(tx, now);
                    now += 1;
                }
            }
            if config.mine_every > 0 && (round + 1).is_multiple_of(config.mine_every) {
                now = now.max((blocks + 1) * 15_000);
                if let Some(block) = node.mine(now) {
                    blocks += 1;
                    let (_, view) = node.head_state_view();
                    held.push((block.header.state_root, view));
                }
            }
        }
        done.store(true, Ordering::Release);
        for (root, view) in &held {
            assert_eq!(view.state_root(), *root, "held per-block view drifted during the run");
        }
    });

    ConcurrentMarketsReport {
        reads: reads.load(Ordering::Relaxed),
        verified_reads: verified.load(Ordering::Relaxed),
        view_checks: view_checks.load(Ordering::Relaxed),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(backend: RaaBackend) -> ManyMarketsConfig {
        ManyMarketsConfig {
            markets: 6,
            readers: 30,
            rounds: 4,
            sets_per_round: 3,
            reads_per_round: 2,
            verify_every: 17,
            backend,
            ..ManyMarketsConfig::default()
        }
    }

    #[test]
    fn service_backend_serves_verified_uncommitted_views() {
        let report = run_many_markets(&small(RaaBackend::default()), 11);
        assert_eq!(report.reads, 30 * 2 * 4);
        assert!(report.verified_reads > 0, "the oracle cross-check must actually run");
        assert!(
            report.uncommitted_views > 0,
            "with pending sets every round, some views must be uncommitted"
        );
        let raa = report.raa.expect("service backend exposes metrics");
        assert_eq!(raa.resyncs, 0, "event buffer is large enough for this workload");
        assert!(raa.hits > 0, "repeat reads of an unchanged market must hit the cache");
        assert!(raa.tracked_contracts as usize <= 6);
    }

    #[test]
    fn recompute_backend_measures_but_has_no_service() {
        let report = run_many_markets(&small(RaaBackend::Recompute), 11);
        assert_eq!(report.reads, 30 * 2 * 4);
        assert!(report.raa.is_none());
        assert!(report.verified_reads > 0);
    }

    #[test]
    fn concurrent_variant_cross_checks_views_under_live_sealing() {
        let config = ManyMarketsConfig {
            markets: 4,
            rounds: 12,
            sets_per_round: 3,
            mine_every: 2,
            ..ManyMarketsConfig::default()
        };
        let report = run_many_markets_concurrent(&config, 3, 7);
        assert_eq!(report.blocks, 6, "sealer committed every other round");
        assert!(report.reads > 0, "reader threads actually queried");
        assert_eq!(report.verified_reads, report.reads, "every read was oracle-checked");
    }

    #[test]
    fn concurrent_variant_verifies_on_the_recompute_backend_too() {
        let config = ManyMarketsConfig {
            markets: 3,
            rounds: 8,
            sets_per_round: 2,
            mine_every: 2,
            backend: RaaBackend::Recompute,
            ..ManyMarketsConfig::default()
        };
        let report = run_many_markets_concurrent(&config, 2, 13);
        assert_eq!(report.blocks, 4);
        assert!(report.reads > 0);
    }

    #[test]
    fn backends_agree_on_what_readers_observe() {
        // Same seed, same workload decisions: the per-read (mark, value)
        // stream must be identical across backends, so the scenario-level
        // aggregates must match too.
        let service = run_many_markets(&small(RaaBackend::default()), 42);
        let recompute = run_many_markets(&small(RaaBackend::Recompute), 42);
        assert_eq!(service.uncommitted_views, recompute.uncommitted_views);
        assert_eq!(service.blocks, recompute.blocks);
        assert_eq!(service.pool_len, recompute.pool_len);
    }
}
