//! Parameter sweeps with seed replication — the machinery behind Figure 2
//! and the ablation studies.

use std::thread;

use crate::metrics::RunMetrics;
use crate::scenario::{run_scenario, ScenarioConfig};
use crate::stats::{summarize, Summary};

/// One aggregated point of a sweep: a scenario at a buy:set ratio.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scenario label.
    pub scenario: String,
    /// Sets submitted (the swept variable).
    pub num_sets: u64,
    /// buy:set ratio.
    pub ratio: f64,
    /// η per seed.
    pub etas: Vec<f64>,
    /// Aggregated η.
    pub eta: Summary,
    /// Mean latency of successful buys (ms) across seeds.
    pub buy_latency_mean_ms: f64,
    /// Mean latency of successful sets (ms) across seeds — the writer-side
    /// cost a buy-optimising scheduler can hide (EXT-PWV).
    pub set_latency_mean_ms: f64,
    /// Per-seed raw metrics for deeper reporting.
    pub runs: Vec<RunMetrics>,
}

/// Runs `config` once per seed, in parallel threads, and aggregates η.
pub fn run_point(config: &ScenarioConfig, seeds: &[u64]) -> SweepPoint {
    let runs: Vec<RunMetrics> = thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let config = config.clone();
                scope.spawn(move || run_scenario(&config, seed).metrics)
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("scenario thread panicked")).collect()
    });

    let etas: Vec<f64> = runs.iter().map(RunMetrics::eta_buys).collect();
    let buy_latencies: Vec<f64> = runs
        .iter()
        .filter(|run| !run.buy_latency_ms.is_empty())
        .map(|run| crate::stats::mean(&run.buy_latency_ms))
        .collect();
    let set_latencies: Vec<f64> = runs
        .iter()
        .filter(|run| !run.set_latency_ms.is_empty())
        .map(|run| crate::stats::mean(&run.set_latency_ms))
        .collect();
    SweepPoint {
        scenario: config.name.clone(),
        num_sets: config.num_sets,
        ratio: config.ratio(),
        eta: summarize(&etas),
        etas,
        buy_latency_mean_ms: crate::stats::mean(&buy_latencies),
        set_latency_mean_ms: crate::stats::mean(&set_latencies),
        runs,
    }
}

/// The Figure 2 sweep: for each scenario constructor and each set count,
/// run all seeds and aggregate.
pub fn sweep<F>(make_config: F, set_counts: &[u64], num_buys: u64, seeds: &[u64]) -> Vec<SweepPoint>
where
    F: Fn(u64, u64) -> ScenarioConfig,
{
    set_counts.iter().map(|&num_sets| run_point(&make_config(num_buys, num_sets), seeds)).collect()
}

/// The set counts the paper sweeps: 100 … 5 sets against 100 buys, i.e.
/// buy:set ratios 1:1 … 20:1.
pub const PAPER_SET_COUNTS: [u64; 6] = [100, 50, 25, 20, 10, 5];

/// A constructor for a [`ScenarioConfig`] given `(num_buys, num_sets)`.
pub type ScenarioFactory = fn(u64, u64) -> ScenarioConfig;

/// The three scenario families of Figure 2.
pub fn paper_scenarios() -> Vec<(&'static str, ScenarioFactory)> {
    vec![
        ("geth_unmodified", ScenarioConfig::geth_unmodified as ScenarioFactory),
        ("sereth_client", ScenarioConfig::sereth_client as ScenarioFactory),
        ("semantic_mining", ScenarioConfig::semantic_mining as ScenarioFactory),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_point_aggregates_per_seed() {
        let mut config = ScenarioConfig::sereth_client(10, 5);
        config.num_buyers = 2;
        config.drain_ms = 60_000;
        let point = run_point(&config, &[1, 2, 3]);
        assert_eq!(point.etas.len(), 3);
        assert_eq!(point.runs.len(), 3);
        assert_eq!(point.eta.n, 3);
        assert!((point.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_all_set_counts() {
        let points = sweep(
            |buys, sets| {
                let mut config = ScenarioConfig::geth_unmodified(buys, sets);
                config.num_buyers = 2;
                config.drain_ms = 30_000;
                config
            },
            &[4, 2],
            8,
            &[1],
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].num_sets, 4);
        assert_eq!(points[1].num_sets, 2);
    }

    #[test]
    fn paper_constants_match_the_text() {
        assert_eq!(PAPER_SET_COUNTS.len(), 6);
        assert_eq!(PAPER_SET_COUNTS[0], 100, "1:1 ratio");
        assert_eq!(PAPER_SET_COUNTS[5], 5, "20:1 ratio");
        assert_eq!(paper_scenarios().len(), 3);
    }
}
