//! The market workload of §II-F / §V: a stream of `buy`s at 1-second
//! intervals with `set`s "evenly spaced over the processing of the buys",
//! driven into the simulated network by an actor standing in for the
//! paper's client machines.

use std::sync::Arc;

use parking_lot::Mutex;
use sereth_crypto::hash::H256;
use sereth_net::sim::{Actor, Context};
use sereth_net::topology::ActorId;
use sereth_node::client::{Buyer, Owner, SerethCall};
use sereth_node::messages::Msg;
use sereth_node::node::NodeHandle;
use sereth_types::SimTime;

use sereth_consistency::ReadRecord;

use crate::metrics::{Submission, SubmissionLog};

/// One step of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadStep {
    /// The owner sets the price to `value`.
    Set {
        /// New price.
        value: u64,
    },
    /// Buyer `buyer` (index into the buyer set) submits a buy at whatever
    /// its client shows.
    Buy {
        /// Buyer index.
        buyer: usize,
    },
    /// The owner submits a buy against its own view (single-sender
    /// sequential history, §V).
    OwnerBuy,
}

/// A step with its submission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedStep {
    /// Submission time in simulated milliseconds.
    pub at: SimTime,
    /// The action.
    pub step: WorkloadStep,
}

/// Builds the paper's market plan: `num_buys` buys at `tx_interval_ms`,
/// `num_sets` sets evenly spaced across them, buyers round-robin.
/// Set values walk upward from `base_price + 1` so every set changes the
/// price ("the price changes frequently and unpredictably", §II-F).
pub fn market_plan(
    num_buys: u64,
    num_sets: u64,
    tx_interval_ms: SimTime,
    num_buyers: usize,
    base_price: u64,
) -> Vec<TimedStep> {
    let mut steps: Vec<TimedStep> = Vec::with_capacity((num_buys + num_sets) as usize);
    for i in 0..num_buys {
        steps.push(TimedStep {
            at: tx_interval_ms + i * tx_interval_ms,
            step: WorkloadStep::Buy { buyer: (i as usize) % num_buyers.max(1) },
        });
    }
    let span = num_buys.max(1) * tx_interval_ms;
    for k in 0..num_sets {
        // Evenly spaced midpoints across the buy window.
        let at = tx_interval_ms + (span * (2 * k + 1)) / (2 * num_sets.max(1));
        steps.push(TimedStep { at, step: WorkloadStep::Set { value: base_price + k + 1 } });
    }
    steps.sort_by_key(|timed| timed.at);
    steps
}

/// A strictly alternating single-sender plan: set, buy, set, buy … all
/// from the owner's address (the §V sequential-history validation).
pub fn sequential_plan(pairs: u64, tx_interval_ms: SimTime, base_price: u64) -> Vec<TimedStep> {
    let mut steps = Vec::with_capacity(2 * pairs as usize);
    for k in 0..pairs {
        steps.push(TimedStep {
            at: tx_interval_ms + 2 * k * tx_interval_ms,
            step: WorkloadStep::Set { value: base_price + k + 1 },
        });
        steps.push(TimedStep {
            at: tx_interval_ms + (2 * k + 1) * tx_interval_ms,
            step: WorkloadStep::OwnerBuy,
        });
    }
    steps
}

/// The actor that executes a plan against the network.
pub struct MarketDriver {
    plan: Vec<TimedStep>,
    owner: Owner,
    buyers: Vec<Buyer>,
    /// Node handle each buyer queries (index-aligned with `buyers`).
    buyer_nodes: Vec<NodeHandle>,
    /// Actor id of each buyer's node.
    buyer_node_ids: Vec<ActorId>,
    /// The owner's node and its actor id.
    owner_node: NodeHandle,
    owner_node_id: ActorId,
    log: Arc<Mutex<SubmissionLog>>,
    cursor: usize,
}

impl MarketDriver {
    /// Assembles a driver. `buyers`, `buyer_nodes` and `buyer_node_ids`
    /// must be index-aligned.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        plan: Vec<TimedStep>,
        owner: Owner,
        buyers: Vec<Buyer>,
        buyer_nodes: Vec<NodeHandle>,
        buyer_node_ids: Vec<ActorId>,
        owner_node: NodeHandle,
        owner_node_id: ActorId,
        log: Arc<Mutex<SubmissionLog>>,
    ) -> Self {
        assert_eq!(buyers.len(), buyer_nodes.len());
        assert_eq!(buyers.len(), buyer_node_ids.len());
        Self { plan, owner, buyers, buyer_nodes, buyer_node_ids, owner_node, owner_node_id, log, cursor: 0 }
    }

    /// The first step's scheduled time, if any.
    pub fn first_tick_at(&self) -> Option<SimTime> {
        self.plan.first().map(|timed| timed.at)
    }

    fn execute_step(&mut self, index: usize, ctx: &mut Context<'_, Msg>) {
        let step = self.plan[index].step.clone();
        match step {
            WorkloadStep::Set { value } => {
                let tx = self.owner.next_set(&self.owner_node, H256::from_low_u64(value));
                self.log.lock().record(
                    tx.hash(),
                    Submission { call: SerethCall::Set, submitted_at: ctx.now(), sender: tx.sender() },
                );
                ctx.send_to(self.owner_node_id, Msg::SubmitTx(tx));
            }
            WorkloadStep::Buy { buyer } => {
                let node = self.buyer_nodes[buyer].clone();
                // Observe and build the buy in two explicit steps so the
                // observation itself is logged: the offline checker judges
                // each read against the committed chain at the height that
                // served it.
                let observation = self.buyers[buyer].observe_recorded(&node);
                let tx = self.buyers[buyer].next_buy_at(observation.mark, observation.value);
                let mut log = self.log.lock();
                log.record_read(ReadRecord {
                    reader: tx.sender(),
                    at_height: observation.height,
                    observed_mark: observation.mark,
                    observed_value: observation.value,
                });
                log.record(
                    tx.hash(),
                    Submission { call: SerethCall::Buy, submitted_at: ctx.now(), sender: tx.sender() },
                );
                drop(log);
                ctx.send_to(self.buyer_node_ids[buyer], Msg::SubmitTx(tx));
            }
            WorkloadStep::OwnerBuy => {
                let tx = self.owner.next_own_buy();
                self.log.lock().record(
                    tx.hash(),
                    Submission { call: SerethCall::Buy, submitted_at: ctx.now(), sender: tx.sender() },
                );
                ctx.send_to(self.owner_node_id, Msg::SubmitTx(tx));
            }
        }
    }
}

impl Actor<Msg> for MarketDriver {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Msg::WorkloadTick(index) = msg else { return };
        let index = index as usize;
        if index != self.cursor || index >= self.plan.len() {
            return;
        }
        self.execute_step(index, ctx);
        self.cursor += 1;
        if self.cursor < self.plan.len() {
            let delay = self.plan[self.cursor].at.saturating_sub(self.plan[index].at).max(1);
            ctx.wake_self(delay, Msg::WorkloadTick(self.cursor as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_plan_has_right_counts_and_ordering() {
        let plan = market_plan(100, 5, 1_000, 10, 50);
        assert_eq!(plan.len(), 105);
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        let buys = plan.iter().filter(|t| matches!(t.step, WorkloadStep::Buy { .. })).count();
        let sets = plan.iter().filter(|t| matches!(t.step, WorkloadStep::Set { .. })).count();
        assert_eq!(buys, 100);
        assert_eq!(sets, 5);
    }

    #[test]
    fn sets_are_evenly_spaced() {
        let plan = market_plan(100, 5, 1_000, 10, 50);
        let set_times: Vec<SimTime> =
            plan.iter().filter(|t| matches!(t.step, WorkloadStep::Set { .. })).map(|t| t.at).collect();
        assert_eq!(set_times, vec![11_000, 31_000, 51_000, 71_000, 91_000]);
    }

    #[test]
    fn one_to_one_ratio_interleaves() {
        let plan = market_plan(4, 4, 1_000, 2, 50);
        let kinds: Vec<bool> = plan.iter().map(|t| matches!(t.step, WorkloadStep::Set { .. })).collect();
        // buy@1000, set@1500, buy@2000, set@2500, ...
        assert_eq!(kinds, vec![false, true, false, true, false, true, false, true]);
    }

    #[test]
    fn buyers_rotate_round_robin() {
        let plan = market_plan(6, 0, 1_000, 3, 50);
        let buyers: Vec<usize> = plan
            .iter()
            .filter_map(|t| match t.step {
                WorkloadStep::Buy { buyer } => Some(buyer),
                _ => None,
            })
            .collect();
        assert_eq!(buyers, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn set_values_walk_upward() {
        let plan = market_plan(10, 3, 1_000, 1, 50);
        let values: Vec<u64> = plan
            .iter()
            .filter_map(|t| match t.step {
                WorkloadStep::Set { value } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![51, 52, 53]);
    }

    #[test]
    fn sequential_plan_alternates() {
        let plan = sequential_plan(3, 1_000, 50);
        assert_eq!(plan.len(), 6);
        for (i, timed) in plan.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(timed.step, WorkloadStep::Set { .. }));
            } else {
                assert_eq!(timed.step, WorkloadStep::OwnerBuy);
            }
        }
        assert!(plan.windows(2).all(|w| w[0].at < w[1].at));
    }
}
