//! State throughput and transaction efficiency — the paper's §III-A
//! metrics.
//!
//! "A new metric, state throughput, is defined here as the product of the
//! raw throughput and the ratio of transactions included in a block that
//! successfully make state changes. State throughput divided by raw
//! throughput yields the transaction efficiency η."

use std::collections::HashMap;

use sereth_consistency::ReadRecord;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_node::client::SerethCall;
use sereth_node::contract::{buy_ok_topic, set_ok_topic};
use sereth_node::node::NodeHandle;
use sereth_types::SimTime;

/// When and what each submitted transaction was — recorded by the workload
/// driver, joined against the chain afterwards. Also carries the read
/// observations the driver's buyers made (which node height served each
/// `observe`), so the offline checker can judge every read against the
/// committed chain.
#[derive(Debug, Clone, Default)]
pub struct SubmissionLog {
    entries: HashMap<H256, Submission>,
    reads: Vec<ReadRecord>,
}

/// One submitted transaction.
#[derive(Debug, Clone)]
pub struct Submission {
    /// What the transaction was.
    pub call: SerethCall,
    /// When the driver handed it to its node.
    pub submitted_at: SimTime,
    /// The submitting address.
    pub sender: Address,
}

impl SubmissionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a submission.
    pub fn record(&mut self, hash: H256, submission: Submission) {
        self.entries.insert(hash, submission);
    }

    /// Number of recorded submissions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a submission.
    pub fn get(&self, hash: &H256) -> Option<&Submission> {
        self.entries.get(hash)
    }

    /// Count of submissions of a given kind.
    pub fn count(&self, call: SerethCall) -> u64 {
        self.entries.values().filter(|s| s.call == call).count() as u64
    }

    /// Records one read-only observation (a buyer's `observe` before its
    /// buy) for the offline anomaly checker.
    pub fn record_read(&mut self, read: ReadRecord) {
        self.reads.push(read);
    }

    /// The logged read observations.
    pub fn reads(&self) -> &[ReadRecord] {
        &self.reads
    }
}

/// Everything measured from one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Simulated duration in milliseconds (first submission to last block).
    pub duration_ms: SimTime,
    /// Canonical blocks beyond genesis.
    pub blocks: u64,
    /// Buys submitted by the workload.
    pub buys_submitted: u64,
    /// Buys that made it into canonical blocks.
    pub buys_included: u64,
    /// Buys that changed state (`BuyOk` emitted).
    pub buys_succeeded: u64,
    /// Sets submitted.
    pub sets_submitted: u64,
    /// Sets included in canonical blocks.
    pub sets_included: u64,
    /// Sets that changed state (`SetOk` emitted).
    pub sets_succeeded: u64,
    /// Submission-to-commit latency of each *successful* buy.
    pub buy_latency_ms: Vec<f64>,
    /// Submission-to-commit latency of each *successful* set. Watch this
    /// alongside η: a scheduler can inflate buy efficiency by starving the
    /// writer (see the EXT-PWV experiment), and only the set latency
    /// exposes it.
    pub set_latency_ms: Vec<f64>,
    /// One telemetry snapshot per simulated node (index-aligned with the
    /// scenario's node list): phase histograms, counters, and block
    /// traces from the run, lock-free to read.
    pub node_telemetry: Vec<sereth_telemetry::TelemetrySnapshot>,
    /// Every read-only observation the workload's buyers made (mark,
    /// value, and the serving node's committed height at answer time) —
    /// fed to `sereth-consistency`'s dirty-read pass by
    /// [`crate::audit::audit_run`].
    pub reads: Vec<ReadRecord>,
}

impl RunMetrics {
    /// Transaction efficiency of buys: successful / submitted (the paper's
    /// Figure 2 y-axis: "each data point represents the result of 100 buy
    /// transactions, so state throughput is equivalent to η expressed as a
    /// percentage").
    pub fn eta_buys(&self) -> f64 {
        if self.buys_submitted == 0 {
            return 0.0;
        }
        self.buys_succeeded as f64 / self.buys_submitted as f64
    }

    /// Efficiency over *included* transactions only — η as Eq. 1 defines
    /// it (`T_state / T_raw` over what the blocks actually carry).
    pub fn eta_included(&self) -> f64 {
        let included = self.buys_included + self.sets_included;
        if included == 0 {
            return 0.0;
        }
        (self.buys_succeeded + self.sets_succeeded) as f64 / included as f64
    }

    /// Efficiency of sets (the paper reports this is 1.0 — "all of the
    /// sets succeed").
    pub fn eta_sets(&self) -> f64 {
        if self.sets_submitted == 0 {
            return 0.0;
        }
        self.sets_succeeded as f64 / self.sets_submitted as f64
    }

    /// Raw throughput in transactions per second (included transactions).
    pub fn raw_throughput_tps(&self) -> f64 {
        if self.duration_ms == 0 {
            return 0.0;
        }
        (self.buys_included + self.sets_included) as f64 / (self.duration_ms as f64 / 1000.0)
    }

    /// State throughput in successful transactions per second (§III-A).
    pub fn state_throughput_tps(&self) -> f64 {
        if self.duration_ms == 0 {
            return 0.0;
        }
        (self.buys_succeeded + self.sets_succeeded) as f64 / (self.duration_ms as f64 / 1000.0)
    }
}

/// Walks `node`'s canonical chain and joins it with the submission log.
pub fn collect_metrics(node: &NodeHandle, log: &SubmissionLog) -> RunMetrics {
    let mut metrics = RunMetrics {
        buys_submitted: log.count(SerethCall::Buy),
        sets_submitted: log.count(SerethCall::Set),
        reads: log.reads().to_vec(),
        ..RunMetrics::default()
    };

    node.with_inner(|inner| {
        let buy_topic = buy_ok_topic();
        let set_topic = set_ok_topic();
        let mut last_timestamp = 0;
        for stored in inner.chain.canonical_chain() {
            if stored.block.number() == 0 {
                continue;
            }
            metrics.blocks += 1;
            last_timestamp = stored.block.header.timestamp_ms;
            for (tx, receipt) in stored.block.transactions.iter().zip(&stored.receipts) {
                let Some(submission) = log.get(&tx.hash()) else { continue };
                match submission.call {
                    SerethCall::Buy => {
                        metrics.buys_included += 1;
                        if receipt.has_event(buy_topic) {
                            metrics.buys_succeeded += 1;
                            metrics.buy_latency_ms.push(
                                (stored.block.header.timestamp_ms.saturating_sub(submission.submitted_at))
                                    as f64,
                            );
                        }
                    }
                    SerethCall::Set => {
                        metrics.sets_included += 1;
                        if receipt.has_event(set_topic) {
                            metrics.sets_succeeded += 1;
                            metrics.set_latency_ms.push(
                                (stored.block.header.timestamp_ms.saturating_sub(submission.submitted_at))
                                    as f64,
                            );
                        }
                    }
                }
            }
        }
        metrics.duration_ms = last_timestamp;
    });
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_definitions() {
        let metrics = RunMetrics {
            duration_ms: 10_000,
            blocks: 2,
            buys_submitted: 100,
            buys_included: 80,
            buys_succeeded: 40,
            sets_submitted: 10,
            sets_included: 10,
            sets_succeeded: 10,
            buy_latency_ms: vec![],
            set_latency_ms: vec![],
            node_telemetry: vec![],
            reads: vec![],
        };
        assert!((metrics.eta_buys() - 0.4).abs() < 1e-12);
        assert!((metrics.eta_sets() - 1.0).abs() < 1e-12);
        assert!((metrics.eta_included() - 50.0 / 90.0).abs() < 1e-12);
        assert!((metrics.raw_throughput_tps() - 9.0).abs() < 1e-12);
        assert!((metrics.state_throughput_tps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let metrics = RunMetrics::default();
        assert_eq!(metrics.eta_buys(), 0.0);
        assert_eq!(metrics.eta_sets(), 0.0);
        assert_eq!(metrics.eta_included(), 0.0);
        assert_eq!(metrics.raw_throughput_tps(), 0.0);
        assert_eq!(metrics.state_throughput_tps(), 0.0);
    }

    #[test]
    fn submission_log_counts_by_kind() {
        let mut log = SubmissionLog::new();
        log.record(
            H256::from_low_u64(1),
            Submission { call: SerethCall::Buy, submitted_at: 5, sender: Address::from_low_u64(1) },
        );
        log.record(
            H256::from_low_u64(2),
            Submission { call: SerethCall::Set, submitted_at: 6, sender: Address::from_low_u64(2) },
        );
        log.record(
            H256::from_low_u64(3),
            Submission { call: SerethCall::Buy, submitted_at: 7, sender: Address::from_low_u64(1) },
        );
        assert_eq!(log.count(SerethCall::Buy), 2);
        assert_eq!(log.count(SerethCall::Set), 1);
        assert_eq!(log.len(), 3);
        assert!(log.get(&H256::from_low_u64(2)).is_some());
    }
}
