//! The abort-rate workload — an extension the paper motivates in §VI:
//! related work "on improving throughput and latency of concurrent systems
//! by reducing abort rate, defined as how many times a transaction is
//! retried before success."
//!
//! Here each buyer wants to complete exactly **one** purchase and retries
//! with a fresh view every time its previous attempt commits without
//! effect. The measured *abort rate* (attempts per completed purchase)
//! makes the cost of stale READ-COMMITTED views visible even when raw
//! eventual success rates converge: a Geth buyer may eventually buy, but
//! only after burning gas on many dead attempts.

use std::sync::Arc;

use parking_lot::Mutex;
use sereth_crypto::hash::H256;
use sereth_net::sim::{Actor, Context};
use sereth_net::topology::ActorId;
use sereth_node::client::{Buyer, Owner, SerethCall};
use sereth_node::contract::buy_ok_topic;
use sereth_node::messages::Msg;
use sereth_node::node::{NodeHandle, TxCommitStatus};
use sereth_types::SimTime;

use crate::metrics::{Submission, SubmissionLog};

/// Per-buyer bookkeeping of the retry loop.
struct RetrySlot {
    buyer: Buyer,
    node: NodeHandle,
    node_id: ActorId,
    /// The slot stays dormant until this time, staggering buyers across
    /// the repricing window so each faces live churn.
    start_at: SimTime,
    in_flight: Option<H256>,
    attempts: u64,
    completed_at: Option<SimTime>,
}

/// Results of a retry run, one entry per buyer.
#[derive(Debug, Clone, Default)]
pub struct RetryStats {
    /// Attempts each buyer made (≥ 1 once it ever submitted).
    pub attempts: Vec<u64>,
    /// Completion time per buyer (None = never completed).
    pub completed_at: Vec<Option<SimTime>>,
}

impl RetryStats {
    /// Fraction of buyers that completed their purchase.
    pub fn completion_rate(&self) -> f64 {
        if self.completed_at.is_empty() {
            return 0.0;
        }
        self.completed_at.iter().filter(|c| c.is_some()).count() as f64 / self.completed_at.len() as f64
    }

    /// Mean attempts per *completed* purchase — the abort rate plus one.
    pub fn mean_attempts_per_success(&self) -> f64 {
        let completed: Vec<f64> = self
            .attempts
            .iter()
            .zip(&self.completed_at)
            .filter(|(_, done)| done.is_some())
            .map(|(a, _)| *a as f64)
            .collect();
        crate::stats::mean(&completed)
    }

    /// Mean abort count (retries before success) per completed purchase.
    pub fn abort_rate(&self) -> f64 {
        (self.mean_attempts_per_success() - 1.0).max(0.0)
    }
}

/// A driver where the owner reprices on a schedule and every buyer
/// retries until its purchase lands.
pub struct RetryDriver {
    owner: Owner,
    owner_node: NodeHandle,
    owner_node_id: ActorId,
    slots: Vec<RetrySlot>,
    log: Arc<Mutex<SubmissionLog>>,
    stats: Arc<Mutex<RetryStats>>,
    /// Price changes remaining.
    sets_remaining: u64,
    set_interval: SimTime,
    poll_interval: SimTime,
    next_price: u64,
    deadline: SimTime,
}

impl RetryDriver {
    /// Builds the driver. Buyers are index-aligned with `nodes`/`node_ids`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        owner: Owner,
        owner_node: NodeHandle,
        owner_node_id: ActorId,
        buyers: Vec<Buyer>,
        nodes: Vec<NodeHandle>,
        node_ids: Vec<ActorId>,
        num_sets: u64,
        set_interval: SimTime,
        poll_interval: SimTime,
        base_price: u64,
        deadline: SimTime,
        log: Arc<Mutex<SubmissionLog>>,
        stats: Arc<Mutex<RetryStats>>,
    ) -> Self {
        assert_eq!(buyers.len(), nodes.len());
        assert_eq!(buyers.len(), node_ids.len());
        {
            let mut stats = stats.lock();
            stats.attempts = vec![0; buyers.len()];
            stats.completed_at = vec![None; buyers.len()];
        }
        // Spread buyer start times over the first ~60 % of the repricing
        // window: everyone begins while the price is still moving.
        let churn_window = num_sets.saturating_mul(set_interval);
        let count = nodes.len().max(1) as u64;
        let slots = buyers
            .into_iter()
            .zip(nodes)
            .zip(node_ids)
            .enumerate()
            .map(|(i, ((buyer, node), node_id))| RetrySlot {
                buyer,
                node,
                node_id,
                start_at: churn_window * 6 / 10 * i as u64 / count,
                in_flight: None,
                attempts: 0,
                completed_at: None,
            })
            .collect();
        Self {
            owner,
            owner_node,
            owner_node_id,
            slots,
            log,
            stats,
            sets_remaining: num_sets,
            set_interval,
            poll_interval,
            next_price: base_price + 1,
            deadline,
        }
    }

    fn submit_buy(&mut self, index: usize, ctx: &mut Context<'_, Msg>) {
        let slot = &mut self.slots[index];
        let tx = slot.buyer.next_buy(&slot.node);
        slot.in_flight = Some(tx.hash());
        slot.attempts += 1;
        self.log.lock().record(
            tx.hash(),
            Submission { call: SerethCall::Buy, submitted_at: ctx.now(), sender: tx.sender() },
        );
        ctx.send_to(slot.node_id, Msg::SubmitTx(tx));
    }

    fn poll(&mut self, ctx: &mut Context<'_, Msg>) {
        for index in 0..self.slots.len() {
            if self.slots[index].completed_at.is_some() || ctx.now() < self.slots[index].start_at {
                continue;
            }
            let status = match &self.slots[index].in_flight {
                Some(hash) => self.slots[index].node.tx_commit_status(hash, buy_ok_topic()),
                None => {
                    self.submit_buy(index, ctx);
                    continue;
                }
            };
            match status {
                TxCommitStatus::Succeeded { .. } => {
                    self.slots[index].completed_at = Some(ctx.now());
                }
                TxCommitStatus::NoEffect { .. } => {
                    // The attempt burned gas for nothing: retry with a
                    // fresh observation.
                    self.submit_buy(index, ctx);
                }
                TxCommitStatus::Pending => {}
            }
        }
        // Publish progress so the runner can read it after the horizon.
        let mut stats = self.stats.lock();
        for (i, slot) in self.slots.iter().enumerate() {
            stats.attempts[i] = slot.attempts;
            stats.completed_at[i] = slot.completed_at;
        }
    }
}

impl Actor<Msg> for RetryDriver {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            // Tick 0 bootstraps: first poll + first set timer.
            Msg::WorkloadTick(0) => {
                self.poll(ctx);
                if ctx.now() + self.poll_interval <= self.deadline {
                    ctx.wake_self(self.poll_interval, Msg::WorkloadTick(0));
                }
                if self.sets_remaining > 0 {
                    ctx.wake_self(self.set_interval, Msg::WorkloadTick(1));
                }
            }
            // Tick 1: the owner reprices.
            Msg::WorkloadTick(1) => {
                if self.sets_remaining == 0 {
                    return;
                }
                self.sets_remaining -= 1;
                let tx = self.owner.next_set(&self.owner_node, H256::from_low_u64(self.next_price));
                self.next_price += 1;
                self.log.lock().record(
                    tx.hash(),
                    Submission { call: SerethCall::Set, submitted_at: ctx.now(), sender: tx.sender() },
                );
                ctx.send_to(self.owner_node_id, Msg::SubmitTx(tx));
                if self.sets_remaining > 0 && ctx.now() + self.set_interval <= self.deadline {
                    ctx.wake_self(self.set_interval, Msg::WorkloadTick(1));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_stats_arithmetic() {
        let stats =
            RetryStats { attempts: vec![1, 3, 5, 2], completed_at: vec![Some(10), Some(20), None, Some(30)] };
        assert!((stats.completion_rate() - 0.75).abs() < 1e-12);
        // Completed buyers used 1, 3, 2 attempts → mean 2.0 → abort 1.0.
        assert!((stats.mean_attempts_per_success() - 2.0).abs() < 1e-12);
        assert!((stats.abort_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = RetryStats::default();
        assert_eq!(stats.completion_rate(), 0.0);
        assert_eq!(stats.abort_rate(), 0.0);
    }
}
