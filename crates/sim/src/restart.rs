//! The STORE-SCALE restart scenario: a durable miner is killed mid-run,
//! restarted on the same directory, and must come back byte-equal —
//! then keep mining, and serve as the sync source for a fresh in-memory
//! peer.
//!
//! The workload is the paper's market: the owner drives a chained `set`
//! sequence through the native Sereth contract, one set per block, so
//! recovery exercises the `CodeRecord::Native` path (contract code is
//! journaled by name and re-resolved against genesis on reopen), not
//! just balances.

use std::fs;
use std::path::PathBuf;

use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_store::scratch_dir;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

/// Shape of one restart run.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Blocks mined (one `set` each) before the process "dies".
    pub blocks_before_crash: u64,
    /// Blocks mined after the restart, continuing the same mark chain.
    pub blocks_after_restart: u64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        Self { blocks_before_crash: 4, blocks_after_restart: 3 }
    }
}

/// Heads and roots observed at each stage of the run.
#[derive(Debug, Clone)]
pub struct RestartOutput {
    /// Head (number, hash) and state root when the miner was killed.
    pub pre_crash_head: (u64, H256),
    /// State root at the kill point.
    pub pre_crash_root: H256,
    /// Head right after reopening the same directory.
    pub recovered_head: (u64, H256),
    /// State root right after recovery.
    pub recovered_root: H256,
    /// Head after the post-restart mining phase.
    pub final_head: (u64, H256),
    /// State root after the post-restart mining phase.
    pub final_root: H256,
    /// Head of the in-memory peer synced from the recovered miner.
    pub peer_head: (u64, H256),
    /// State root of the synced peer.
    pub peer_root: H256,
}

impl RestartOutput {
    /// Recovery reproduced the pre-crash chain byte-for-byte.
    pub fn recovered_byte_equal(&self) -> bool {
        self.recovered_head == self.pre_crash_head && self.recovered_root == self.pre_crash_root
    }

    /// The in-memory peer converged on the recovered miner's final chain.
    pub fn peer_converged(&self) -> bool {
        self.peer_head == self.final_head && self.peer_root == self.final_root
    }
}

fn market_genesis(owner: &SecretKey, contract: Address) -> Genesis {
    GenesisBuilder::new()
        .fund(owner.address(), U256::from(u64::MAX / 2))
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build()
}

fn miner_config(contract: Address, dir: &PathBuf) -> NodeConfig {
    NodeConfig::miner(contract, MinerPolicy::Standard).durable_store(dir).build()
}

fn set_tx(owner: &SecretKey, contract: Address, nonce: u64, prev: H256, value: H256) -> Transaction {
    let flag = if nonce == 0 { Flag::Head } else { Flag::Success };
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 2,
            gas_limit: 100_000,
            to: Some(contract),
            value: U256::ZERO,
            input: Fpv::new(flag, prev, value).to_calldata(set_selector()),
        },
        owner,
    )
}

/// Mines `count` blocks, one chained `set` per block, starting at nonce
/// `*nonce` and mark `*mark`; both advance in place so the caller can
/// resume the chain after a restart.
fn mine_sets(
    node: &NodeHandle,
    owner: &SecretKey,
    contract: Address,
    count: u64,
    nonce: &mut u64,
    mark: &mut H256,
) {
    for _ in 0..count {
        let value = H256::from_low_u64(1_000 + *nonce);
        let now = (*nonce + 1) * 15_000;
        assert!(node.receive_tx(set_tx(owner, contract, *nonce, *mark, value), now), "set accepted");
        let mined = node.mine(now).expect("miner seals a block");
        assert_eq!(mined.transactions.len(), 1, "the set must commit");
        *mark = compute_mark(mark, &value);
        *nonce += 1;
    }
}

/// Canonical chain of `node` above genesis, ascending, read back through
/// the public block API — the blocks a syncing peer would request.
fn canonical_blocks(node: &NodeHandle, genesis_hash: H256) -> Vec<sereth_types::block::Block> {
    let mut blocks = Vec::new();
    let mut cursor = node.head_hash();
    while cursor != genesis_hash {
        let block = node.block_by_hash(&cursor).expect("canonical block readable");
        cursor = block.header.parent_hash;
        blocks.push(block);
    }
    blocks.reverse();
    blocks
}

/// Runs the kill → reopen → keep-mining → peer-resync sequence in a
/// scratch directory (removed before returning).
pub fn run_restart(config: &RestartConfig) -> RestartOutput {
    let owner = SecretKey::from_label(1);
    let contract = default_contract_address();
    let genesis = market_genesis(&owner, contract);
    let genesis_hash = genesis.block.hash();
    let dir = scratch_dir("sim-restart");

    let mut nonce = 0u64;
    let mut mark = genesis_mark();

    // Phase 1: mine, then "kill -9" (drop without any shutdown path).
    let node = NodeHandle::open(genesis.clone(), miner_config(contract, &dir)).expect("fresh dir opens");
    mine_sets(&node, &owner, contract, config.blocks_before_crash, &mut nonce, &mut mark);
    let pre_crash_head = node.head_id();
    let pre_crash_root = node.head_state_root();
    drop(node);

    // Phase 2: restart on the same directory; recovery must be
    // byte-equal and the node must keep mining the same mark chain.
    let node = NodeHandle::open(genesis.clone(), miner_config(contract, &dir)).expect("recovery succeeds");
    let recovered_head = node.head_id();
    let recovered_root = node.head_state_root();
    mine_sets(&node, &owner, contract, config.blocks_after_restart, &mut nonce, &mut mark);
    let final_head = node.head_id();
    let final_root = node.head_state_root();

    // Phase 3: a fresh in-memory peer syncs from the survivor over the
    // ordinary block-gossip entry point.
    let peer = NodeHandle::new(genesis, NodeConfig::geth(contract).no_miner().build());
    for block in canonical_blocks(&node, genesis_hash) {
        peer.receive_block(block);
    }
    let peer_head = peer.head_id();
    let peer_root = peer.head_state_root();

    drop(node);
    let _ = fs::remove_dir_all(&dir);
    RestartOutput {
        pre_crash_head,
        pre_crash_root,
        recovered_head,
        recovered_root,
        final_head,
        final_root,
        peer_head,
        peer_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restarted_miner_recovers_byte_equal_and_extends() {
        let config = RestartConfig { blocks_before_crash: 4, blocks_after_restart: 3 };
        let out = run_restart(&config);
        assert!(out.recovered_byte_equal(), "recovery diverged: {out:?}");
        assert_eq!(out.pre_crash_head.0, 4);
        assert_eq!(out.final_head.0, 7, "the recovered miner keeps mining");
        assert_ne!(out.final_root, out.pre_crash_root, "post-restart blocks change state");
        assert!(out.peer_converged(), "peer resync diverged: {out:?}");
    }

    #[test]
    fn restart_with_no_new_blocks_is_a_pure_recovery() {
        let out = run_restart(&RestartConfig { blocks_before_crash: 2, blocks_after_restart: 0 });
        assert!(out.recovered_byte_equal());
        assert_eq!(out.final_head, out.recovered_head);
        assert!(out.peer_converged());
    }
}
