//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use sereth_crypto::hash::H256;
use sereth_crypto::keccak::{keccak256, keccak256_concat, Keccak256};
use sereth_crypto::rlp::{RlpReader, RlpStream};
use sereth_crypto::sig::SecretKey;

proptest! {
    /// Streaming absorption is equivalent to one-shot hashing regardless of
    /// how the input is chunked.
    #[test]
    fn keccak_streaming_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                        chunk in 1usize..64) {
        let mut hasher = Keccak256::new();
        for piece in data.chunks(chunk) {
            hasher.update(piece);
        }
        prop_assert_eq!(hasher.finalize(), keccak256(&data));
    }

    /// `keccak256_concat` is exactly keccak over the concatenation.
    #[test]
    fn concat_hash_is_concatenation(a in proptest::collection::vec(any::<u8>(), 0..256),
                                    b in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        prop_assert_eq!(keccak256_concat(&a, &b), keccak256(&joined));
    }

    /// Hashing is injective in practice: distinct short inputs never collide
    /// in these runs (a smoke test that the sponge actually mixes input).
    #[test]
    fn distinct_inputs_hash_distinctly(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(keccak256(&a), keccak256(&b));
    }

    /// RLP round-trip: encode a list of arbitrary strings and a u64, decode
    /// it back unchanged with no trailing bytes.
    #[test]
    fn rlp_round_trip(items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..8),
                      tail in any::<u64>()) {
        let mut stream = RlpStream::new_list(items.len() + 1);
        for item in &items {
            stream = stream.append_bytes(item);
        }
        let encoded = stream.append_u64(tail).finish();

        let mut outer = RlpReader::new(&encoded);
        let mut list = outer.read_list().unwrap();
        for item in &items {
            prop_assert_eq!(list.read_bytes().unwrap(), &item[..]);
        }
        prop_assert_eq!(list.read_u64().unwrap(), tail);
        list.finish().unwrap();
        outer.finish().unwrap();
    }

    /// Decoding arbitrary bytes never panics — it either parses or errors.
    #[test]
    fn rlp_decoding_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = RlpReader::new(&data);
        let _ = reader.read_bytes();
        let mut reader = RlpReader::new(&data);
        let _ = reader.read_list();
        let mut reader = RlpReader::new(&data);
        let _ = reader.read_u64();
    }

    /// Signature verification accepts the signed digest and rejects any
    /// other digest or sender.
    #[test]
    fn signature_binding(label_a in 0u64..1000, label_b in 0u64..1000,
                         payload in proptest::collection::vec(any::<u8>(), 0..64),
                         other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let key = SecretKey::from_label(label_a);
        let digest = H256::keccak(&payload);
        let sig = key.sign(digest);
        prop_assert!(sig.verify(&key.address(), digest));
        if payload != other {
            prop_assert!(!sig.verify(&key.address(), H256::keccak(&other)));
        }
        if label_a != label_b {
            let stranger = SecretKey::from_label(label_b);
            prop_assert!(!sig.verify(&stranger.address(), digest));
        }
    }

    /// Hex round-trip for H256.
    #[test]
    fn h256_hex_round_trip(bytes in any::<[u8; 32]>()) {
        let value = H256::new(bytes);
        let parsed: H256 = value.to_hex().parse().unwrap();
        prop_assert_eq!(parsed, value);
    }
}
