//! Keccak sponge construction and the Keccak-f\[1600\] permutation.
//!
//! Implemented from scratch against the Keccak reference specification.
//! Two flavours are exposed:
//!
//! * [`Keccak256`] — the *original* Keccak-256 used by Ethereum
//!   (multi-rate padding with domain byte `0x01`);
//! * [`Sha3_256`] — the FIPS-202 standardised SHA3-256
//!   (domain byte `0x06`).
//!
//! The paper's Hash-Mark-Set algorithm computes every transaction *mark*
//! as `keccak256(prev_mark || value)` (§III-C), so this module sits at the
//! very bottom of the dependency graph.
//!
//! # Examples
//!
//! ```
//! use sereth_crypto::keccak::keccak256;
//!
//! let digest = keccak256(b"");
//! assert_eq!(
//!     hex::encode(digest),
//!     "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
//! );
//! # mod hex { pub fn encode(b: [u8; 32]) -> String {
//! #   b.iter().map(|x| format!("{x:02x}")).collect() } }
//! ```

/// Number of 64-bit lanes in the Keccak state (5 × 5).
const LANES: usize = 25;

/// Rate in bytes for a 256-bit capacity sponge: (1600 − 2·256) / 8.
const RATE_256: usize = 136;

/// Round constants for the ι step of Keccak-f\[1600\].
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the ρ step, indexed `x + 5 * y`.
const RHO_OFFSETS: [u32; LANES] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// Applies the full 24-round Keccak-f\[1600\] permutation in place.
///
/// Exposed publicly so property tests and benchmarks can exercise the
/// permutation directly.
pub fn keccak_f1600(state: &mut [u64; LANES]) {
    for &rc in &ROUND_CONSTANTS {
        // θ: column parity mixing.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }

        // ρ and π: rotate lanes, then permute their positions.
        let mut b = [0u64; LANES];
        for x in 0..5 {
            for y in 0..5 {
                let rotated = state[x + 5 * y].rotate_left(RHO_OFFSETS[x + 5 * y]);
                b[y + 5 * ((2 * x + 3 * y) % 5)] = rotated;
            }
        }

        // χ: non-linear step along rows.
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] = b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // ι: break symmetry with the round constant.
        state[0] ^= rc;
    }
}

/// Incremental sponge with a 136-byte rate and a caller-supplied padding
/// domain byte (`0x01` for Keccak, `0x06` for SHA-3).
#[derive(Clone)]
struct Sponge {
    state: [u64; LANES],
    /// Bytes absorbed into the current (incomplete) rate block.
    buffer: [u8; RATE_256],
    buffered: usize,
    domain: u8,
}

impl Sponge {
    const fn new(domain: u8) -> Self {
        Self { state: [0; LANES], buffer: [0; RATE_256], buffered: 0, domain }
    }

    fn absorb(&mut self, mut input: &[u8]) {
        // Top up a partial block first.
        if self.buffered > 0 {
            let take = input.len().min(RATE_256 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == RATE_256 {
                let block = self.buffer;
                self.absorb_block(&block);
                self.buffered = 0;
            }
            if input.is_empty() {
                // The buffer may still hold a partial block; leave it.
                return;
            }
        }
        // Full blocks straight from the input.
        while input.len() >= RATE_256 {
            let (block, rest) = input.split_at(RATE_256);
            let mut tmp = [0u8; RATE_256];
            tmp.copy_from_slice(block);
            self.absorb_block(&tmp);
            input = rest;
        }
        // Stash the tail.
        self.buffer[..input.len()].copy_from_slice(input);
        self.buffered = input.len();
    }

    fn absorb_block(&mut self, block: &[u8; RATE_256]) {
        for (lane, chunk) in block.chunks_exact(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.state[lane] ^= u64::from_le_bytes(word);
        }
        keccak_f1600(&mut self.state);
    }

    fn finalize(mut self) -> [u8; 32] {
        // Multi-rate padding: domain byte, zeros, final bit.
        let mut block = [0u8; RATE_256];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = self.domain;
        block[RATE_256 - 1] |= 0x80;
        self.absorb_block(&block);

        let mut out = [0u8; 32];
        for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }
}

/// Streaming Keccak-256 hasher (Ethereum's hash function).
///
/// # Examples
///
/// ```
/// use sereth_crypto::keccak::{keccak256, Keccak256};
///
/// let mut hasher = Keccak256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), keccak256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    sponge: Sponge,
}

impl Keccak256 {
    /// Creates an empty hasher.
    pub const fn new() -> Self {
        Self { sponge: Sponge::new(0x01) }
    }

    /// Absorbs `input` into the sponge.
    pub fn update(&mut self, input: &[u8]) {
        self.sponge.absorb(input);
    }

    /// Consumes the hasher and squeezes the 32-byte digest.
    pub fn finalize(self) -> [u8; 32] {
        self.sponge.finalize()
    }
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Keccak256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Keccak256").field("buffered", &self.sponge.buffered).finish()
    }
}

/// Streaming SHA3-256 hasher (FIPS-202 padding).
#[derive(Clone)]
pub struct Sha3_256 {
    sponge: Sponge,
}

impl Sha3_256 {
    /// Creates an empty hasher.
    pub const fn new() -> Self {
        Self { sponge: Sponge::new(0x06) }
    }

    /// Absorbs `input` into the sponge.
    pub fn update(&mut self, input: &[u8]) {
        self.sponge.absorb(input);
    }

    /// Consumes the hasher and squeezes the 32-byte digest.
    pub fn finalize(self) -> [u8; 32] {
        self.sponge.finalize()
    }
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha3_256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha3_256").field("buffered", &self.sponge.buffered).finish()
    }
}

/// One-shot Keccak-256 of `input`.
pub fn keccak256(input: &[u8]) -> [u8; 32] {
    let mut hasher = Keccak256::new();
    hasher.update(input);
    hasher.finalize()
}

/// One-shot Keccak-256 over the concatenation of two byte strings.
///
/// This is the exact operation the paper uses for transaction marks:
/// `mark = Keccak256(prev_mark, value)` (§III-C).
pub fn keccak256_concat(a: &[u8], b: &[u8]) -> [u8; 32] {
    let mut hasher = Keccak256::new();
    hasher.update(a);
    hasher.update(b);
    hasher.finalize()
}

/// One-shot SHA3-256 of `input`.
pub fn sha3_256(input: &[u8]) -> [u8; 32] {
    let mut hasher = Sha3_256::new();
    hasher.update(input);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn keccak256_empty_matches_known_vector() {
        // This is Ethereum's ubiquitous EMPTY_CODE_HASH constant.
        assert_eq!(hex(&keccak256(b"")), "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
    }

    #[test]
    fn keccak256_abc_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn keccak256_fox_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"The quick brown fox jumps over the lazy dog")),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
        );
    }

    #[test]
    fn sha3_256_empty_matches_known_vector() {
        assert_eq!(hex(&sha3_256(b"")), "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
    }

    #[test]
    fn sha3_256_abc_matches_known_vector() {
        assert_eq!(
            hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn rate_boundary_lengths_hash_consistently() {
        // Exercise lengths straddling the 136-byte rate boundary.
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273, 1000] {
            let data = vec![0xa5u8; len];
            let one_shot = keccak256(&data);
            let mut streaming = Keccak256::new();
            for chunk in data.chunks(7) {
                streaming.update(chunk);
            }
            assert_eq!(one_shot, streaming.finalize(), "length {len}");
        }
    }

    #[test]
    fn keccak256_concat_equals_single_update() {
        let a = b"previous-mark-bytes";
        let b = b"value-bytes";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        assert_eq!(keccak256_concat(a, b), keccak256(&joined));
    }

    #[test]
    fn keccak_and_sha3_differ_on_same_input() {
        assert_ne!(keccak256(b"abc"), sha3_256(b"abc"));
    }

    #[test]
    fn permutation_changes_state() {
        let mut state = [0u64; 25];
        keccak_f1600(&mut state);
        assert_ne!(state, [0u64; 25]);
        // First lane of Keccak-f\[1600\] applied to the zero state is a
        // published reference value.
        assert_eq!(state[0], 0xf125_8f79_40e1_dde7);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Keccak256::new()).is_empty());
        assert!(!format!("{:?}", Sha3_256::new()).is_empty());
    }
}
