//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is Ethereum's canonical serialization for transactions and blocks.
//! We implement the subset the substrate needs — byte strings, unsigned
//! integers (minimal big-endian, no leading zeros), and lists — with strict
//! canonical-form checks on decode so that replay validation cannot be
//! confused by non-canonical encodings.

use core::fmt;

/// Error returned by [`RlpReader`] when input is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlpError {
    /// Input ended before the announced payload.
    UnexpectedEof,
    /// A string used a long form when the short form was required.
    NonCanonical,
    /// Expected a string item but found a list (or vice versa).
    WrongKind {
        /// `true` if a list was expected.
        expected_list: bool,
    },
    /// An integer had leading zero bytes or overflowed the target width.
    BadInteger,
    /// Trailing bytes remained after the outermost item.
    TrailingBytes,
}

impl fmt::Display for RlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of rlp input"),
            Self::NonCanonical => write!(f, "non-canonical rlp encoding"),
            Self::WrongKind { expected_list: true } => write!(f, "expected rlp list"),
            Self::WrongKind { expected_list: false } => write!(f, "expected rlp string"),
            Self::BadInteger => write!(f, "non-canonical rlp integer"),
            Self::TrailingBytes => write!(f, "trailing bytes after rlp item"),
        }
    }
}

impl std::error::Error for RlpError {}

/// Incremental RLP encoder.
///
/// # Examples
///
/// ```
/// use sereth_crypto::rlp::RlpStream;
///
/// let encoded = RlpStream::new_list(2)
///     .append_bytes(b"cat")
///     .append_bytes(b"dog")
///     .finish();
/// assert_eq!(encoded, vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']);
/// ```
#[derive(Debug, Clone)]
pub struct RlpStream {
    payload: Vec<u8>,
    expected_items: usize,
    appended: usize,
    /// `None` for a bare (non-list) stream.
    is_list: bool,
}

impl RlpStream {
    /// Starts a list encoder that expects exactly `items` appends.
    pub fn new_list(items: usize) -> Self {
        Self { payload: Vec::new(), expected_items: items, appended: 0, is_list: true }
    }

    /// Starts a bare encoder for a single string item.
    pub fn new() -> Self {
        Self { payload: Vec::new(), expected_items: 1, appended: 0, is_list: false }
    }

    /// Appends a byte-string item.
    pub fn append_bytes(mut self, bytes: &[u8]) -> Self {
        encode_bytes(bytes, &mut self.payload);
        self.appended += 1;
        self
    }

    /// Appends an unsigned integer in minimal big-endian form.
    pub fn append_u64(self, value: u64) -> Self {
        let be = value.to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(8);
        self.append_bytes(&be[first..])
    }

    /// Appends raw, already-RLP-encoded bytes (e.g. a nested list).
    pub fn append_raw(mut self, raw: &[u8]) -> Self {
        self.payload.extend_from_slice(raw);
        self.appended += 1;
        self
    }

    /// Finishes the stream and returns the encoding.
    ///
    /// # Panics
    ///
    /// Panics if the number of appended items differs from the count given
    /// to [`RlpStream::new_list`]; that is always a programming error.
    pub fn finish(self) -> Vec<u8> {
        assert_eq!(
            self.appended, self.expected_items,
            "rlp list arity mismatch: declared {} items, appended {}",
            self.expected_items, self.appended
        );
        if !self.is_list {
            return self.payload;
        }
        let mut out = Vec::with_capacity(self.payload.len() + 9);
        encode_length(self.payload.len(), 0xc0, &mut out);
        out.extend_from_slice(&self.payload);
        out
    }
}

impl Default for RlpStream {
    fn default() -> Self {
        Self::new()
    }
}

fn encode_length(len: usize, offset: u8, out: &mut Vec<u8>) {
    if len < 56 {
        out.push(offset + len as u8);
    } else {
        let be = (len as u64).to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(7);
        let len_bytes = &be[first..];
        out.push(offset + 55 + len_bytes.len() as u8);
        out.extend_from_slice(len_bytes);
    }
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    if bytes.len() == 1 && bytes[0] < 0x80 {
        out.push(bytes[0]);
    } else {
        encode_length(bytes.len(), 0x80, out);
        out.extend_from_slice(bytes);
    }
}

/// Encodes a single byte string as a standalone RLP item.
pub fn encode_item(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 9);
    encode_bytes(bytes, &mut out);
    out
}

/// Cursor-based RLP decoder with canonical-form enforcement.
#[derive(Debug, Clone)]
pub struct RlpReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> RlpReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Returns `true` if the cursor has consumed all input.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RlpError> {
        if self.pos + n > self.input.len() {
            return Err(RlpError::UnexpectedEof);
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_length(&mut self, prefix: u8, offset: u8) -> Result<usize, RlpError> {
        let code = prefix - offset;
        if code < 56 {
            return Ok(code as usize);
        }
        let len_of_len = (code - 55) as usize;
        let len_bytes = self.take(len_of_len)?;
        if len_bytes.first() == Some(&0) {
            return Err(RlpError::NonCanonical);
        }
        let mut len = 0usize;
        for &b in len_bytes {
            len =
                len.checked_mul(256).and_then(|l| l.checked_add(b as usize)).ok_or(RlpError::NonCanonical)?;
        }
        if len < 56 {
            return Err(RlpError::NonCanonical);
        }
        Ok(len)
    }

    /// Reads the next item as a byte string.
    ///
    /// # Errors
    ///
    /// Fails on EOF, on encountering a list, or on non-canonical encodings
    /// (e.g. a single byte `< 0x80` wrapped in a string header).
    pub fn read_bytes(&mut self) -> Result<&'a [u8], RlpError> {
        let prefix = *self.take(1)?.first().ok_or(RlpError::UnexpectedEof)?;
        match prefix {
            0x00..=0x7f => Ok(&self.input[self.pos - 1..self.pos]),
            0x80..=0xbf => {
                let len = self.read_length(prefix, 0x80)?;
                let data = self.take(len)?;
                if len == 1 && data[0] < 0x80 {
                    return Err(RlpError::NonCanonical);
                }
                Ok(data)
            }
            _ => Err(RlpError::WrongKind { expected_list: false }),
        }
    }

    /// Reads the next item as a `u64` in canonical minimal big-endian form.
    ///
    /// # Errors
    ///
    /// Fails if the integer has leading zeros or exceeds 8 bytes.
    pub fn read_u64(&mut self) -> Result<u64, RlpError> {
        let bytes = self.read_bytes()?;
        if bytes.len() > 8 || (bytes.len() > 1 && bytes[0] == 0) || (bytes.len() == 1 && bytes[0] == 0) {
            // Canonical zero is the empty string.
            return Err(RlpError::BadInteger);
        }
        let mut value = 0u64;
        for &b in bytes {
            value = (value << 8) | b as u64;
        }
        Ok(value)
    }

    /// Enters the next item, which must be a list, returning a reader over
    /// its payload.
    ///
    /// # Errors
    ///
    /// Fails on EOF or if the item is a string.
    pub fn read_list(&mut self) -> Result<RlpReader<'a>, RlpError> {
        let prefix = *self.take(1)?.first().ok_or(RlpError::UnexpectedEof)?;
        if !(0xc0..=0xff).contains(&prefix) {
            return Err(RlpError::WrongKind { expected_list: true });
        }
        let len = self.read_length(prefix, 0xc0)?;
        let payload = self.take(len)?;
        Ok(RlpReader::new(payload))
    }

    /// Asserts that the reader consumed everything.
    ///
    /// # Errors
    ///
    /// Returns [`RlpError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), RlpError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(RlpError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples_from_the_spec() {
        // "dog"
        assert_eq!(encode_item(b"dog"), vec![0x83, b'd', b'o', b'g']);
        // empty string
        assert_eq!(encode_item(b""), vec![0x80]);
        // single byte below 0x80 encodes as itself
        assert_eq!(encode_item(&[0x0f]), vec![0x0f]);
        // 0x80 needs a header
        assert_eq!(encode_item(&[0x80]), vec![0x81, 0x80]);
        // empty list
        assert_eq!(RlpStream::new_list(0).finish(), vec![0xc0]);
    }

    #[test]
    fn long_string_uses_length_of_length() {
        let data = vec![b'x'; 60];
        let encoded = encode_item(&data);
        assert_eq!(encoded[0], 0xb8);
        assert_eq!(encoded[1], 60);
        assert_eq!(&encoded[2..], &data[..]);
    }

    #[test]
    fn u64_round_trip() {
        for value in [0u64, 1, 0x7f, 0x80, 0xff, 0x100, u64::MAX] {
            let encoded = RlpStream::new_list(1).append_u64(value).finish();
            let mut outer = RlpReader::new(&encoded);
            let mut list = outer.read_list().unwrap();
            assert_eq!(list.read_u64().unwrap(), value, "value {value}");
            list.finish().unwrap();
            outer.finish().unwrap();
        }
    }

    #[test]
    fn bytes_round_trip_through_list() {
        let encoded =
            RlpStream::new_list(3).append_bytes(b"").append_bytes(b"a").append_bytes(&[0xffu8; 100]).finish();
        let mut outer = RlpReader::new(&encoded);
        let mut list = outer.read_list().unwrap();
        assert_eq!(list.read_bytes().unwrap(), b"");
        assert_eq!(list.read_bytes().unwrap(), b"a");
        assert_eq!(list.read_bytes().unwrap(), &[0xffu8; 100][..]);
        list.finish().unwrap();
        outer.finish().unwrap();
    }

    #[test]
    fn rejects_non_canonical_single_byte() {
        // 0x81 0x05 is the non-canonical form of 0x05.
        let mut reader = RlpReader::new(&[0x81, 0x05]);
        assert_eq!(reader.read_bytes().unwrap_err(), RlpError::NonCanonical);
    }

    #[test]
    fn rejects_leading_zero_integer() {
        let encoded = RlpStream::new_list(1).append_bytes(&[0x00, 0x01]).finish();
        let mut outer = RlpReader::new(&encoded);
        let mut list = outer.read_list().unwrap();
        assert_eq!(list.read_u64().unwrap_err(), RlpError::BadInteger);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut reader = RlpReader::new(&[0x83, b'd', b'o']);
        assert_eq!(reader.read_bytes().unwrap_err(), RlpError::UnexpectedEof);
    }

    #[test]
    fn rejects_trailing_bytes() {
        let reader = RlpReader::new(&[0x80]);
        assert_eq!(reader.finish().unwrap_err(), RlpError::TrailingBytes);
    }

    #[test]
    fn wrong_kind_is_reported() {
        let list = RlpStream::new_list(0).finish();
        let mut reader = RlpReader::new(&list);
        assert_eq!(reader.read_bytes().unwrap_err(), RlpError::WrongKind { expected_list: false });

        let string = encode_item(b"hi");
        let mut reader = RlpReader::new(&string);
        assert_eq!(reader.read_list().unwrap_err(), RlpError::WrongKind { expected_list: true });
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = RlpStream::new_list(2).append_u64(1).finish();
    }
}
