//! Binary Merkle commitments over ordered lists of 32-byte leaves.
//!
//! Ethereum commits to transactions, receipts, and state with
//! Merkle-Patricia tries. For replay validation the only property the
//! substrate needs is a deterministic, collision-resistant commitment, so we
//! substitute a simple binary Merkle tree (see `DESIGN.md` §7): leaves are
//! hashed pairwise with Keccak-256, odd nodes are carried up unchanged, and
//! the empty list commits to `keccak256("sereth/empty-merkle")`.

use crate::hash::H256;
use crate::keccak::{keccak256, keccak256_concat};

/// Commitment to the empty list.
pub fn empty_root() -> H256 {
    H256::new(keccak256(b"sereth/empty-merkle"))
}

/// Computes the binary Merkle root of `leaves` in order.
///
/// # Examples
///
/// ```
/// use sereth_crypto::hash::H256;
/// use sereth_crypto::merkle::merkle_root;
///
/// let a = H256::keccak(b"a");
/// let b = H256::keccak(b"b");
/// assert_ne!(merkle_root(&[a, b]), merkle_root(&[b, a]), "order matters");
/// ```
pub fn merkle_root(leaves: &[H256]) -> H256 {
    if leaves.is_empty() {
        return empty_root();
    }
    let mut level: Vec<H256> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => {
                    next.push(H256::new(keccak256_concat(left.as_bytes(), right.as_bytes())));
                }
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list_commits_to_constant() {
        assert_eq!(merkle_root(&[]), empty_root());
        assert!(!empty_root().is_zero());
    }

    #[test]
    fn single_leaf_is_its_own_root() {
        let leaf = H256::keccak(b"leaf");
        assert_eq!(merkle_root(&[leaf]), leaf);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let leaves: Vec<H256> = (0..5).map(H256::from_low_u64).collect();
        let base = merkle_root(&leaves);
        for i in 0..leaves.len() {
            let mut mutated = leaves.clone();
            mutated[i] = H256::from_low_u64(999);
            assert_ne!(merkle_root(&mutated), base, "leaf {i}");
        }
    }

    #[test]
    fn root_changes_with_length() {
        let leaves: Vec<H256> = (0..6).map(H256::from_low_u64).collect();
        assert_ne!(merkle_root(&leaves[..5]), merkle_root(&leaves[..6]));
    }

    #[test]
    fn odd_counts_are_handled() {
        for n in 1..12 {
            let leaves: Vec<H256> = (0..n).map(H256::from_low_u64).collect();
            // Must not panic, must be deterministic.
            assert_eq!(merkle_root(&leaves), merkle_root(&leaves));
        }
    }
}
