//! Fixed-width hash and byte-array newtypes, plus hex helpers.

use core::fmt;
use core::str::FromStr;

use crate::keccak::keccak256;

/// Error returned when parsing a fixed-width hex value fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseHexError {
    /// The input had the wrong number of hex digits.
    InvalidLength {
        /// Number of hex characters expected (after the optional `0x`).
        expected: usize,
        /// Number of hex characters found.
        found: usize,
    },
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidDigit(char),
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidLength { expected, found } => {
                write!(f, "invalid hex length: expected {expected} digits, found {found}")
            }
            Self::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseHexError {}

pub(crate) fn decode_hex_into(s: &str, out: &mut [u8]) -> Result<(), ParseHexError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if s.len() != out.len() * 2 {
        return Err(ParseHexError::InvalidLength { expected: out.len() * 2, found: s.len() });
    }
    fn nibble(c: char) -> Result<u8, ParseHexError> {
        c.to_digit(16).map(|d| d as u8).ok_or(ParseHexError::InvalidDigit(c))
    }
    let chars: Vec<char> = s.chars().collect();
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = (nibble(chars[2 * i])? << 4) | nibble(chars[2 * i + 1])?;
    }
    Ok(())
}

/// Encodes `bytes` as lowercase hex without a prefix.
pub fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

macro_rules! fixed_bytes {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub [u8; $len]);

        impl $name {
            /// Number of bytes in this value.
            pub const LEN: usize = $len;

            /// The all-zero value.
            pub const ZERO: Self = Self([0u8; $len]);

            /// Wraps a raw byte array.
            pub const fn new(bytes: [u8; $len]) -> Self {
                Self(bytes)
            }

            /// Borrows the underlying bytes.
            pub const fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Extracts the underlying byte array.
            pub const fn into_inner(self) -> [u8; $len] {
                self.0
            }

            /// Returns `true` if every byte is zero.
            pub fn is_zero(&self) -> bool {
                self.0.iter().all(|&b| b == 0)
            }

            /// Builds the value from a byte slice.
            ///
            /// # Errors
            ///
            /// Returns [`ParseHexError::InvalidLength`] if `slice` is not
            /// exactly [`Self::LEN`] bytes long.
            pub fn from_slice(slice: &[u8]) -> Result<Self, ParseHexError> {
                if slice.len() != $len {
                    return Err(ParseHexError::InvalidLength {
                        expected: $len * 2,
                        found: slice.len() * 2,
                    });
                }
                let mut out = [0u8; $len];
                out.copy_from_slice(slice);
                Ok(Self(out))
            }

            /// Formats as `0x`-prefixed lowercase hex.
            pub fn to_hex(&self) -> String {
                format!("0x{}", encode_hex(&self.0))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.to_hex())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Abbreviate for log readability: 0x1234..abcd.
                let hex = encode_hex(&self.0);
                if f.alternate() || hex.len() <= 12 {
                    write!(f, "0x{hex}")
                } else {
                    write!(f, "0x{}..{}", &hex[..6], &hex[hex.len() - 4..])
                }
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if f.alternate() {
                    write!(f, "0x")?;
                }
                write!(f, "{}", encode_hex(&self.0))
            }
        }

        impl FromStr for $name {
            type Err = ParseHexError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let mut out = [0u8; $len];
                decode_hex_into(s, &mut out)?;
                Ok(Self(out))
            }
        }

        impl From<[u8; $len]> for $name {
            fn from(bytes: [u8; $len]) -> Self {
                Self(bytes)
            }
        }

        impl From<$name> for [u8; $len] {
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
    };
}

fixed_bytes!(
    /// A 256-bit hash value (transaction hashes, block hashes, storage
    /// keys/values, and Hash-Mark-Set *marks*).
    H256,
    32
);

fixed_bytes!(
    /// A 160-bit account address, Ethereum style.
    H160,
    20
);

impl H256 {
    /// Hashes arbitrary bytes with Keccak-256.
    pub fn keccak(data: &[u8]) -> Self {
        Self(keccak256(data))
    }

    /// Interprets the low 8 bytes (big-endian) as a `u64`, ignoring the rest.
    ///
    /// Convenient for test fixtures and counters stored in contract slots.
    pub fn low_u64(&self) -> u64 {
        let mut word = [0u8; 8];
        word.copy_from_slice(&self.0[24..32]);
        u64::from_be_bytes(word)
    }

    /// Builds a value whose low 8 bytes (big-endian) are `value`.
    pub fn from_low_u64(value: u64) -> Self {
        let mut out = [0u8; 32];
        out[24..32].copy_from_slice(&value.to_be_bytes());
        Self(out)
    }
}

impl H160 {
    /// Builds a value whose low 8 bytes (big-endian) are `value`.
    ///
    /// Used pervasively by tests to make readable fixture addresses.
    pub fn from_low_u64(value: u64) -> Self {
        let mut out = [0u8; 20];
        out[12..20].copy_from_slice(&value.to_be_bytes());
        Self(out)
    }
}

/// 64-bit FNV-1a over `bytes` — the cheap non-cryptographic hash the
/// shard routers (TxPool sender shards, RAA contract shards) use to
/// spread both low_u64-style test addresses and keccak-derived ones.
/// Exists once so the constants cannot drift between copies.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors (offset basis for "", "a",
        // "foobar").
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn h256_hex_round_trip() {
        let value = H256::keccak(b"round-trip");
        let parsed: H256 = value.to_hex().parse().unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn h256_parse_rejects_bad_length() {
        let err = "0x1234".parse::<H256>().unwrap_err();
        assert!(matches!(err, ParseHexError::InvalidLength { expected: 64, .. }));
    }

    #[test]
    fn h256_parse_rejects_bad_digit() {
        let s = format!("0x{}", "zz".repeat(32));
        let err = s.parse::<H256>().unwrap_err();
        assert_eq!(err, ParseHexError::InvalidDigit('z'));
    }

    #[test]
    fn h256_parse_accepts_unprefixed() {
        let hex = "11".repeat(32);
        let value: H256 = hex.parse().unwrap();
        assert_eq!(value.0, [0x11u8; 32]);
    }

    #[test]
    fn low_u64_round_trip() {
        let value = H256::from_low_u64(0xdead_beef);
        assert_eq!(value.low_u64(), 0xdead_beef);
    }

    #[test]
    fn display_abbreviates_and_alternate_is_full() {
        let value = H256::from_low_u64(7);
        let short = format!("{value}");
        assert!(short.contains(".."));
        let full = format!("{value:#}");
        assert_eq!(full.len(), 2 + 64);
    }

    #[test]
    fn zero_is_zero() {
        assert!(H256::ZERO.is_zero());
        assert!(!H256::from_low_u64(1).is_zero());
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(H160::from_slice(&[0u8; 20]).is_ok());
        assert!(H160::from_slice(&[0u8; 19]).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", H256::ZERO).contains("H256"));
    }
}
