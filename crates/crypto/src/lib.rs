//! Cryptographic substrate for the `sereth` workspace.
//!
//! Everything here is implemented from scratch for the reproduction of
//! *Read-Uncommitted Transactions for Smart Contract Performance*
//! (Cook et al., ICDCS 2019):
//!
//! * [`keccak`] — the Keccak-f\[1600\] permutation, Keccak-256 (Ethereum's
//!   hash, used for Hash-Mark-Set marks) and SHA3-256;
//! * [`hash`] — fixed-width [`hash::H256`] / [`hash::H160`] newtypes with
//!   hex parsing and formatting;
//! * [`address`] — account and contract address derivation;
//! * [`sig`] — simulated signatures providing sender binding and tamper
//!   evidence (see the module docs for the substitution rationale);
//! * [`rlp`] — canonical Recursive Length Prefix encoding, Ethereum's wire
//!   serialization for transactions and blocks.
//!
//! # Examples
//!
//! Computing a Hash-Mark-Set *mark* exactly as the paper defines it
//! (`Txn1.mark = Keccak256(Txn0.mark, Txn1.val)`, §III-C):
//!
//! ```
//! use sereth_crypto::hash::H256;
//! use sereth_crypto::keccak::keccak256_concat;
//!
//! let genesis_mark = H256::keccak(b"genesis");
//! let value = H256::from_low_u64(5); // set the price to 5
//! let mark = H256::new(keccak256_concat(genesis_mark.as_bytes(), value.as_bytes()));
//! assert_ne!(mark, genesis_mark);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod hash;
pub mod keccak;
pub mod merkle;
pub mod rlp;
pub mod sig;

pub use address::{contract_address, Address};
pub use hash::{encode_hex, ParseHexError, H160, H256};
pub use keccak::{keccak256, keccak256_concat, Keccak256};
pub use rlp::{RlpError, RlpReader, RlpStream};
pub use sig::{PublicKey, SecretKey, Signature};
