//! Account addresses and contract-address derivation.

use crate::hash::{H160, H256};
use crate::keccak::Keccak256;

/// A 160-bit account address.
///
/// Externally-owned account addresses are derived from a public key
/// ([`crate::sig::PublicKey::address`]); contract addresses are derived from
/// the creator and its nonce via [`contract_address`], mirroring Ethereum's
/// `keccak(rlp([sender, nonce]))[12..]` rule.
pub type Address = H160;

/// Derives the address of a contract created by `creator` at `nonce`.
///
/// # Examples
///
/// ```
/// use sereth_crypto::address::{contract_address, Address};
///
/// let creator = Address::from_low_u64(7);
/// let a = contract_address(&creator, 0);
/// let b = contract_address(&creator, 1);
/// assert_ne!(a, b, "distinct nonces yield distinct contracts");
/// ```
pub fn contract_address(creator: &Address, nonce: u64) -> Address {
    let payload =
        crate::rlp::RlpStream::new_list(2).append_bytes(creator.as_bytes()).append_u64(nonce).finish();
    let digest = H256::keccak(&payload);
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest.as_bytes()[12..]);
    Address::new(out)
}

/// Derives the address controlled by a public key: the low 20 bytes of the
/// key's Keccak-256 digest, exactly as Ethereum does.
pub fn address_of_pubkey(pubkey: &H256) -> Address {
    let mut hasher = Keccak256::new();
    hasher.update(pubkey.as_bytes());
    let digest = hasher.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest[12..]);
    Address::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_addresses_depend_on_creator_and_nonce() {
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        assert_ne!(contract_address(&a, 0), contract_address(&b, 0));
        assert_ne!(contract_address(&a, 0), contract_address(&a, 1));
    }

    #[test]
    fn contract_address_is_deterministic() {
        let a = Address::from_low_u64(42);
        assert_eq!(contract_address(&a, 3), contract_address(&a, 3));
    }

    #[test]
    fn pubkey_addresses_are_distinct() {
        let k1 = H256::from_low_u64(1);
        let k2 = H256::from_low_u64(2);
        assert_ne!(address_of_pubkey(&k1), address_of_pubkey(&k2));
    }
}
