//! Simulated transaction signatures.
//!
//! The paper relies on signatures for exactly two behaviours:
//!
//! 1. **sender binding** — a transaction is attributable to an address, and
//!    per-address nonce order must be respected by miners (§II-C);
//! 2. **tamper evidence** — RAA must not modify the arguments of a *signed*
//!    transaction, because peers replaying the block would reject it
//!    (§III-D: "the modified transactions would still be mined, but would
//!    not be accepted by peers").
//!
//! Real Ethereum uses secp256k1 ECDSA. Building an elliptic-curve library is
//! out of scope and unnecessary for those two behaviours, so this module
//! substitutes a keccak-based scheme (documented in `DESIGN.md` §7): the
//! signature binds a public key and a payload digest with a MAC-style tag.
//! The scheme provides *binding* — any mutation of the signed payload is
//! detected by [`Signature::verify`] — but **not cryptographic
//! unforgeability**, which none of the reproduced experiments require.

use core::fmt;

use crate::address::{address_of_pubkey, Address};
use crate::hash::H256;
use crate::keccak::Keccak256;

const PK_DOMAIN: &[u8] = b"sereth/sim-pubkey/v1";
const SIG_DOMAIN: &[u8] = b"sereth/sim-signature/v1";

/// A simulated signing key.
///
/// Holding a `SecretKey` is the *capability* to sign for its address; nodes
/// and miners never hold foreign secret keys, which is what makes the RAA
/// tamper experiment meaningful.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    seed: H256,
    public: PublicKey,
}

impl SecretKey {
    /// Derives a key pair deterministically from a 32-byte seed.
    pub fn from_seed(seed: H256) -> Self {
        let mut hasher = Keccak256::new();
        hasher.update(PK_DOMAIN);
        hasher.update(seed.as_bytes());
        let public = PublicKey(H256::new(hasher.finalize()));
        Self { seed, public }
    }

    /// Convenience constructor for tests and workloads: derives a key pair
    /// from a small integer label.
    pub fn from_label(label: u64) -> Self {
        Self::from_seed(H256::from_low_u64(label))
    }

    /// The corresponding public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The address controlled by this key.
    pub fn address(&self) -> Address {
        self.public.address()
    }

    /// Signs a 32-byte payload digest.
    pub fn sign(&self, payload_digest: H256) -> Signature {
        let mut hasher = Keccak256::new();
        hasher.update(SIG_DOMAIN);
        hasher.update(self.seed.as_bytes());
        hasher.update(payload_digest.as_bytes());
        Signature {
            pubkey: self.public.clone(),
            signed_digest: payload_digest,
            tag: H256::new(hasher.finalize()),
        }
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the seed.
        f.debug_struct("SecretKey").field("address", &self.address()).finish()
    }
}

/// A simulated public key (32 bytes, derived from the seed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublicKey(H256);

impl PublicKey {
    /// Wraps raw key bytes (used by decoders reassembling gossiped or
    /// persisted signatures; validity is established by
    /// [`Signature::verify`], never by construction).
    pub fn from_h256(key: H256) -> Self {
        Self(key)
    }

    /// The raw key bytes.
    pub fn as_h256(&self) -> &H256 {
        &self.0
    }

    /// The address controlled by this key (low 20 bytes of its keccak).
    pub fn address(&self) -> Address {
        address_of_pubkey(&self.0)
    }
}

/// A signature over a payload digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    pubkey: PublicKey,
    signed_digest: H256,
    tag: H256,
}

impl Signature {
    /// Reassembles a signature from its three components (used by decoders
    /// for persisted or gossiped transactions). Carries no validity of its
    /// own: a reassembled signature still has to pass [`Signature::verify`]
    /// against the sender and payload digest, exactly like a received one.
    pub fn from_parts(pubkey: PublicKey, signed_digest: H256, tag: H256) -> Self {
        Self { pubkey, signed_digest, tag }
    }

    /// The signer's public key.
    pub fn pubkey(&self) -> &PublicKey {
        &self.pubkey
    }

    /// The payload digest the signer attested to.
    pub fn signed_digest(&self) -> H256 {
        self.signed_digest
    }

    /// The MAC-style tag.
    pub fn tag(&self) -> H256 {
        self.tag
    }

    /// Recovers the signer address, Ethereum `ecrecover`-style.
    pub fn recover(&self) -> Address {
        self.pubkey.address()
    }

    /// Verifies that this signature attests to `payload_digest` on behalf of
    /// `expected_sender`.
    ///
    /// Returns `false` when the payload was mutated after signing (the
    /// digest no longer matches) or when the signature belongs to a
    /// different address. This is the check block validators run during
    /// transaction replay.
    pub fn verify(&self, expected_sender: &Address, payload_digest: H256) -> bool {
        self.signed_digest == payload_digest
            && &self.pubkey.address() == expected_sender
            && !self.tag.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify_round_trip() {
        let key = SecretKey::from_label(7);
        let digest = H256::keccak(b"payload");
        let sig = key.sign(digest);
        assert!(sig.verify(&key.address(), digest));
        assert_eq!(sig.recover(), key.address());
    }

    #[test]
    fn verify_rejects_mutated_payload() {
        let key = SecretKey::from_label(7);
        let sig = key.sign(H256::keccak(b"original"));
        assert!(!sig.verify(&key.address(), H256::keccak(b"tampered")));
    }

    #[test]
    fn verify_rejects_wrong_sender() {
        let key = SecretKey::from_label(1);
        let other = SecretKey::from_label(2);
        let digest = H256::keccak(b"payload");
        let sig = key.sign(digest);
        assert!(!sig.verify(&other.address(), digest));
    }

    #[test]
    fn distinct_labels_give_distinct_addresses() {
        let mut addresses: Vec<Address> = (0..64).map(|i| SecretKey::from_label(i).address()).collect();
        addresses.sort();
        addresses.dedup();
        assert_eq!(addresses.len(), 64);
    }

    #[test]
    fn signatures_differ_per_payload_and_key() {
        let key = SecretKey::from_label(3);
        let s1 = key.sign(H256::keccak(b"a"));
        let s2 = key.sign(H256::keccak(b"b"));
        assert_ne!(s1.tag(), s2.tag());
        let other = SecretKey::from_label(4).sign(H256::keccak(b"a"));
        assert_ne!(s1.tag(), other.tag());
    }

    #[test]
    fn debug_never_leaks_seed() {
        let key = SecretKey::from_label(9);
        let printed = format!("{key:?}");
        assert!(printed.contains("address"));
        assert!(!printed.contains(&key.seed.to_hex()[2..10]));
    }
}
