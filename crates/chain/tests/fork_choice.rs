//! Fork-choice properties of the chain store: import-order invariance for
//! strictly-longest chains, and safety of the canonical index under
//! arbitrary interleavings.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_chain::builder::{build_block, BlockLimits};
use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_chain::store::{ChainStore, StoreConfig};
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_types::block::Block;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

fn genesis(key: &SecretKey) -> Genesis {
    GenesisBuilder::new().fund(key.address(), U256::from(1_000_000_000u64)).build()
}

fn transfer(key: &SecretKey, nonce: u64, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(7)),
            value: U256::from(value),
            input: Bytes::new(),
        },
        key,
    )
}

/// Builds a branch of `len` blocks from genesis; `salt` differentiates
/// branches via the miner address and transfer values.
fn branch(genesis: &Genesis, key: &SecretKey, len: usize, salt: u64) -> Vec<Block> {
    let mut blocks = Vec::with_capacity(len);
    let mut parent = genesis.block.header.clone();
    let mut state = genesis.state.clone();
    for i in 0..len {
        let built = build_block(
            &parent,
            &state,
            vec![transfer(key, i as u64, salt + i as u64 + 1)],
            Address::from_low_u64(0xaaa0 + salt),
            (i as u64 + 1) * 10_000 + salt,
            &BlockLimits::default(),
        );
        parent = built.block.header.clone();
        state = built.post_state;
        blocks.push(built.block);
    }
    blocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two branches of different lengths: whichever import interleaving is
    /// used (parents before children within each branch), every store ends
    /// at the head of the strictly longer branch.
    #[test]
    fn longest_chain_wins_regardless_of_import_order(
        short_len in 1usize..5,
        extra in 1usize..4,
        seed in any::<u64>(),
    ) {
        let key = SecretKey::from_label(1);
        let genesis = genesis(&key);
        let long_len = short_len + extra;
        let short = branch(&genesis, &key, short_len, 1);
        let long = branch(&genesis, &key, long_len, 2);
        let expected_head = long.last().unwrap().hash();

        // Interleave the two branches with a seed-driven shuffle that
        // preserves intra-branch order (parents first).
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut cursors = [0usize; 2];
        let branches = [&short, &long];
        let mut rng_state = seed;
        while cursors[0] < short.len() || cursors[1] < long.len() {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = if cursors[0] >= short.len() {
                1
            } else if cursors[1] >= long.len() {
                0
            } else {
                ((rng_state >> 33) % 2) as usize
            };
            order.push((pick, cursors[pick]));
            cursors[pick] += 1;
        }

        let mut store = ChainStore::open(StoreConfig::in_memory(genesis.clone())).unwrap();
        for (which, index) in order {
            store.import(branches[which][index].clone()).unwrap();
        }
        prop_assert_eq!(store.head_hash(), expected_head);
        prop_assert_eq!(store.head_number(), long_len as u64);
        // The canonical chain is exactly the long branch.
        let canonical: Vec<_> = store.canonical_chain().map(|b| b.block.hash()).collect();
        prop_assert_eq!(canonical.len(), long_len + 1);
        for (i, block) in long.iter().enumerate() {
            prop_assert_eq!(canonical[i + 1], block.hash());
        }
        // And the short branch is retained as side blocks.
        prop_assert_eq!(store.len(), 1 + short_len + long_len);
        for block in &short {
            prop_assert!(store.get(&block.hash()).is_some());
            prop_assert!(!store.is_canonical(&block.hash()));
        }
    }

    /// Canonical state roots always match the canonical head's header, no
    /// matter how imports interleave.
    #[test]
    fn head_state_is_consistent_after_any_interleaving(len_a in 1usize..4, len_b in 1usize..4) {
        let key = SecretKey::from_label(1);
        let genesis = genesis(&key);
        let a = branch(&genesis, &key, len_a, 1);
        let b = branch(&genesis, &key, len_b, 2);
        let mut store = ChainStore::open(StoreConfig::in_memory(genesis)).unwrap();
        for block in a.iter().chain(b.iter()) {
            store.import(block.clone()).unwrap();
        }
        let head = store.head_block().header.clone();
        prop_assert_eq!(store.head_state().state_root(), head.state_root);
    }
}
