//! Property tests for the ledger substrate: journal rollback, pool
//! invariants, and build→validate round trips.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_chain::builder::{build_block, BlockLimits};
use sereth_chain::executor::TxApplyError;
use sereth_chain::genesis::GenesisBuilder;
use sereth_chain::state::StateDb;
use sereth_chain::txpool::TxPool;
use sereth_chain::validation::{validate_block, validate_block_with_mode, ValidationError, ValidationMode};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_types::block::Block;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::exec::Storage;

/// One random state mutation.
#[derive(Debug, Clone)]
enum Op {
    Credit(u8, u64),
    Debit(u8, u64),
    SetNonce(u8, u64),
    Store(u8, u8, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::Credit(a, v % 1_000_000)),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::Debit(a, v % 1_000_000)),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::SetNonce(a, v % 100)),
        (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(a, k, v)| Op::Store(a, k, v % 1_000)),
    ]
}

fn apply(state: &mut StateDb, op: &Op) {
    match op {
        Op::Credit(a, v) => state.credit(&Address::from_low_u64(*a as u64), U256::from(*v)),
        Op::Debit(a, v) => {
            let _ = state.debit(&Address::from_low_u64(*a as u64), U256::from(*v));
        }
        Op::SetNonce(a, v) => state.set_nonce(&Address::from_low_u64(*a as u64), *v),
        Op::Store(a, k, v) => state.storage_set(
            &Address::from_low_u64(*a as u64),
            H256::from_low_u64(*k as u64),
            H256::from_low_u64(*v),
        ),
    }
}

proptest! {
    /// snapshot → arbitrary mutations → revert ≡ no-op, at any nesting
    /// point, judged by the state commitment.
    #[test]
    fn journal_revert_is_noop(prefix in proptest::collection::vec(op_strategy(), 0..20),
                              suffix in proptest::collection::vec(op_strategy(), 0..20)) {
        let mut state = StateDb::new();
        for op in &prefix {
            apply(&mut state, op);
        }
        let root_before = state.state_root();
        let snapshot = state.snapshot();
        for op in &suffix {
            apply(&mut state, op);
        }
        state.revert_to(snapshot);
        prop_assert_eq!(state.state_root(), root_before);
    }

    /// Pool invariants under random inserts: no two entries share
    /// (sender, nonce); len matches distinct hashes; arrival order is
    /// strictly increasing.
    #[test]
    fn pool_uniqueness_invariants(entries in proptest::collection::vec((0u64..6, 0u64..6, 1u64..50), 0..40)) {
        let pool = TxPool::new();
        for (i, (sender, nonce, price)) in entries.iter().enumerate() {
            let key = SecretKey::from_label(*sender);
            let tx = Transaction::sign(
                TxPayload {
                    nonce: *nonce,
                    gas_price: *price,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64(1)),
                    value: U256::ZERO,
                    input: Bytes::new(),
                },
                &key,
            );
            let _ = pool.insert(tx, i as u64);
        }
        let pending = pool.pending_by_arrival();
        prop_assert_eq!(pending.len(), pool.len());
        let mut pairs: Vec<(Address, u64)> = pending.iter().map(|e| (e.tx.sender(), e.tx.nonce())).collect();
        pairs.sort();
        let before = pairs.len();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), before, "one tx per (sender, nonce)");
        prop_assert!(pending.windows(2).all(|w| w[0].arrival_seq < w[1].arrival_seq));
    }

    /// `ready_by_price` emits every sender's transactions in nonce order
    /// and never invents or duplicates entries.
    #[test]
    fn ready_by_price_respects_nonce_order(entries in proptest::collection::vec((0u64..4, 0u64..5, 1u64..50), 0..30)) {
        let pool = TxPool::new();
        for (i, (sender, nonce, price)) in entries.iter().enumerate() {
            let key = SecretKey::from_label(*sender);
            let tx = Transaction::sign(
                TxPayload {
                    nonce: *nonce,
                    gas_price: *price,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64(1)),
                    value: U256::ZERO,
                    input: Bytes::new(),
                },
                &key,
            );
            let _ = pool.insert(tx, i as u64);
        }
        let ready = pool.ready_by_price(|_| 0);
        prop_assert!(ready.len() <= pool.len());
        let mut per_sender: std::collections::HashMap<Address, u64> = std::collections::HashMap::new();
        for tx in &ready {
            let expected = per_sender.entry(tx.sender()).or_insert(0);
            prop_assert_eq!(tx.nonce(), *expected, "nonces emitted consecutively from 0");
            *expected += 1;
        }
    }

    /// Any block the builder seals from random (possibly invalid)
    /// candidates passes replay validation — build and validate agree by
    /// construction, never by accident.
    #[test]
    fn built_blocks_always_validate(transfers in proptest::collection::vec((0u64..4, 0u64..4, 1u64..100), 0..20),
                                    timestamp in 1u64..1_000_000) {
        let keys: Vec<SecretKey> = (0..4).map(SecretKey::from_label).collect();
        let mut genesis_builder = GenesisBuilder::new();
        for key in &keys {
            genesis_builder = genesis_builder.fund(key.address(), U256::from(100_000_000u64));
        }
        let genesis = genesis_builder.build();

        // Random candidate list: nonces may be wrong, order may be silly.
        let candidates: Vec<Transaction> = transfers
            .iter()
            .map(|(sender, nonce, value)| {
                Transaction::sign(
                    TxPayload {
                        nonce: *nonce,
                        gas_price: 1,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0x77)),
                        value: U256::from(*value),
                        input: Bytes::new(),
                    },
                    &keys[*sender as usize],
                )
            })
            .collect();

        let built = build_block(
            &genesis.block.header,
            &genesis.state,
            candidates,
            Address::from_low_u64(0xabc),
            timestamp,
            &BlockLimits::default(),
        );
        let (receipts, post) = validate_block(&genesis.block.header, &genesis.state, &built.block)
            .expect("honestly built blocks validate");
        prop_assert_eq!(receipts.len(), built.block.transactions.len());
        prop_assert_eq!(post.state_root(), built.block.header.state_root);
        prop_assert_eq!(&receipts, &built.receipts);
        // Parallel replay validation accepts the same blocks with the same
        // artifacts (the verdict-equivalence invariant's happy path).
        let validated = validate_block_with_mode(
            &genesis.block.header,
            &genesis.state,
            &built.block,
            &ValidationMode::Parallel { threads: 4 },
        )
        .expect("parallel replay accepts what sequential replay accepts");
        prop_assert_eq!(&validated.receipts, &receipts);
        prop_assert_eq!(validated.post_state.state_root(), post.state_root());
    }

    /// Value conservation: total balance across accounts is preserved by
    /// any block of transfers (fees move to the miner, not out of the
    /// system).
    #[test]
    fn value_is_conserved(transfers in proptest::collection::vec((0u64..3, 1u64..100), 1..10)) {
        let keys: Vec<SecretKey> = (0..3).map(SecretKey::from_label).collect();
        let mut genesis_builder = GenesisBuilder::new();
        for key in &keys {
            genesis_builder = genesis_builder.fund(key.address(), U256::from(10_000_000u64));
        }
        let genesis = genesis_builder.build();
        let total_before: U256 = genesis.state.iter().map(|(_, account)| account.balance).sum();

        let mut nonces = [0u64; 3];
        let candidates: Vec<Transaction> = transfers
            .iter()
            .map(|(sender, value)| {
                let s = *sender as usize;
                let tx = Transaction::sign(
                    TxPayload {
                        nonce: nonces[s],
                        gas_price: 1,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0x99)),
                        value: U256::from(*value),
                        input: Bytes::new(),
                    },
                    &keys[s],
                );
                nonces[s] += 1;
                tx
            })
            .collect();
        let built = build_block(
            &genesis.block.header,
            &genesis.state,
            candidates,
            Address::from_low_u64(0xabc),
            1_000,
            &BlockLimits::default(),
        );
        let total_after: U256 = built.post_state.iter().map(|(_, account)| account.balance).sum();
        prop_assert_eq!(total_after, total_before, "wei is neither created nor destroyed");
    }
}

/// The cross-mode tamper matrix: one deterministic construction per
/// [`ValidationError`] variant (and per [`TxApplyError`] variant inside
/// `BadTransaction`), each validated sequentially AND on the wave
/// executor, asserting byte-identical verdicts of the expected shape.
/// The randomized equivalence lives in `validation_props`; this test pins
/// exact reproducible vectors for every rejection path.
#[test]
fn tamper_matrix_draws_identical_verdicts_from_both_validation_modes() {
    let rich = SecretKey::from_label(1);
    let also_rich = SecretKey::from_label(2);
    let poor = SecretKey::from_label(3);
    let genesis = GenesisBuilder::new()
        .fund(rich.address(), U256::from(100_000_000u64))
        .fund(also_rich.address(), U256::from(100_000_000u64))
        // Enough to exist, not enough for 21k gas: the InsufficientFunds row.
        .fund(poor.address(), U256::from(1_000u64))
        .build();
    let parent = genesis.block.header.clone();
    let state = genesis.state.clone();

    let transfer = |key: &SecretKey, nonce: u64, gas_limit: u64, value: u64| {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit,
                to: Some(Address::from_low_u64(0x77)),
                value: U256::from(value),
                input: Bytes::new(),
            },
            key,
        )
    };
    let honest = || {
        build_block(
            &parent,
            &state,
            vec![transfer(&rich, 0, 21_000, 5), transfer(&also_rich, 0, 21_000, 7)],
            Address::from_low_u64(0xabc),
            15_000,
            &BlockLimits::default(),
        )
        .block
    };
    // Swap in a replacement body at index 1 and reseal the tx root, so
    // replay (not the header checks) meets the bad transaction.
    let with_bad_tx_at_1 = |bad: Transaction| {
        let mut block = honest();
        block.transactions[1] = bad;
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        block
    };

    let matrix: Vec<(&str, Block, ValidationError)> = vec![
        (
            "WrongParent",
            {
                let mut block = honest();
                block.header.parent_hash = H256::keccak(b"nowhere");
                block
            },
            ValidationError::WrongParent,
        ),
        (
            "WrongNumber",
            {
                let mut block = honest();
                block.header.number += 2;
                block
            },
            ValidationError::WrongNumber,
        ),
        (
            "NonMonotonicTimestamp",
            {
                let mut block = honest();
                block.header.timestamp_ms = 0;
                block
            },
            ValidationError::NonMonotonicTimestamp,
        ),
        (
            "TxRootMismatch",
            {
                let mut block = honest();
                block.transactions.swap(0, 1); // tx root left stale
                block
            },
            ValidationError::TxRootMismatch,
        ),
        (
            "BadTransaction/BadSignature",
            {
                let mut block = honest();
                block.transactions[1] =
                    block.transactions[1].with_tampered_input(Bytes::from_static(b"augmented"));
                block.header.tx_root = Block::compute_tx_root(&block.transactions);
                block
            },
            ValidationError::BadTransaction { index: 1, error: TxApplyError::BadSignature },
        ),
        (
            "BadTransaction/NonceMismatch",
            with_bad_tx_at_1(transfer(&also_rich, 9, 21_000, 7)),
            ValidationError::BadTransaction {
                index: 1,
                error: TxApplyError::NonceMismatch { expected: 0, found: 9 },
            },
        ),
        (
            "BadTransaction/InsufficientFunds",
            with_bad_tx_at_1(transfer(&poor, 0, 21_000, 1)),
            ValidationError::BadTransaction { index: 1, error: TxApplyError::InsufficientFunds },
        ),
        (
            "BadTransaction/IntrinsicGasTooHigh",
            with_bad_tx_at_1(transfer(&also_rich, 0, 1_000, 7)),
            ValidationError::BadTransaction { index: 1, error: TxApplyError::IntrinsicGasTooHigh },
        ),
        (
            "GasUsedMismatch",
            {
                let mut block = honest();
                block.header.gas_used += 1;
                block
            },
            ValidationError::GasUsedMismatch { declared: 42_001, replayed: 42_000 },
        ),
        (
            "ReceiptsRootMismatch",
            {
                let mut block = honest();
                block.header.receipts_root = H256::keccak(b"wrong receipts");
                block
            },
            ValidationError::ReceiptsRootMismatch,
        ),
        (
            "StateRootMismatch",
            {
                let mut block = honest();
                block.header.state_root = H256::keccak(b"wrong state");
                block
            },
            ValidationError::StateRootMismatch,
        ),
        (
            "GasLimitExceeded",
            {
                let mut block = honest();
                block.header.gas_limit = block.header.gas_used - 1;
                block
            },
            ValidationError::GasLimitExceeded,
        ),
    ];

    for (name, block, expected) in &matrix {
        let sequential = validate_block_with_mode(&parent, &state, block, &ValidationMode::Sequential)
            .expect_err(&format!("{name}: sequential replay must reject"));
        assert_eq!(&sequential, expected, "{name}: sequential verdict");
        for threads in [1usize, 2, 4, 8] {
            let parallel =
                validate_block_with_mode(&parent, &state, block, &ValidationMode::Parallel { threads })
                    .expect_err(&format!("{name}: parallel replay ({threads} threads) must reject"));
            assert_eq!(&parallel, &sequential, "{name}: cross-mode verdict ({threads} threads)");
        }
    }

    // Completeness guard: every `ValidationError` variant (and every
    // `TxApplyError` variant) appears in the matrix above. A new variant
    // added to either enum must extend the matrix before this compiles
    // away — the match is exhaustive on purpose.
    for (_, _, expected) in &matrix {
        match expected {
            ValidationError::WrongParent
            | ValidationError::WrongNumber
            | ValidationError::NonMonotonicTimestamp
            | ValidationError::TxRootMismatch
            | ValidationError::GasUsedMismatch { .. }
            | ValidationError::ReceiptsRootMismatch
            | ValidationError::StateRootMismatch
            | ValidationError::GasLimitExceeded => {}
            ValidationError::BadTransaction { error, .. } => match error {
                TxApplyError::BadSignature
                | TxApplyError::NonceMismatch { .. }
                | TxApplyError::InsufficientFunds
                | TxApplyError::IntrinsicGasTooHigh => {}
            },
        }
    }
}
