//! Crash-recovery property suite for the durable state backend.
//!
//! The crash model is kill-at-any-write-point: the process dies after an
//! arbitrary prefix of the journal append reached the filesystem. The
//! suite mines a short chain through a durable [`ChainStore`], then for
//! EVERY byte boundary of the resulting journal builds a directory whose
//! tail segment is truncated at that boundary, reopens it, and asserts
//! the recovered state root is byte-equal to the root of the longest
//! intact committed prefix — never a torn half-block, never a stale
//! block when a full record survived.
//!
//! A second property drives the fault-injecting [`FaultWriter`] directly
//! over the record framing, and a third pins an epoch across several
//! snapshot+GC cycles to prove held views stay byte-frozen while
//! everything around them is compacted away.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use sereth_chain::builder::{build_block, BlockLimits};
use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_chain::store::{ChainStore, ImportOutcome, StoreConfig};
use sereth_chain::DurableOptions;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_store::{encode_record, scratch_dir, FaultWriter, RecordScanner};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

fn genesis(key: &SecretKey) -> Genesis {
    GenesisBuilder::new().fund(key.address(), U256::from(100_000_000u64)).build()
}

fn transfer(key: &SecretKey, nonce: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(7)),
            value: U256::from(5u64),
            input: Bytes::new(),
        },
        key,
    )
}

fn extend(store: &ChainStore, txs: Vec<Transaction>, ts: u64) -> sereth_types::block::Block {
    let parent = store.head_block().header.clone();
    build_block(&parent, store.head_state(), txs, Address::from_low_u64(1), ts, &BlockLimits::default()).block
}

/// The single journal segment in `dir` (the fixtures stay far below the
/// rotation threshold, so exactly one must exist).
fn journal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("journal-") && name.ends_with(".seg"))
        })
        .collect();
    assert_eq!(segments.len(), 1, "fixture must fit one segment: {segments:?}");
    segments.pop().unwrap()
}

/// Copies every store file from `src` into a fresh `dst`, truncating the
/// journal segment to `keep` bytes — the on-disk image of a process
/// killed mid-append.
fn crashed_copy(src: &Path, dst: &Path, keep: u64) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_owned();
        fs::copy(&path, dst.join(&name)).unwrap();
    }
    let journal = journal_segment(dst);
    let file = fs::OpenOptions::new().write(true).open(&journal).unwrap();
    file.set_len(keep).unwrap();
}

/// Kill-at-any-write-point: truncate the journal at EVERY byte boundary,
/// recover, and require the state root to be byte-equal to the root of
/// the longest intact committed prefix.
#[test]
fn recovery_is_byte_equal_at_every_truncation_point() {
    const BLOCKS: u64 = 3;
    let key = SecretKey::from_label(1);
    let dir = scratch_dir("recovery-props");
    let mut store = ChainStore::open(StoreConfig::durable(genesis(&key), &dir)).unwrap();

    // `cuts[k]` is the journal length once block k is committed; the root
    // and head hash alongside it are what recovery must reproduce when
    // the tail is cut anywhere in [cuts[k], cuts[k+1]).
    let journal = journal_segment(&dir);
    let mut cuts: Vec<u64> = vec![0];
    let mut roots: Vec<H256> = vec![store.head_state_view().state_root()];
    let mut heads: Vec<H256> = vec![store.head_hash()];
    for nonce in 0..BLOCKS {
        let block = extend(&store, vec![transfer(&key, nonce)], (nonce + 1) * 15_000);
        assert_eq!(store.import(block).unwrap(), ImportOutcome::ExtendedCanonical);
        cuts.push(fs::metadata(&journal).unwrap().len());
        roots.push(store.head_state_view().state_root());
        heads.push(store.head_hash());
    }
    drop(store);
    let total = *cuts.last().unwrap();
    assert!(total > 0, "the journal must have content to truncate");

    let crash_dir = scratch_dir("recovery-props-crash");
    for keep in 0..=total {
        // The longest committed prefix whose journal bytes fully survive.
        let intact = cuts.iter().rposition(|&cut| cut <= keep).unwrap();
        let case = crash_dir.join(format!("keep-{keep:06}"));
        crashed_copy(&dir, &case, keep);

        let recovered = ChainStore::open(StoreConfig::durable(genesis(&key), &case))
            .unwrap_or_else(|err| panic!("recovery failed at truncation {keep}: {err}"));
        assert_eq!(recovered.head_number(), intact as u64, "wrong recovered height at truncation {keep}");
        assert_eq!(recovered.head_hash(), heads[intact], "wrong recovered head at truncation {keep}");
        assert_eq!(
            recovered.head_state_view().state_root(),
            roots[intact],
            "state root not byte-equal at truncation {keep}"
        );
        drop(recovered);
        fs::remove_dir_all(&case).unwrap();
    }

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

/// A recovered directory is clean for appending: after any crash point,
/// the reopened store keeps importing and a further reopen agrees.
#[test]
fn recovered_store_keeps_importing_after_mid_record_tears() {
    const BLOCKS: u64 = 2;
    let key = SecretKey::from_label(1);
    let dir = scratch_dir("recovery-resume");
    let mut store = ChainStore::open(StoreConfig::durable(genesis(&key), &dir)).unwrap();
    for nonce in 0..BLOCKS {
        let block = extend(&store, vec![transfer(&key, nonce)], (nonce + 1) * 15_000);
        store.import(block).unwrap();
    }
    let journal = journal_segment(&dir);
    let total = fs::metadata(&journal).unwrap().len();
    drop(store);

    let crash_dir = scratch_dir("recovery-resume-crash");
    // A spread of tear points is enough here — the byte-exhaustive root
    // check lives in `recovery_is_byte_equal_at_every_truncation_point`.
    for keep in [1, total / 4, total / 2, total - 1] {
        let case = crash_dir.join(format!("keep-{keep:06}"));
        crashed_copy(&dir, &case, keep);

        let mut recovered = ChainStore::open(StoreConfig::durable(genesis(&key), &case)).unwrap();
        let resume_nonce = recovered.head_number();
        let block = extend(&recovered, vec![transfer(&key, resume_nonce)], 90_000);
        assert_eq!(
            recovered.import(block).unwrap(),
            ImportOutcome::ExtendedCanonical,
            "recovered store must keep importing after a tear at {keep}"
        );
        let head = recovered.head_hash();
        let root = recovered.head_state_view().state_root();
        drop(recovered);

        let reread = ChainStore::open(StoreConfig::durable(genesis(&key), &case)).unwrap();
        assert_eq!(reread.head_hash(), head, "post-recovery appends must persist (tear at {keep})");
        assert_eq!(reread.head_state_view().state_root(), root);
        drop(reread);
        fs::remove_dir_all(&case).unwrap();
    }

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

/// The framing layer under the same crash model: for every write limit,
/// a [`FaultWriter`] that persists only the first `limit` bytes yields a
/// journal whose scanner recovers exactly the records that landed whole.
#[test]
fn fault_writer_scans_back_exactly_the_whole_records() {
    let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 3 + 17 * i as usize]).collect();
    let mut encoded = Vec::new();
    let mut ends = vec![0usize];
    for payload in &payloads {
        encoded.extend_from_slice(&encode_record(payload));
        ends.push(encoded.len());
    }

    for limit in 0..=encoded.len() {
        let mut writer = FaultWriter::new(Vec::new(), limit);
        // The writer swallows the tail silently — exactly a kill mid-write.
        std::io::Write::write_all(&mut writer, &encoded).unwrap();
        let surviving = writer.into_inner();
        assert_eq!(surviving.len(), limit);

        let mut scanner = RecordScanner::new(&surviving);
        let recovered: Vec<Vec<u8>> = scanner.by_ref().map(<[u8]>::to_vec).collect();
        let whole = ends.iter().filter(|&&end| end > 0 && end <= limit).count();
        assert_eq!(recovered.len(), whole, "wrong record count at limit {limit}");
        assert_eq!(recovered, payloads[..whole], "wrong payloads at limit {limit}");
        assert_eq!(scanner.clean_len(), ends[whole], "wrong clean prefix at limit {limit}");
        assert_eq!(scanner.torn(), limit != ends[whole], "wrong tear flag at limit {limit}");
    }
}

/// Epoch pinning across snapshot compaction: a held `StateView` stays
/// byte-frozen and its epoch readable through repeated snapshot+GC
/// cycles; the moment it drops, GC reclaims the horizon.
#[test]
fn pinned_epoch_survives_repeated_compactions_byte_frozen() {
    let key = SecretKey::from_label(1);
    let dir = scratch_dir("recovery-pins");
    let options = DurableOptions { snapshot_every: 2, history: 0, ..Default::default() };
    let mut store =
        ChainStore::open(StoreConfig::durable(genesis(&key), &dir).durable_options(options)).unwrap();

    let pinned = store.head_state_view();
    assert_eq!(pinned.pinned_epoch(), Some(0));
    let frozen_root = pinned.state_root();
    let frozen_balance = pinned.balance_of(&key.address());

    for nonce in 0..8 {
        let block = extend(&store, vec![transfer(&key, nonce)], (nonce + 1) * 15_000);
        store.import(block).unwrap();
        // Four snapshot+GC cycles run in this loop; the pin must hold the
        // genesis epoch readable and byte-identical through every one.
        assert_eq!(store.retained_floor(), 0, "pinned genesis must block the floor");
        assert_eq!(pinned.state_root(), frozen_root, "held view mutated at height {}", nonce + 1);
        assert_eq!(pinned.balance_of(&key.address()), frozen_balance);
        assert!(store.state_view_at(0).is_some(), "pinned epoch must stay readable");
    }

    drop(pinned);
    let block = extend(&store, vec![transfer(&key, 8)], 9 * 15_000);
    store.import(block).unwrap();
    let block = extend(&store, vec![transfer(&key, 9)], 10 * 15_000);
    store.import(block).unwrap(); // snapshot at 10 with nothing pinned
    assert_eq!(store.retained_floor(), 10, "released pin lets GC catch up");
    assert!(store.state_view_at(0).is_none(), "released epoch is reclaimed");
    fs::remove_dir_all(&dir).unwrap();
}
