//! Equivalence properties for copy-on-write state views.
//!
//! The contract under test: a [`StateView`] taken at any point in an
//! arbitrary interleaving of mutations, snapshots, reverts, and seals is
//! byte-equal to an **eagerly deep-cloned** `StateDb` taken at the same
//! instant — and stays that way while the live state keeps mutating.
//! `deep_clone` is the old O(state) clone semantics, kept precisely to
//! serve as the oracle here (and as the RAA-STATE bench baseline).

use bytes::Bytes;
use proptest::prelude::*;
use sereth_chain::state::{Account, Snapshot, StateDb, StateView};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::u256::U256;
use sereth_vm::exec::{ContractCode, Storage};

/// One step of the interleaved workload. Mutations mirror every journaled
/// entry kind; the control ops exercise the journal machinery around the
/// COW boundary.
#[derive(Debug, Clone)]
enum Op {
    Credit(u8, u64),
    Debit(u8, u64),
    SetNonce(u8, u64),
    SetCode(u8, u8),
    Store(u8, u8, u64),
    /// Push a journal snapshot.
    Snapshot,
    /// Revert to the most recent unconsumed snapshot (no-op if none).
    Revert,
    /// Seal: clear the journal, dropping all snapshots (block boundary).
    Seal,
    /// Capture a `StateView` plus its eager deep-clone oracle.
    TakeView,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::Credit(a, v % 1_000_000)),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::Debit(a, v % 1_000_000)),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Op::SetNonce(a, v % 100)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::SetCode(a, b)),
        (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(a, k, v)| Op::Store(a, k, v % 1_000)),
        Just(Op::Snapshot),
        Just(Op::Revert),
        Just(Op::Seal),
        Just(Op::TakeView),
    ]
}

fn addr(n: u8) -> Address {
    Address::from_low_u64(n as u64)
}

/// A captured (view, oracle) pair, tagged with the op index it was taken
/// at for failure messages.
struct Capture {
    at: usize,
    view: StateView,
    oracle: StateDb,
}

/// Applies one *mutation* op (the journaled kinds); the control ops are
/// the interpreter loop's job in [`run_ops`].
fn run_one(state: &mut StateDb, op: &Op) {
    match op {
        Op::Credit(a, v) => state.credit(&addr(*a), U256::from(*v)),
        Op::Debit(a, v) => {
            let _ = state.debit(&addr(*a), U256::from(*v));
        }
        Op::SetNonce(a, v) => state.set_nonce(&addr(*a), *v),
        Op::SetCode(a, b) => {
            let code =
                if *b == 0 { ContractCode::None } else { ContractCode::Bytecode(Bytes::from(vec![*b])) };
            state.set_code(&addr(*a), code);
        }
        Op::Store(a, k, v) => {
            state.storage_set(&addr(*a), H256::from_low_u64(*k as u64), H256::from_low_u64(*v));
        }
        Op::Snapshot | Op::Revert | Op::Seal | Op::TakeView => unreachable!("control op given to run_one"),
    }
}

fn run_ops(ops: &[Op]) -> (StateDb, Vec<Capture>) {
    let mut state = StateDb::new();
    let mut snapshots: Vec<Snapshot> = Vec::new();
    let mut captures = Vec::new();
    for (at, op) in ops.iter().enumerate() {
        match op {
            Op::Snapshot => snapshots.push(state.snapshot()),
            Op::Revert => {
                if let Some(snapshot) = snapshots.pop() {
                    state.revert_to(snapshot);
                }
            }
            Op::Seal => {
                state.clear_journal();
                snapshots.clear();
            }
            Op::TakeView => {
                captures.push(Capture { at, view: state.view(), oracle: state.deep_clone() });
            }
            mutation => run_one(&mut state, mutation),
        }
    }
    (state, captures)
}

/// Full byte-level comparison: same addresses, same nonce/balance/code,
/// same storage maps — not just matching commitments.
fn assert_view_matches(view: &StateView, oracle: &StateDb, at: usize) -> Result<(), TestCaseError> {
    let viewed: Vec<(Address, Account)> = view.iter().map(|(a, acct)| (*a, acct.clone())).collect();
    let expected: Vec<(Address, Account)> = oracle.iter().map(|(a, acct)| (*a, acct.clone())).collect();
    prop_assert_eq!(&viewed, &expected, "account content diverged for view taken at op {}", at);
    prop_assert_eq!(view.state_root(), oracle.state_root(), "root diverged for view taken at op {}", at);
    prop_assert_eq!(view.len(), oracle.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// The headline property: every view captured during an arbitrary
    /// interleaving — including reverts that cross the COW boundary and
    /// seals that drop the journal — equals its eager deep-clone oracle
    /// once the whole sequence has run.
    #[test]
    fn views_equal_eager_deep_clones_at_every_capture_point(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let (live, captures) = run_ops(&ops);
        for capture in &captures {
            assert_view_matches(&capture.view, &capture.oracle, capture.at)?;
        }
        // And a view of the final state equals a deep clone of it.
        assert_view_matches(&live.view(), &live.deep_clone(), ops.len())?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Focused variant: force the revert-across-COW-boundary shape — a
    /// snapshot, mutations, a view *inside* the journaled region, then a
    /// revert. The view must keep the pre-revert bytes; the live state
    /// must equal a state that never had the suffix applied.
    #[test]
    fn revert_after_view_capture_unshares_instead_of_rewriting(
        prefix in proptest::collection::vec(op_strategy(), 0..20),
        suffix in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        // Strip control ops from the suffix so the revert window is pure
        // mutation (snapshots inside it would be consumed by our revert).
        let suffix: Vec<Op> = suffix
            .into_iter()
            .filter(|op| !matches!(op, Op::Snapshot | Op::Revert | Op::Seal | Op::TakeView))
            .collect();

        let (mut state, _) = run_ops(&prefix);
        let root_before = state.state_root();
        let snapshot = state.snapshot();
        for op in &suffix {
            run_one(&mut state, op);
        }
        let view = state.view();
        let oracle = state.deep_clone();

        state.revert_to(snapshot);
        prop_assert_eq!(state.state_root(), root_before, "revert restored the live state");
        // The held view is untouched by the revert.
        assert_view_matches(&view, &oracle, prefix.len() + suffix.len())?;
    }

    /// Views are first-class for the executor's read path: storage reads
    /// through the view agree with the oracle for every (account, slot)
    /// the workload ever touched.
    #[test]
    fn view_reads_agree_with_oracle_reads(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let (state, _) = run_ops(&ops);
        let view = state.view();
        let oracle = state.deep_clone();
        for a in 0u8..=255 {
            let address = addr(a);
            prop_assert_eq!(view.nonce_of(&address), oracle.nonce_of(&address));
            prop_assert_eq!(view.balance_of(&address), oracle.balance_of(&address));
            prop_assert_eq!(view.code_of(&address), oracle.code_of(&address));
            for k in 0u8..4 {
                let key = H256::from_low_u64(k as u64);
                prop_assert_eq!(view.storage_get(&address, &key), oracle.storage_get(&address, &key));
            }
        }
    }
}
