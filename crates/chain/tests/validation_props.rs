//! Verdict equivalence of parallel replay validation.
//!
//! The contract under test: for ANY block — honestly built or tampered —
//! and ANY thread count, `validate_block_with_mode(.., Parallel{threads})`
//! returns **byte-identical verdicts** to the sequential replay loop: the
//! same `Ok` artifacts (receipts, post-state root) on honest blocks and
//! the same `ValidationError` variant — including the `BadTransaction`
//! index and inner `TxApplyError` — on tampered ones. Workloads include
//! nonce chains, overlapping transfers, shared-slot contract calls,
//! cross-contract sub-calls, reverting executions, and 100 %-conflicting
//! write sets; tampers cover calldata rewrites, body reorders (resealed
//! and not), gas inflation, shrunken gas limits, and wrong roots.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_chain::builder::{build_block, BlockLimits};
use sereth_chain::state::StateDb;
use sereth_chain::validation::{validate_block_with_mode, ValidationError, ValidationMode};
use sereth_chain::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_types::block::{Block, BlockHeader};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::asm::assemble;
use sereth_vm::exec::ContractCode;

mod common;
use common::cases;

const SENDERS: u64 = 6;
const MINER: u64 = 0xfee;

/// Increments its own slot 0 — every call reads and writes the same slot.
const COUNTER: u64 = 0xD0;
/// Calls the counter, then writes its own slot 1.
const CROSS: u64 = 0xD1;
/// Writes a slot, emits a log, then reverts.
const REVERTER: u64 = 0xD2;

fn contract_codes() -> Vec<(u64, Bytes)> {
    let counter = assemble("PUSH1 0x00\nSLOAD\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP").unwrap();
    let cross = assemble(
        "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xD0\nPUSH3 0x00c350\nCALL\nPOP\nPUSH1 0x07\nPUSH1 0x01\nSSTORE\nSTOP",
    )
    .unwrap();
    let reverter = assemble(
        "PUSH1 0x01\nPUSH1 0x00\nSSTORE\nPUSH1 0xaa\nPUSH1 0x00\nPUSH1 0x00\nLOG1\nPUSH1 0x00\nPUSH1 0x00\nREVERT",
    )
    .unwrap();
    vec![(COUNTER, Bytes::from(counter)), (CROSS, Bytes::from(cross)), (REVERTER, Bytes::from(reverter))]
}

/// One generated candidate, nonce filled in during assembly.
#[derive(Debug, Clone)]
enum TxKind {
    /// Transfer to one of a few shared recipients (balance conflicts).
    Transfer { sender: u8, to: u8, value: u64 },
    /// Call one of the contracts.
    Call { sender: u8, contract: u64 },
}

fn kind_strategy() -> impl Strategy<Value = TxKind> {
    prop_oneof![
        (0..SENDERS as u8, 0u8..5, 1u64..500).prop_map(|(s, t, v)| TxKind::Transfer {
            sender: s,
            to: t,
            value: v
        }),
        (0..SENDERS as u8, prop_oneof![Just(COUNTER), Just(CROSS), Just(REVERTER)])
            .prop_map(|(s, c)| TxKind::Call { sender: s, contract: c }),
    ]
}

fn sender_key(index: u8) -> SecretKey {
    SecretKey::from_label(2_000 + index as u64)
}

fn genesis() -> (BlockHeader, StateDb) {
    let mut builder = GenesisBuilder::new();
    for s in 0..SENDERS {
        builder = builder.fund(sender_key(s as u8).address(), U256::from(10_000_000u64));
    }
    let built = builder.build();
    let mut state = built.state;
    for (address, code) in contract_codes() {
        state.set_code(&Address::from_low_u64(address), ContractCode::Bytecode(code));
    }
    state.clear_journal();
    (built.block.header, state)
}

/// Turns kinds into signed transactions with per-sender nonce tracking.
fn assemble_candidates(kinds: &[TxKind]) -> Vec<Transaction> {
    let mut nonces = [0u64; SENDERS as usize];
    kinds
        .iter()
        .map(|kind| match kind {
            TxKind::Transfer { sender, to, value } => {
                let nonce = nonces[*sender as usize];
                nonces[*sender as usize] += 1;
                Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price: 1,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0x9_000 + *to as u64)),
                        value: U256::from(*value),
                        input: Bytes::new(),
                    },
                    &sender_key(*sender),
                )
            }
            TxKind::Call { sender, contract } => {
                let nonce = nonces[*sender as usize];
                nonces[*sender as usize] += 1;
                Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price: 1,
                        gas_limit: 100_000,
                        to: Some(Address::from_low_u64(*contract)),
                        value: U256::ZERO,
                        input: Bytes::new(),
                    },
                    &sender_key(*sender),
                )
            }
        })
        .collect()
}

fn honest_block(kinds: &[TxKind]) -> (BlockHeader, StateDb, Block) {
    let (parent, state) = genesis();
    let candidates = assemble_candidates(kinds);
    let built = build_block(
        &parent,
        &state,
        candidates,
        Address::from_low_u64(MINER),
        15_000,
        &BlockLimits::default(),
    );
    (parent, state, built.block)
}

/// Validates `block` in both modes and asserts the verdicts are
/// byte-identical; returns the shared verdict's error (if any).
fn assert_same_verdict(
    parent: &BlockHeader,
    state: &StateDb,
    block: &Block,
    threads: usize,
) -> Result<Option<ValidationError>, TestCaseError> {
    let sequential = validate_block_with_mode(parent, state, block, &ValidationMode::Sequential);
    let parallel = validate_block_with_mode(parent, state, block, &ValidationMode::Parallel { threads });
    match (&sequential, &parallel) {
        (Ok(seq), Ok(par)) => {
            prop_assert_eq!(&par.receipts, &seq.receipts, "replay receipts diverged");
            prop_assert_eq!(
                par.post_state.state_root(),
                seq.post_state.state_root(),
                "replay post-state diverged"
            );
            Ok(None)
        }
        (Err(seq_err), Err(par_err)) => {
            prop_assert_eq!(seq_err, par_err, "cross-mode verdicts diverged");
            Ok(Some(seq_err.clone()))
        }
        _ => {
            prop_assert!(
                false,
                "one mode accepted what the other rejected: sequential_ok={} parallel_ok={} \
                 sequential_err={:?} parallel_err={:?}",
                sequential.is_ok(),
                parallel.is_ok(),
                sequential.as_ref().err(),
                parallel.as_ref().err()
            );
            unreachable!()
        }
    }
}

/// One way to corrupt a block (or its placement under the parent).
#[derive(Debug, Clone)]
enum Tamper {
    /// RAA-style calldata rewrite of one transaction, tx root resealed.
    RewriteInput { index: usize },
    /// Swap two transactions without resealing the tx root.
    SwapStale,
    /// Swap two transactions and reseal the tx root.
    SwapResealed,
    /// Inflate the declared gas.
    InflateGas { delta: u64 },
    /// Shrink the header gas limit below the replayed usage.
    ShrinkGasLimit,
    /// Lie about the post-state.
    WrongStateRoot,
    /// Lie about the receipts.
    WrongReceiptsRoot,
    /// Point at a different parent.
    WrongParent,
    /// Skip a height.
    WrongNumber,
    /// Violate timestamp monotonicity.
    StaleTimestamp,
}

fn tamper_strategy() -> impl Strategy<Value = Tamper> {
    prop_oneof![
        (0usize..24).prop_map(|index| Tamper::RewriteInput { index }),
        Just(Tamper::SwapStale),
        Just(Tamper::SwapResealed),
        (1u64..10_000).prop_map(|delta| Tamper::InflateGas { delta }),
        Just(Tamper::ShrinkGasLimit),
        Just(Tamper::WrongStateRoot),
        Just(Tamper::WrongReceiptsRoot),
        Just(Tamper::WrongParent),
        Just(Tamper::WrongNumber),
        Just(Tamper::StaleTimestamp),
    ]
}

/// Applies the tamper; `false` when it is a no-op on this block (e.g. a
/// swap on a single-transaction body).
fn apply_tamper(block: &mut Block, tamper: &Tamper) -> bool {
    match tamper {
        Tamper::RewriteInput { index } => {
            if block.transactions.is_empty() {
                return false;
            }
            let index = index % block.transactions.len();
            block.transactions[index] =
                block.transactions[index].with_tampered_input(Bytes::from_static(b"augmented"));
            block.header.tx_root = Block::compute_tx_root(&block.transactions);
            true
        }
        Tamper::SwapStale | Tamper::SwapResealed => {
            if block.transactions.len() < 2 {
                return false;
            }
            let last = block.transactions.len() - 1;
            block.transactions.swap(0, last);
            if matches!(tamper, Tamper::SwapResealed) {
                block.header.tx_root = Block::compute_tx_root(&block.transactions);
            }
            true
        }
        Tamper::InflateGas { delta } => {
            block.header.gas_used += delta;
            true
        }
        Tamper::ShrinkGasLimit => {
            if block.header.gas_used == 0 {
                return false;
            }
            block.header.gas_limit = block.header.gas_used - 1;
            true
        }
        Tamper::WrongStateRoot => {
            block.header.state_root = H256::keccak(b"wrong state");
            true
        }
        Tamper::WrongReceiptsRoot => {
            block.header.receipts_root = H256::keccak(b"wrong receipts");
            true
        }
        Tamper::WrongParent => {
            block.header.parent_hash = H256::keccak(b"nowhere");
            true
        }
        Tamper::WrongNumber => {
            block.header.number += 3;
            true
        }
        Tamper::StaleTimestamp => {
            block.header.timestamp_ms = 0;
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// The headline property: honestly built mixed workloads validate in
    /// both modes with identical artifacts, at any thread count.
    #[test]
    fn parallel_validation_accepts_honest_blocks_identically(
        kinds in prop::collection::vec(kind_strategy(), 1..24),
        threads in 1usize..=8,
    ) {
        let (parent, state, block) = honest_block(&kinds);
        let verdict = assert_same_verdict(&parent, &state, &block, threads)?;
        prop_assert_eq!(verdict, None, "honest blocks must validate");
    }

    /// Tampered blocks draw identical `ValidationError`s — variant, index,
    /// and inner error — from both replay modes.
    #[test]
    fn tampered_blocks_get_identical_verdicts(
        kinds in prop::collection::vec(kind_strategy(), 1..20),
        tamper in tamper_strategy(),
        threads in 1usize..=8,
    ) {
        let (parent, state, mut block) = honest_block(&kinds);
        if !apply_tamper(&mut block, &tamper) {
            // Tamper not applicable to this block shape: still a valid
            // equivalence case, just an honest one.
            let verdict = assert_same_verdict(&parent, &state, &block, threads)?;
            prop_assert_eq!(verdict, None);
            return Ok(());
        }
        let verdict = assert_same_verdict(&parent, &state, &block, threads)?;
        prop_assert!(verdict.is_some(), "tamper {tamper:?} must be rejected (by both modes)");
    }

    /// 100 %-conflicting write sets: every transaction hammers the same
    /// counter slot. Equivalence must hold and the parallel replay must
    /// have taken the serial machinery for the conflicts.
    #[test]
    fn full_conflict_blocks_validate_equivalently(
        tx_count in 2usize..20,
        threads in 2usize..=8,
    ) {
        let kinds: Vec<TxKind> = (0..tx_count)
            .map(|i| TxKind::Call { sender: (i as u64 % SENDERS) as u8, contract: COUNTER })
            .collect();
        let (parent, state, block) = honest_block(&kinds);
        prop_assert_eq!(block.transactions.len(), tx_count, "every candidate must be included");
        let verdict = assert_same_verdict(&parent, &state, &block, threads)?;
        prop_assert_eq!(verdict, None);
        let validated = validate_block_with_mode(
            &parent,
            &state,
            &block,
            &ValidationMode::Parallel { threads },
        ).expect("verdict checked above");
        prop_assert!(
            validated.stats.fallbacks + validated.stats.sequential_txs > 0,
            "pure conflicts must serialize somewhere: {:?}",
            validated.stats
        );
    }

    /// Thread count must not leak into the verdict: the same tampered
    /// block replayed with 1, 2, and 8 workers draws one error.
    #[test]
    fn thread_count_is_invisible_in_verdicts(
        kinds in prop::collection::vec(kind_strategy(), 2..16),
        tamper in tamper_strategy(),
    ) {
        let (parent, state, mut block) = honest_block(&kinds);
        apply_tamper(&mut block, &tamper);
        let verdicts: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                validate_block_with_mode(
                    &parent,
                    &state,
                    &block,
                    &ValidationMode::Parallel { threads },
                )
                .map(|validated| (validated.receipts, validated.post_state.state_root()))
            })
            .collect();
        prop_assert_eq!(&verdicts[0], &verdicts[1]);
        prop_assert_eq!(&verdicts[1], &verdicts[2]);
    }
}
