//! Byte-equivalence of the parallel block executor.
//!
//! The contract under test: for ANY candidate list, limits, and thread
//! count, `build_block_with_mode(.., Parallel{threads})` seals a block
//! **byte-identical** to the sequential builder's — same header (state
//! root, tx root, receipts root, gas used), same receipts (status, gas,
//! logs), same post-state accounts, same skip count. Workloads include
//! nonce chains, overlapping transfers, shared-slot contract calls,
//! cross-contract sub-calls, reverting and out-of-gas executions,
//! protocol-invalid candidates, tight block gas limits that cut waves
//! mid-way, and 100 %-conflicting write sets.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_chain::builder::{build_block, build_block_with_mode, BlockLimits, BuiltBlock};
use sereth_chain::parallel::ExecMode;
use sereth_chain::state::{Account, StateDb};
use sereth_chain::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_types::block::BlockHeader;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::asm::assemble;
use sereth_vm::exec::ContractCode;

mod common;
use common::cases;

const SENDERS: u64 = 6;
const MINER: u64 = 0xfee;

/// Increments its own slot 0 — every call reads and writes the same slot.
const COUNTER: u64 = 0xC0;
/// Calls the counter, then writes its own slot 1 — a cross-contract
/// footprint discovered only by execution.
const CROSS: u64 = 0xC1;
/// Writes a slot, emits a log, then reverts.
const REVERTER: u64 = 0xC2;
/// Stores in a loop until out of gas.
const BURNER: u64 = 0xC3;

fn contract_codes() -> Vec<(u64, Bytes)> {
    let counter = assemble("PUSH1 0x00\nSLOAD\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP").unwrap();
    let cross = assemble(
        "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xC0\nPUSH3 0x00c350\nCALL\nPOP\nPUSH1 0x07\nPUSH1 0x01\nSSTORE\nSTOP",
    )
    .unwrap();
    let reverter = assemble(
        "PUSH1 0x01\nPUSH1 0x00\nSSTORE\nPUSH1 0xaa\nPUSH1 0x00\nPUSH1 0x00\nLOG1\nPUSH1 0x00\nPUSH1 0x00\nREVERT",
    )
    .unwrap();
    let burner = assemble(
        "begin:\nJUMPDEST\nPUSH1 0x00\nSLOAD\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nPUSH @begin\nJUMP",
    )
    .unwrap();
    vec![
        (COUNTER, Bytes::from(counter)),
        (CROSS, Bytes::from(cross)),
        (REVERTER, Bytes::from(reverter)),
        (BURNER, Bytes::from(burner)),
    ]
}

/// One generated candidate, nonce filled in during assembly.
#[derive(Debug, Clone)]
enum TxKind {
    /// Transfer to one of a few shared recipients (balance conflicts).
    Transfer { sender: u8, to: u8, value: u64 },
    /// Call one of the contracts.
    Call { sender: u8, contract: u64, gas_limit: u64 },
    /// Contract creation (installs calldata as code).
    Create { sender: u8 },
    /// Deliberately invalid nonce (skipped by both executors).
    BadNonce { sender: u8 },
}

fn kind_strategy() -> impl Strategy<Value = TxKind> {
    prop_oneof![
        (0..SENDERS as u8, 0u8..5, 1u64..500).prop_map(|(s, t, v)| TxKind::Transfer {
            sender: s,
            to: t,
            value: v
        }),
        (
            0..SENDERS as u8,
            prop_oneof![Just(COUNTER), Just(CROSS), Just(REVERTER), Just(BURNER),],
            30_000u64..120_000
        )
            .prop_map(|(s, c, g)| TxKind::Call { sender: s, contract: c, gas_limit: g }),
        (0..SENDERS as u8).prop_map(|s| TxKind::Create { sender: s }),
        (0..SENDERS as u8).prop_map(|s| TxKind::BadNonce { sender: s }),
    ]
}

fn sender_key(index: u8) -> SecretKey {
    SecretKey::from_label(1_000 + index as u64)
}

fn genesis() -> (BlockHeader, StateDb) {
    let mut builder = GenesisBuilder::new();
    for s in 0..SENDERS {
        // Uneven funding: the poorest sender trips InsufficientFunds on
        // expensive calls, exercising error-path speculation.
        builder = builder.fund(sender_key(s as u8).address(), U256::from(70_000u64 + s * 2_000_000));
    }
    let built = builder.build();
    let mut state = built.state;
    for (address, code) in contract_codes() {
        state.set_code(&Address::from_low_u64(address), ContractCode::Bytecode(code));
    }
    state.clear_journal();
    (built.block.header, state)
}

/// Turns kinds into signed transactions with per-sender nonce tracking.
fn assemble_candidates(kinds: &[TxKind]) -> Vec<Transaction> {
    let mut nonces = [0u64; SENDERS as usize];
    kinds
        .iter()
        .map(|kind| match kind {
            TxKind::Transfer { sender, to, value } => {
                let nonce = nonces[*sender as usize];
                nonces[*sender as usize] += 1;
                Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price: 1,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64(0x9_000 + *to as u64)),
                        value: U256::from(*value),
                        input: Bytes::new(),
                    },
                    &sender_key(*sender),
                )
            }
            TxKind::Call { sender, contract, gas_limit } => {
                let nonce = nonces[*sender as usize];
                nonces[*sender as usize] += 1;
                Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price: 1,
                        gas_limit: *gas_limit,
                        to: Some(Address::from_low_u64(*contract)),
                        value: U256::ZERO,
                        input: Bytes::new(),
                    },
                    &sender_key(*sender),
                )
            }
            TxKind::Create { sender } => {
                let nonce = nonces[*sender as usize];
                nonces[*sender as usize] += 1;
                let runtime =
                    assemble("PUSH1 0x01\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN").unwrap();
                Transaction::sign(
                    TxPayload {
                        nonce,
                        gas_price: 1,
                        gas_limit: 60_000,
                        to: None,
                        value: U256::ZERO,
                        input: Bytes::from(runtime),
                    },
                    &sender_key(*sender),
                )
            }
            TxKind::BadNonce { sender } => Transaction::sign(
                TxPayload {
                    nonce: nonces[*sender as usize] + 7,
                    gas_price: 1,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64(0x9_000)),
                    value: U256::ONE,
                    input: Bytes::new(),
                },
                &sender_key(*sender),
            ),
        })
        .collect()
}

/// Full comparison of two built blocks, down to account bytes.
fn assert_equivalent(parallel: &BuiltBlock, sequential: &BuiltBlock) -> Result<(), TestCaseError> {
    prop_assert_eq!(parallel.block.hash(), sequential.block.hash(), "block hash (header) diverged");
    prop_assert_eq!(&parallel.receipts, &sequential.receipts, "receipts diverged");
    prop_assert_eq!(parallel.skipped, sequential.skipped, "skip count diverged");
    let par_accounts: Vec<(Address, Account)> =
        parallel.post_state.iter().map(|(a, acct)| (*a, acct.clone())).collect();
    let seq_accounts: Vec<(Address, Account)> =
        sequential.post_state.iter().map(|(a, acct)| (*a, acct.clone())).collect();
    prop_assert_eq!(&par_accounts, &seq_accounts, "post-state accounts diverged");
    prop_assert_eq!(parallel.post_state.state_root(), sequential.post_state.state_root());
    Ok(())
}

fn build_both(kinds: &[TxKind], limits: &BlockLimits, threads: usize) -> (BuiltBlock, BuiltBlock) {
    let (parent, state) = genesis();
    let candidates = assemble_candidates(kinds);
    let miner = Address::from_low_u64(MINER);
    let sequential = build_block(&parent, &state, candidates.clone(), miner, 15_000, limits);
    let parallel = build_block_with_mode(
        &parent,
        &state,
        &candidates,
        miner,
        15_000,
        limits,
        &ExecMode::Parallel { threads },
    );
    (parallel, sequential)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(512)))]

    /// The headline property: randomized mixed workloads, random limits,
    /// random thread counts — parallel ≡ sequential, byte for byte.
    #[test]
    fn parallel_equals_sequential_on_random_workloads(
        kinds in prop::collection::vec(kind_strategy(), 1..24),
        gas_limit in prop_oneof![Just(8_000_000u64), 60_000u64..600_000],
        max_txs in prop_oneof![Just(None), (1usize..12).prop_map(Some)],
        threads in 1usize..=8,
    ) {
        let limits = BlockLimits { gas_limit, max_txs };
        let (parallel, sequential) = build_both(&kinds, &limits, threads);
        assert_equivalent(&parallel, &sequential)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// 100 %-conflicting write sets: every candidate hammers the same
    /// counter slot. Equivalence must hold and the executor must have
    /// taken the serial path for the conflicts (fallbacks or planned
    /// sequential execution), not pretended they were independent.
    #[test]
    fn full_conflict_workload_stays_equivalent(
        tx_count in 2usize..20,
        threads in 2usize..=8,
    ) {
        // Senders 1.. are funded for millions: every call really executes,
        // so every candidate genuinely reads and writes the shared slot.
        let kinds: Vec<TxKind> = (0..tx_count)
            .map(|i| TxKind::Call {
                sender: (i as u64 % (SENDERS - 1) + 1) as u8,
                contract: COUNTER,
                gas_limit: 80_000,
            })
            .collect();
        let (parallel, sequential) = build_both(&kinds, &BlockLimits::default(), threads);
        assert_equivalent(&parallel, &sequential)?;
        prop_assert!(
            parallel.stats.fallbacks + parallel.stats.sequential_txs > 0,
            "pure conflicts must serialize somewhere: {:?}",
            parallel.stats
        );
    }

    /// Gas exhaustion mid-wave: burner calls with a block gas limit that
    /// cuts the candidate list partway through a speculation window.
    #[test]
    fn tight_gas_limit_cuts_waves_identically(
        tx_count in 4usize..20,
        gas_limit in 100_000u64..500_000,
        threads in 2usize..=8,
    ) {
        let kinds: Vec<TxKind> = (0..tx_count)
            .map(|i| TxKind::Call {
                sender: (i as u64 % SENDERS) as u8,
                contract: if i % 3 == 0 { BURNER } else { COUNTER },
                gas_limit: 90_000,
            })
            .collect();
        let limits = BlockLimits { gas_limit, max_txs: None };
        let (parallel, sequential) = build_both(&kinds, &limits, threads);
        assert_equivalent(&parallel, &sequential)?;
    }

    /// Thread count must not leak into the result: the same workload built
    /// with 1, 2, and 8 workers produces one block.
    #[test]
    fn thread_count_is_invisible(
        kinds in prop::collection::vec(kind_strategy(), 1..16),
    ) {
        let limits = BlockLimits::default();
        let (one, sequential) = build_both(&kinds, &limits, 1);
        let (two, _) = build_both(&kinds, &limits, 2);
        let (eight, _) = build_both(&kinds, &limits, 8);
        prop_assert_eq!(one.block.hash(), sequential.block.hash());
        prop_assert_eq!(two.block.hash(), sequential.block.hash());
        prop_assert_eq!(eight.block.hash(), sequential.block.hash());
    }
}

/// The fixed-seed determinism gate: one concrete mixed workload, every
/// execution mode, one block hash. (The randomized version above covers
/// the space; this pins an exact vector so a regression reproduces
/// outside the property harness.)
#[test]
fn fixed_workload_hash_identical_across_modes() {
    // Simple LCG so the workload is stable across toolchains.
    let mut lcg = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let kinds: Vec<TxKind> = (0..20)
        .map(|_| match next() % 5 {
            0 => TxKind::Transfer {
                sender: (next() % SENDERS) as u8,
                to: (next() % 3) as u8,
                value: 1 + next() % 300,
            },
            1 => TxKind::Call { sender: (next() % SENDERS) as u8, contract: COUNTER, gas_limit: 80_000 },
            2 => TxKind::Call { sender: (next() % SENDERS) as u8, contract: CROSS, gas_limit: 100_000 },
            3 => TxKind::Call { sender: (next() % SENDERS) as u8, contract: REVERTER, gas_limit: 60_000 },
            _ => TxKind::Create { sender: (next() % SENDERS) as u8 },
        })
        .collect();

    let (parent, state) = genesis();
    let candidates = assemble_candidates(&kinds);
    let miner = Address::from_low_u64(MINER);
    let limits = BlockLimits::default();
    let sequential = build_block(&parent, &state, candidates.clone(), miner, 15_000, &limits);
    assert!(!sequential.block.transactions.is_empty(), "workload must include transactions");
    for threads in [1usize, 2, 8] {
        let parallel = build_block_with_mode(
            &parent,
            &state,
            &candidates,
            miner,
            15_000,
            &limits,
            &ExecMode::Parallel { threads },
        );
        assert_eq!(
            parallel.block.hash(),
            sequential.block.hash(),
            "Parallel{{threads: {threads}}} diverged from Sequential"
        );
        assert_eq!(parallel.receipts, sequential.receipts);
    }
}
