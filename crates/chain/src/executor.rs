//! The transaction executor: applies signed transactions to the state and
//! produces receipts; also hosts the read-only (`eth_call`-style) query
//! path through which RAA operates.

use bytes::Bytes;
use sereth_crypto::address::{contract_address, Address};
use sereth_crypto::hash::H256;
use sereth_types::receipt::{Receipt, TxStatus};
use sereth_types::transaction::Transaction;
use sereth_types::u256::U256;
use sereth_vm::exec::{CallEnv, CallOutcome, ContractCode};
use sereth_vm::gas::intrinsic_gas;
use sereth_vm::raa::{execute_call, RaaRegistry};

use crate::state::{StateDb, StateView};

/// Block-level facts visible to executing transactions.
#[derive(Debug, Clone)]
pub struct BlockEnv {
    /// Height of the block being built or replayed.
    pub number: u64,
    /// Timestamp of the block (simulated milliseconds).
    pub timestamp_ms: u64,
    /// Gas capacity of the block.
    pub gas_limit: u64,
    /// The block's miner, credited with fees.
    pub miner: Address,
}

/// Reasons a transaction cannot be included in a block at all.
///
/// These differ from *failed* transactions: a semantically failed Sereth
/// `buy` executes fine and lands in the block (paper §III-A); the variants
/// here are protocol violations that validators reject outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxApplyError {
    /// The signature does not cover the payload (e.g. RAA-tampered input).
    BadSignature,
    /// The nonce does not match the sender's account nonce.
    NonceMismatch {
        /// Nonce the account expects next.
        expected: u64,
        /// Nonce the transaction carried.
        found: u64,
    },
    /// The sender cannot afford `gas_limit * gas_price + value`.
    InsufficientFunds,
    /// `gas_limit` does not even cover the intrinsic calldata gas.
    IntrinsicGasTooHigh,
}

impl core::fmt::Display for TxApplyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadSignature => write!(f, "invalid transaction signature"),
            Self::NonceMismatch { expected, found } => {
                write!(f, "nonce mismatch: expected {expected}, found {found}")
            }
            Self::InsufficientFunds => write!(f, "insufficient funds for gas and value"),
            Self::IntrinsicGasTooHigh => write!(f, "gas limit below intrinsic gas"),
        }
    }
}

impl std::error::Error for TxApplyError {}

/// The account-level mutation surface the transaction algorithm needs on
/// top of the VM's [`Storage`](sereth_vm::exec::Storage) trait.
///
/// Two implementors exist: [`StateDb`] (the sequential executor mutating
/// the live state) and the parallel executor's speculative overlay
/// ([`crate::parallel`]), which journals the same operations over a frozen
/// [`StateView`] while recording the access set. Both run the *identical*
/// transaction algorithm (`apply_tx_inner`), so the two execution modes
/// cannot drift semantically.
pub trait TxState: sereth_vm::exec::Storage {
    /// The account's nonce (0 if absent).
    fn nonce_of(&self, address: &Address) -> u64;
    /// Sets the nonce (creating the account if needed).
    fn set_nonce(&mut self, address: &Address, nonce: u64);
    /// Installs contract code (creating the account if needed).
    fn set_code(&mut self, address: &Address, code: ContractCode);
    /// Adds to the balance (creating the account if needed).
    fn credit(&mut self, address: &Address, amount: U256);
    /// Subtracts from the balance; `false` (no change) when insufficient.
    fn debit(&mut self, address: &Address, amount: U256) -> bool;
}

impl TxState for StateDb {
    fn nonce_of(&self, address: &Address) -> u64 {
        StateDb::nonce_of(self, address)
    }

    fn set_nonce(&mut self, address: &Address, nonce: u64) {
        StateDb::set_nonce(self, address, nonce);
    }

    fn set_code(&mut self, address: &Address, code: ContractCode) {
        StateDb::set_code(self, address, code);
    }

    fn credit(&mut self, address: &Address, amount: U256) {
        StateDb::credit(self, address, amount);
    }

    fn debit(&mut self, address: &Address, amount: U256) -> bool {
        StateDb::debit(self, address, amount)
    }
}

/// The one transaction algorithm, generic over the state it mutates.
///
/// When `credit_miner` is false the final fee credit is *deferred*: the
/// fee is returned instead of applied, so the parallel executor can treat
/// it as a commutative merge-time operation (fee credits in canonical
/// order sum identically no matter where the transaction executed) rather
/// than a read-modify-write that would serialize every transaction on the
/// miner's balance.
///
/// # Errors
///
/// See [`TxApplyError`]; on error the state is untouched.
pub(crate) fn apply_tx_inner<S: TxState>(
    state: &mut S,
    env: &BlockEnv,
    tx: &Transaction,
    index: u32,
    credit_miner: bool,
) -> Result<(Receipt, U256), TxApplyError> {
    if !tx.verify_signature() {
        return Err(TxApplyError::BadSignature);
    }
    let sender = tx.sender();
    let expected_nonce = state.nonce_of(&sender);
    if tx.nonce() != expected_nonce {
        return Err(TxApplyError::NonceMismatch { expected: expected_nonce, found: tx.nonce() });
    }
    let intrinsic = intrinsic_gas(tx.input());
    if intrinsic > tx.gas_limit() {
        return Err(TxApplyError::IntrinsicGasTooHigh);
    }
    let gas_cost = U256::from(tx.gas_limit()) * U256::from(tx.gas_price());
    let total_cost = gas_cost + tx.value();
    if state.balance_get(&sender) < total_cost {
        return Err(TxApplyError::InsufficientFunds);
    }

    // Buy the gas and bump the nonce; these survive even if execution
    // reverts (the failed transaction still pays).
    assert!(state.debit(&sender, gas_cost), "funds checked above");
    state.set_nonce(&sender, expected_nonce + 1);

    let exec_checkpoint = state.checkpoint();
    let (callee, code) = match tx.to() {
        Some(to) => (to, state.code_get(&to)),
        None => {
            // Contract creation: install calldata as runtime code (the
            // substrate skips constructor semantics; see DESIGN.md §7).
            let created = contract_address(&sender, expected_nonce);
            state.set_code(&created, ContractCode::Bytecode(tx.input().clone()));
            (created, ContractCode::None)
        }
    };

    // Transfer the value, then run the code.
    let mut outcome = if state.debit(&sender, tx.value()) {
        state.credit(&callee, tx.value());
        let call_env = CallEnv {
            caller: sender,
            callee,
            call_value: tx.value(),
            calldata: tx.input().clone(),
            block_number: env.number,
            timestamp_ms: env.timestamp_ms,
            is_static: false,
            depth: 0,
        };
        let vm_gas_limit = tx.gas_limit() - intrinsic;
        execute_call(&code, call_env, state, vm_gas_limit, &RaaRegistry::new())
    } else {
        CallOutcome { status: TxStatus::Reverted, return_data: Bytes::new(), gas_used: 0, logs: Vec::new() }
    };

    if !outcome.status.is_success() {
        state.revert_checkpoint(exec_checkpoint);
        outcome.logs.clear();
    }

    let gas_used = intrinsic + outcome.gas_used;
    debug_assert!(gas_used <= tx.gas_limit());

    // Refund unused gas; pay the miner.
    let refund = U256::from(tx.gas_limit() - gas_used) * U256::from(tx.gas_price());
    state.credit(&sender, refund);
    let fee = U256::from(gas_used) * U256::from(tx.gas_price());
    if credit_miner {
        state.credit(&env.miner, fee);
    }

    Ok((Receipt { tx_hash: tx.hash(), index, status: outcome.status, gas_used, logs: outcome.logs }, fee))
}

/// Applies `tx` to `state`, returning its receipt.
///
/// On success the state reflects the transaction (which may still be a
/// *semantic* no-op for the contract). On [`TxApplyError`] the state is
/// unchanged and the transaction must not be included in a block.
///
/// Transactions are **never** RAA-augmented — their calldata is covered by
/// the signature — so this function needs no [`RaaRegistry`]; augmentation
/// exists only on the [`call_readonly`] path, mirroring the paper's §III-D
/// restriction.
///
/// # Errors
///
/// See [`TxApplyError`].
pub fn apply_transaction(
    state: &mut StateDb,
    env: &BlockEnv,
    tx: &Transaction,
    index: u32,
) -> Result<Receipt, TxApplyError> {
    apply_tx_inner(state, env, tx, index, true).map(|(receipt, _fee)| receipt)
}

/// Runs a read-only call against an immutable state view (the `eth_call`
/// analogue). This is the path on which RAA augmentation happens; the
/// Sereth client's `get`/`mark` queries go through here (paper Fig. 1).
///
/// The view is never copied: execution runs over an
/// [`OverlayStorage`](sereth_vm::exec::OverlayStorage) whose construction
/// is O(1) in state size, so read latency is independent of how many
/// accounts exist. Obtain the view in O(1) via [`StateDb::view`] or
/// [`crate::store::ChainStore::head_state_view`].
pub fn call_readonly(
    view: &StateView,
    caller: Address,
    contract: Address,
    calldata: Bytes,
    env: &BlockEnv,
    raa: &RaaRegistry,
) -> CallOutcome {
    let code = view.code_of(&contract);
    let mut scratch = sereth_vm::exec::OverlayStorage::new(view);
    let call_env = CallEnv {
        caller,
        callee: contract,
        call_value: U256::ZERO,
        calldata,
        block_number: env.number,
        timestamp_ms: env.timestamp_ms,
        is_static: true,
        depth: 0,
    };
    execute_call(&code, call_env, &mut scratch, env.gas_limit, raa)
}

/// Reads a storage slot directly (a `view`-style getter without code
/// execution).
pub fn read_slot(state: &StateDb, contract: &Address, slot: &H256) -> H256 {
    use sereth_vm::exec::Storage as _;
    state.storage_get(contract, slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_vm::asm::assemble;

    fn env() -> BlockEnv {
        BlockEnv {
            number: 1,
            timestamp_ms: 1_000,
            gas_limit: 8_000_000,
            miner: Address::from_low_u64(0xbeef),
        }
    }

    fn fund(state: &mut StateDb, key: &SecretKey, amount: u64) {
        state.credit(&key.address(), U256::from(amount));
        state.clear_journal();
    }

    fn transfer_tx(key: &SecretKey, nonce: u64, to: Address, value: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 30_000,
                to: Some(to),
                value: U256::from(value),
                input: Bytes::new(),
            },
            key,
        )
    }

    #[test]
    fn simple_transfer_moves_value_and_pays_miner() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 1_000_000);
        let to = Address::from_low_u64(0xaa);

        let receipt = apply_transaction(&mut state, &env(), &transfer_tx(&key, 0, to, 500), 0).unwrap();
        assert_eq!(receipt.status, TxStatus::Success);
        assert_eq!(receipt.gas_used, 21_000);
        assert_eq!(state.balance_of(&to), U256::from(500u64));
        assert_eq!(state.balance_of(&env().miner), U256::from(21_000u64));
        assert_eq!(state.balance_of(&key.address()), U256::from(1_000_000u64 - 500 - 21_000));
        assert_eq!(state.nonce_of(&key.address()), 1);
    }

    #[test]
    fn nonce_must_match() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 1_000_000);
        let err =
            apply_transaction(&mut state, &env(), &transfer_tx(&key, 5, Address::ZERO, 1), 0).unwrap_err();
        assert_eq!(err, TxApplyError::NonceMismatch { expected: 0, found: 5 });
    }

    #[test]
    fn insufficient_funds_rejected_without_state_change() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 100); // cannot afford 30k gas
        let root = state.state_root();
        let err =
            apply_transaction(&mut state, &env(), &transfer_tx(&key, 0, Address::ZERO, 1), 0).unwrap_err();
        assert_eq!(err, TxApplyError::InsufficientFunds);
        assert_eq!(state.state_root(), root);
    }

    #[test]
    fn tampered_transaction_rejected() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 1_000_000);
        let tx = transfer_tx(&key, 0, Address::ZERO, 1).with_tampered_input(Bytes::from_static(b"evil"));
        let err = apply_transaction(&mut state, &env(), &tx, 0).unwrap_err();
        assert_eq!(err, TxApplyError::BadSignature);
    }

    #[test]
    fn intrinsic_gas_enforced() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 10_000_000);
        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 1,
                gas_limit: 20_000, // below the 21k intrinsic
                to: Some(Address::ZERO),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            &key,
        );
        assert_eq!(
            apply_transaction(&mut state, &env(), &tx, 0).unwrap_err(),
            TxApplyError::IntrinsicGasTooHigh
        );
    }

    #[test]
    fn reverting_contract_keeps_tx_in_block_but_rolls_back_state() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 10_000_000);
        let contract = Address::from_low_u64(0xc0de);
        // Store 1 at slot 0, then revert.
        let code = assemble("PUSH1 0x01\nPUSH1 0x00\nSSTORE\nPUSH1 0x00\nPUSH1 0x00\nREVERT").unwrap();
        state.set_code(&contract, ContractCode::Bytecode(Bytes::from(code)));
        state.clear_journal();

        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(contract),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            &key,
        );
        let receipt = apply_transaction(&mut state, &env(), &tx, 0).unwrap();
        assert_eq!(receipt.status, TxStatus::Reverted);
        assert!(receipt.logs.is_empty());
        // The slot write was rolled back…
        assert_eq!(read_slot(&state, &contract, &H256::ZERO), H256::ZERO);
        // …but the nonce advanced and gas was paid: the failure is recorded
        // on-chain, exactly as the paper describes.
        assert_eq!(state.nonce_of(&key.address()), 1);
        assert!(state.balance_of(&env().miner) > U256::ZERO);
    }

    #[test]
    fn successful_contract_call_persists_storage_and_logs() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 10_000_000);
        let contract = Address::from_low_u64(0xc0de);
        let code = assemble("PUSH1 0x2a\nPUSH1 0x00\nSSTORE\nPUSH1 0x07\nPUSH1 0x00\nPUSH1 0x00\nLOG1\nSTOP")
            .unwrap();
        state.set_code(&contract, ContractCode::Bytecode(Bytes::from(code)));
        state.clear_journal();

        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 2,
                gas_limit: 100_000,
                to: Some(contract),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            &key,
        );
        let receipt = apply_transaction(&mut state, &env(), &tx, 3).unwrap();
        assert_eq!(receipt.status, TxStatus::Success);
        assert_eq!(receipt.index, 3);
        assert_eq!(receipt.logs.len(), 1);
        assert_eq!(read_slot(&state, &contract, &H256::ZERO), H256::from_low_u64(0x2a));
    }

    #[test]
    fn contract_creation_installs_code() {
        let mut state = StateDb::new();
        let key = SecretKey::from_label(1);
        fund(&mut state, &key, 10_000_000);
        let runtime = assemble("PUSH1 0x01\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN").unwrap();
        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 1,
                gas_limit: 200_000,
                to: None,
                value: U256::ZERO,
                input: Bytes::from(runtime.clone()),
            },
            &key,
        );
        let receipt = apply_transaction(&mut state, &env(), &tx, 0).unwrap();
        assert_eq!(receipt.status, TxStatus::Success);
        let created = contract_address(&key.address(), 0);
        assert_eq!(state.code_of(&created), ContractCode::Bytecode(Bytes::from(runtime)));
    }

    #[test]
    fn readonly_call_does_not_mutate_state() {
        let mut state = StateDb::new();
        let contract = Address::from_low_u64(0xc0de);
        let code = assemble("PUSH1 0x05\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN").unwrap();
        state.set_code(&contract, ContractCode::Bytecode(Bytes::from(code)));
        state.clear_journal();
        let root = state.state_root();

        let outcome =
            call_readonly(&state.view(), Address::ZERO, contract, Bytes::new(), &env(), &RaaRegistry::new());
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(outcome.return_data[31], 5);
        assert_eq!(state.state_root(), root);
    }
}
