//! The chain store: block storage, canonical-chain tracking, longest-chain
//! fork choice — and, behind the [`StateBackend`] seam, durable persistence
//! with crash recovery and MVCC epoch-pinned reads.
//!
//! Construction goes through [`ChainStore::open`] with a [`StoreConfig`]:
//! [`StoreConfig::in_memory`] keeps everything in the COW account map
//! (exactly the pre-durable behaviour), [`StoreConfig::durable`] adds a
//! snapshot + journal directory that survives restarts. Reads are identical
//! on both: O(1) [`StateView`] snapshots that pin their epoch so garbage
//! collection never reclaims a height a reader still holds.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_store::{
    AccountRecord, BlockRecord, CodeRecord, DurableOptions, DurableStore, EpochPins, InMemoryBackend,
    Recovered, SnapshotRecord, StateBackend, StoreError,
};
use sereth_telemetry::{BlockTrace, Phase, Telemetry};
use sereth_types::block::Block;
use sereth_types::receipt::Receipt;
use sereth_vm::exec::ContractCode;

use crate::genesis::Genesis;
use crate::parallel::{ExecStats, ExecStatsCells};
use crate::state::{Account, StateDb, StateView};
use crate::validation::{validate_block_traced, ValidationError, ValidationMode};

/// A block retained with its replay artifacts.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// The block itself.
    pub block: Block,
    /// Receipts from validation replay.
    pub receipts: Vec<Receipt>,
    /// State after the block.
    pub post_state: StateDb,
}

/// What happened when a block was imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block extended the canonical head.
    ExtendedCanonical,
    /// The block joined a side chain that is not (yet) canonical.
    SideChain,
    /// The block caused a reorganisation; the previous head was replaced.
    Reorged {
        /// Canonical blocks discarded by the reorg.
        reverted: usize,
    },
    /// The block was already known.
    AlreadyKnown,
}

/// Errors from [`ChainStore::import`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The parent block is unknown (the substrate does not buffer orphans;
    /// gossip re-delivery handles them in the simulator).
    UnknownParent,
    /// The block failed replay validation.
    Invalid(ValidationError),
    /// Persisting the (validly imported) block failed. The in-memory
    /// import stands; the journal is behind — callers should treat this
    /// as fatal for the durable directory.
    Store(StoreError),
}

impl core::fmt::Display for ImportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownParent => write!(f, "unknown parent block"),
            Self::Invalid(err) => write!(f, "invalid block: {err}"),
            Self::Store(err) => write!(f, "block imported but not persisted: {err}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Which [`StateBackend`] a store opens on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateBackendConfig {
    /// State lives purely in the COW account map; nothing persists,
    /// nothing is pruned.
    InMemory,
    /// Snapshot + journal persistence rooted at `dir`.
    Durable {
        /// The store directory (created if absent).
        dir: PathBuf,
        /// Segment rotation, snapshot cadence, retention, fsync.
        options: DurableOptions,
    },
}

/// Everything [`ChainStore::open`] needs: the genesis to root at, the
/// backend to persist through, and the knobs the old bare constructors
/// took as positional arguments.
///
/// # Examples
///
/// ```
/// use sereth_chain::genesis::GenesisBuilder;
/// use sereth_chain::store::{ChainStore, StoreConfig};
///
/// let genesis = GenesisBuilder::new().build();
/// let store = ChainStore::open(StoreConfig::in_memory(genesis)).unwrap();
/// assert_eq!(store.head_number(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct StoreConfig {
    genesis: Genesis,
    backend: StateBackendConfig,
    validation_mode: ValidationMode,
    telemetry: Option<Arc<Telemetry>>,
}

impl StoreConfig {
    /// A non-persistent store rooted at `genesis` — the default for
    /// simulations and tests.
    pub fn in_memory(genesis: Genesis) -> Self {
        Self {
            genesis,
            backend: StateBackendConfig::InMemory,
            validation_mode: ValidationMode::Sequential,
            telemetry: None,
        }
    }

    /// A durable store rooted at `genesis`, persisting under `dir` with
    /// default [`DurableOptions`]. Reopening the same directory recovers
    /// the chain; a directory from a different genesis is refused.
    pub fn durable(genesis: Genesis, dir: impl Into<PathBuf>) -> Self {
        Self {
            genesis,
            backend: StateBackendConfig::Durable { dir: dir.into(), options: DurableOptions::default() },
            validation_mode: ValidationMode::Sequential,
            telemetry: None,
        }
    }

    /// Rebuilds with an explicit backend choice (how node configs carry
    /// the selection without holding a `Genesis` yet).
    pub fn with_backend(mut self, backend: StateBackendConfig) -> Self {
        self.backend = backend;
        self
    }

    /// Sets how imports replay blocks.
    pub fn validation_mode(mut self, mode: ValidationMode) -> Self {
        self.validation_mode = mode;
        self
    }

    /// Records store metrics into a shared hub instead of a private one —
    /// what a node does so store metrics land in the node-wide registry.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Overrides the durable engine's options. No effect on an in-memory
    /// config.
    pub fn durable_options(mut self, options: DurableOptions) -> Self {
        if let StateBackendConfig::Durable { options: slot, .. } = &mut self.backend {
            *slot = options;
        }
        self
    }

    /// The configured backend.
    pub fn backend(&self) -> &StateBackendConfig {
        &self.backend
    }

    /// The genesis the store will root at.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }
}

/// Block storage with longest-chain fork choice (ties favour the incumbent,
/// then the lower hash, so every node resolves ties identically).
///
/// With a durable backend, every import appends the block's account
/// write-set to the journal and — on the snapshot cadence — checkpoints
/// full state, garbage-collecting disk segments *and* in-memory block
/// versions down to `min(pinned epoch, head - history)`.
#[derive(Debug)]
pub struct ChainStore {
    blocks: HashMap<H256, StoredBlock>,
    canonical: Vec<H256>,
    head: H256,
    /// Lowest height still resident in memory. 0 until durable pruning
    /// runs; reads below it return `None`.
    floor: u64,
    /// How [`ChainStore::import`] replays blocks. Verdict-equivalent to
    /// sequential by construction, so it changes import *cost*, never
    /// import *outcomes*.
    validation_mode: ValidationMode,
    /// Cumulative executor counters over every replay this store ran —
    /// the validation-side twin of a miner's build stats, kept as
    /// `validation.*` counters in the telemetry registry.
    validation_cells: ExecStatsCells,
    /// The hub `import` records into: `validate`/`import` phase
    /// histograms, the `validation.*` counters, and per-block traces.
    telemetry: Arc<Telemetry>,
    /// Where imports persist to — in-memory no-op or the durable engine.
    backend: Box<dyn StateBackend>,
    /// The backend's pin table, shared with every view handed out.
    pins: EpochPins,
    /// Native contract code by address, harvested from genesis — the only
    /// installer of native code — so recovery can re-resolve
    /// [`CodeRecord::Native`] names back to live objects.
    natives: BTreeMap<Address, ContractCode>,
}

impl ChainStore {
    /// Opens a store per `config`: roots at the genesis, and on a durable
    /// backend recovers whatever the directory already holds (snapshot
    /// restore + journal replay, torn tails truncated) or seeds a fresh
    /// directory with a genesis checkpoint.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when recovered data fails integrity checks, and
    /// [`StoreError::GenesisMismatch`] when the directory belongs to a
    /// different chain. In-memory opens are infallible in practice.
    pub fn open(config: StoreConfig) -> Result<Self, StoreError> {
        let StoreConfig { genesis, backend, validation_mode, telemetry } = config;
        let telemetry = telemetry.unwrap_or_else(|| Arc::new(Telemetry::enabled()));
        let validation_cells = ExecStatsCells::register(&telemetry, "validation");
        let natives: BTreeMap<Address, ContractCode> = genesis
            .state
            .iter()
            .filter(|(_, account)| matches!(account.code, ContractCode::Native(_)))
            .map(|(address, account)| (*address, account.code.clone()))
            .collect();
        let genesis_hash = genesis.block.hash();
        let stored = StoredBlock { block: genesis.block, receipts: vec![], post_state: genesis.state };
        let mut blocks = HashMap::new();
        blocks.insert(genesis_hash, stored);

        let (backend, recovered): (Box<dyn StateBackend>, Option<Recovered>) = match backend {
            StateBackendConfig::InMemory => (Box::new(InMemoryBackend::new()), None),
            StateBackendConfig::Durable { dir, options } => {
                let (engine, recovered) = DurableStore::open(dir, options)?;
                (Box::new(engine), Some(recovered))
            }
        };
        let pins = backend.pins().clone();
        let mut store = Self {
            blocks,
            canonical: vec![genesis_hash],
            head: genesis_hash,
            floor: 0,
            validation_mode,
            validation_cells,
            telemetry,
            backend,
            pins,
            natives,
        };
        if let Some(recovered) = recovered {
            store.recover(recovered)?;
        }
        Ok(store)
    }

    /// Switches how subsequent imports replay blocks.
    pub fn set_validation_mode(&mut self, mode: ValidationMode) {
        self.validation_mode = mode;
    }

    /// The replay mode imports currently use.
    pub fn validation_mode(&self) -> ValidationMode {
        self.validation_mode
    }

    /// Cumulative executor counters over every block this store has
    /// replay-validated (waves, speculations, fallbacks — see
    /// [`ExecStats`]). All zero waves under sequential validation. A
    /// registry-backed view: readable from a clone of
    /// [`ChainStore::validation_cells`] without touching the store.
    pub fn validation_stats(&self) -> ExecStats {
        self.validation_cells.snapshot()
    }

    /// The registry cells behind [`ChainStore::validation_stats`].
    /// Cloning shares the cells, so a node can read replay counters
    /// without holding whatever lock guards the store.
    pub fn validation_cells(&self) -> &ExecStatsCells {
        &self.validation_cells
    }

    /// The epoch-pin table every view from this store registers in.
    /// Cloning shares it.
    pub fn pins(&self) -> &EpochPins {
        &self.pins
    }

    /// `true` when imports persist to disk.
    pub fn is_durable(&self) -> bool {
        self.backend.is_durable()
    }

    /// Lowest canonical height still readable. Always 0 in memory-only
    /// stores; durable pruning advances it (never past a pinned epoch).
    pub fn retained_floor(&self) -> u64 {
        self.floor
    }

    /// Hash of the canonical head.
    pub fn head_hash(&self) -> H256 {
        self.head
    }

    /// The canonical head block.
    pub fn head_block(&self) -> &Block {
        &self.blocks[&self.head].block
    }

    /// State at the canonical head.
    pub fn head_state(&self) -> &StateDb {
        &self.blocks[&self.head].post_state
    }

    /// An O(1) immutable snapshot of the canonical head state. This is the
    /// read path: the view can be handed out of any lock guarding the
    /// store and stays frozen while the chain advances. The view pins its
    /// epoch, so garbage collection keeps the height servable until the
    /// last clone drops.
    pub fn head_state_view(&self) -> StateView {
        let number = self.head_number();
        self.blocks[&self.head].post_state.view().with_pin(self.pins.pin(number))
    }

    /// An O(1) immutable, epoch-pinned snapshot of the canonical state at
    /// `number` — `None` when the height does not exist or was pruned
    /// below the retention floor.
    pub fn state_view_at(&self, number: u64) -> Option<StateView> {
        self.canonical_block(number).map(|stored| stored.post_state.view().with_pin(self.pins.pin(number)))
    }

    /// Height of the canonical head.
    pub fn head_number(&self) -> u64 {
        self.head_block().number()
    }

    /// Looks up any stored block by hash.
    pub fn get(&self, hash: &H256) -> Option<&StoredBlock> {
        self.blocks.get(hash)
    }

    /// The canonical block at `number`, if within the chain and not pruned.
    pub fn canonical_block(&self, number: u64) -> Option<&StoredBlock> {
        self.canonical.get(number as usize).and_then(|hash| self.blocks.get(hash))
    }

    /// `true` if `hash` is on the canonical chain.
    pub fn is_canonical(&self, hash: &H256) -> bool {
        self.blocks
            .get(hash)
            .is_some_and(|stored| self.canonical.get(stored.block.number() as usize) == Some(hash))
    }

    /// Finds the *canonical* receipt of a transaction, with the block it
    /// committed in — the `eth_getTransactionReceipt` analogue. Returns
    /// `None` while the transaction is pending (or only on side chains),
    /// and cannot see blocks pruned below the retention floor.
    pub fn find_receipt(&self, tx_hash: &H256) -> Option<(&StoredBlock, &Receipt)> {
        // Pool sizes and chain lengths in the simulation make a linear
        // scan over canonical blocks perfectly adequate; an index would
        // need reorg-aware maintenance for no measurable gain here.
        for block_hash in self.canonical.iter().rev() {
            let Some(stored) = self.blocks.get(block_hash) else { break };
            if let Some(receipt) = stored.receipts.iter().find(|r| &r.tx_hash == tx_hash) {
                return Some((stored, receipt));
            }
        }
        None
    }

    /// All retained canonical logs whose first topic equals `topic`,
    /// oldest first, with their block numbers — the `eth_getLogs` analogue
    /// the metrics and clients use to observe contract-level success
    /// events.
    pub fn logs_with_topic(&self, topic: &H256) -> Vec<(u64, sereth_types::receipt::Log)> {
        let mut out = Vec::new();
        for block_hash in &self.canonical {
            let Some(stored) = self.blocks.get(block_hash) else { continue };
            for receipt in &stored.receipts {
                for log in &receipt.logs {
                    if log.topics.first() == Some(topic) {
                        out.push((stored.block.number(), log.clone()));
                    }
                }
            }
        }
        out
    }

    /// Number of resident blocks (canonical and side-chain; pruned blocks
    /// are not counted).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the chain has not advanced past genesis.
    pub fn is_empty(&self) -> bool {
        self.head_number() == 0
    }

    /// Validates and stores `block`, running fork choice, then — on a
    /// durable backend — journals the block's write-set and checkpoints on
    /// the snapshot cadence (pruning memory and disk down to the GC floor,
    /// which never passes a pinned epoch).
    ///
    /// # Errors
    ///
    /// See [`ImportError`].
    pub fn import(&mut self, block: Block) -> Result<ImportOutcome, ImportError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        let telemetry = Arc::clone(&self.telemetry);
        let parent = self.blocks.get(&block.header.parent_hash).ok_or(ImportError::UnknownParent)?;
        // O(1) capture for the write-set diff after validation; only the
        // durable path pays for it (and the diff itself is COW-pruned).
        let parent_view = self.backend.is_durable().then(|| parent.post_state.view());
        // Replay counters accumulate even for rejected blocks — an
        // invalid block costs (up to) a full replay before its verdict,
        // and that spend must be visible in `validation_stats`.
        let mut replay = ExecStats::default();
        let (validated, validate_ns) = telemetry.time_ns(Phase::Validate, || {
            validate_block_traced(
                &parent.block.header,
                &parent.post_state,
                &block,
                &self.validation_mode,
                &mut replay,
                &telemetry,
            )
        });
        self.validation_cells.absorb(&replay);
        let validated = validated.map_err(ImportError::Invalid)?;

        let number = block.number();
        let (outcome, import_ns) = telemetry.time_ns(Phase::Import, || {
            self.blocks.insert(
                hash,
                StoredBlock { block, receipts: validated.receipts, post_state: validated.post_state },
            );
            self.place_block(hash, number)
        });
        telemetry.trace_block(BlockTrace {
            number,
            role: "import",
            phase_ns: vec![(Phase::Validate, validate_ns), (Phase::Import, import_ns)],
        });
        if let Some(parent_view) = parent_view {
            self.persist_block(&hash, &parent_view).map_err(ImportError::Store)?;
        }
        Ok(outcome)
    }

    /// Fork choice for the already-inserted block `hash` at `number`:
    /// strictly longer chains win; equal length keeps the incumbent
    /// (deterministic but incumbent-sticky, like observed miner
    /// behaviour). Shared by live imports and recovery replay.
    fn place_block(&mut self, hash: H256, number: u64) -> ImportOutcome {
        if number <= self.head_number() {
            return ImportOutcome::SideChain;
        }
        let extends_head = number > 0
            && self.canonical.get(number as usize - 1) == Some(&self.blocks[&hash].block.header.parent_hash);
        if extends_head {
            self.canonical.push(hash);
            self.head = hash;
            ImportOutcome::ExtendedCanonical
        } else {
            let reverted = self.rebuild_canonical(hash);
            ImportOutcome::Reorged { reverted }
        }
    }

    /// Rewrites the canonical vector to end at `new_head`, returning how
    /// many previously-canonical blocks were displaced. Walks parents only
    /// back to the fork point (the first ancestor already canonical at its
    /// height), so reorg cost scales with fork depth, not chain length.
    fn rebuild_canonical(&mut self, new_head: H256) -> usize {
        let mut path = Vec::new();
        let mut cursor = new_head;
        let splice_at = loop {
            let Some(stored) = self.blocks.get(&cursor) else {
                // The fork point fell below the pruned horizon. Imports
                // reject unknown parents, so no live fork can reach here
                // while retention covers `history` epochs; splice at the
                // front defensively rather than panic.
                break 0;
            };
            let number = stored.block.number() as usize;
            if self.canonical.get(number) == Some(&cursor) {
                break number + 1;
            }
            path.push(cursor);
            if number == 0 {
                break 0;
            }
            cursor = stored.block.header.parent_hash;
        };
        path.reverse();
        let displaced = self.canonical.len().saturating_sub(splice_at);
        self.canonical.truncate(splice_at);
        self.canonical.extend(path);
        self.head = new_head;
        displaced
    }

    /// Iterates retained canonical blocks in height order (from the
    /// retention floor — genesis unless durable pruning advanced it — to
    /// head).
    pub fn canonical_chain(&self) -> impl Iterator<Item = &StoredBlock> + '_ {
        self.canonical.iter().filter_map(move |hash| self.blocks.get(hash))
    }

    // ---- durable path -----------------------------------------------------

    /// Journals the freshly imported block `hash` (write-set relative to
    /// `parent_view`) and, on the snapshot cadence, checkpoints and prunes.
    fn persist_block(&mut self, hash: &H256, parent_view: &StateView) -> Result<(), StoreError> {
        let stored = &self.blocks[hash];
        let writes = parent_view
            .diff_accounts(&stored.post_state.view())
            .into_iter()
            .map(|(address, post)| (address, post.map(|account| account_to_record(&account))))
            .collect();
        let record = BlockRecord { block: stored.block.clone(), receipts: stored.receipts.clone(), writes };
        self.backend.record_block(&record)?;
        if self.backend.wants_snapshot(self.head_number()) {
            let snapshot = self.snapshot_record();
            if let Some(floor) = self.backend.apply_snapshot(snapshot)? {
                self.prune_below(floor);
            }
        }
        Ok(())
    }

    /// A full checkpoint of the canonical head: block, receipts, the
    /// height-indexed canonical hash list, and every account.
    fn snapshot_record(&self) -> SnapshotRecord {
        let head = &self.blocks[&self.head];
        SnapshotRecord {
            genesis_hash: self.canonical[0],
            epoch: head.block.number(),
            block: head.block.clone(),
            receipts: head.receipts.clone(),
            canonical: self.canonical.clone(),
            accounts: head
                .post_state
                .iter()
                .map(|(address, account)| (*address, account_to_record(account)))
                .collect(),
        }
    }

    /// Drops in-memory blocks below `floor` — the backend's GC verdict,
    /// which already honours the pin table, so pinned heights stay
    /// resident. Reads below the floor return `None` afterwards.
    fn prune_below(&mut self, floor: u64) {
        if floor <= self.floor {
            return;
        }
        self.blocks.retain(|_, stored| stored.block.number() >= floor);
        self.floor = floor;
    }

    /// Rebuilds chain state from what a durable directory held: restore
    /// the newest snapshot, replay intact journal records through the same
    /// fork choice as live imports, and verify the head commitment. A
    /// fresh directory instead gets seeded with a genesis checkpoint so
    /// the journal always has a base.
    fn recover(&mut self, recovered: Recovered) -> Result<(), StoreError> {
        let genesis_hash = self.canonical[0];
        match recovered.snapshot {
            None => {
                let snapshot = self.snapshot_record();
                self.backend.apply_snapshot(snapshot)?;
            }
            Some(snapshot) => {
                if snapshot.genesis_hash != genesis_hash {
                    return Err(StoreError::GenesisMismatch {
                        on_disk: snapshot.genesis_hash,
                        expected: genesis_hash,
                    });
                }
                self.restore_snapshot(snapshot)?;
                for record in recovered.blocks {
                    self.replay_record(record)?;
                }
                let head = &self.blocks[&self.head];
                if head.post_state.state_root() != head.block.header.state_root {
                    return Err(StoreError::corrupt(format!(
                        "recovered head {} does not reproduce its state root",
                        head.block.number()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Installs a decoded snapshot as the chain's base: full account map,
    /// canonical index, head. Everything below it lives only on disk.
    fn restore_snapshot(&mut self, snapshot: SnapshotRecord) -> Result<(), StoreError> {
        let hash = snapshot.block.hash();
        if snapshot.block.number() != snapshot.epoch
            || snapshot.canonical.len() as u64 != snapshot.epoch + 1
            || snapshot.canonical.last() != Some(&hash)
            || snapshot.canonical.first() != Some(&self.canonical[0])
        {
            return Err(StoreError::corrupt("snapshot canonical index is inconsistent"));
        }
        let mut accounts = Vec::with_capacity(snapshot.accounts.len());
        for (address, record) in &snapshot.accounts {
            accounts.push((*address, self.account_from_record(*address, record)?));
        }
        let state = StateDb::from_accounts(accounts);
        if state.state_root() != snapshot.block.header.state_root {
            return Err(StoreError::corrupt(format!(
                "snapshot {} does not reproduce its state root",
                snapshot.epoch
            )));
        }
        let stored = StoredBlock { block: snapshot.block, receipts: snapshot.receipts, post_state: state };
        self.blocks.clear();
        self.blocks.insert(hash, stored);
        self.floor = snapshot.epoch;
        self.canonical = snapshot.canonical;
        self.head = hash;
        Ok(())
    }

    /// Replays one journal record during recovery: apply its write-set to
    /// the parent's post-state and run fork choice. Records whose parent
    /// is unknown (pruned below the snapshot base, or on a discarded side
    /// chain) are skipped — fork choice could never select them over the
    /// snapshot head.
    fn replay_record(&mut self, record: BlockRecord) -> Result<(), StoreError> {
        let hash = record.block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(());
        }
        let Some(parent) = self.blocks.get(&record.block.header.parent_hash) else {
            return Ok(());
        };
        let mut post_state = parent.post_state.clone();
        post_state.clear_journal();
        for (address, write) in record.writes {
            let account = write.map(|post| self.account_from_record(address, &post)).transpose()?;
            post_state.replace_account(address, account);
        }
        let number = record.block.number();
        self.blocks.insert(hash, StoredBlock { block: record.block, receipts: record.receipts, post_state });
        self.place_block(hash, number);
        Ok(())
    }

    /// Reconstructs a live [`Account`] from its persisted image, resolving
    /// native-code names against what this genesis installed.
    fn account_from_record(&self, address: Address, record: &AccountRecord) -> Result<Account, StoreError> {
        let code = match &record.code {
            CodeRecord::None => ContractCode::None,
            CodeRecord::Bytecode(code) => ContractCode::Bytecode(code.clone()),
            CodeRecord::Native(name) => match self.natives.get(&address) {
                Some(code @ ContractCode::Native(native)) if native.name() == name.as_str() => code.clone(),
                _ => {
                    return Err(StoreError::corrupt(format!(
                        "native contract '{name}' at {address} is not installed by this genesis"
                    )))
                }
            },
        };
        Ok(Account {
            nonce: record.nonce,
            balance: record.balance,
            code,
            storage: record.storage.iter().copied().collect(),
        })
    }
}

/// The persisted image of a live [`Account`].
fn account_to_record(account: &Account) -> AccountRecord {
    let code = match &account.code {
        ContractCode::None => CodeRecord::None,
        ContractCode::Bytecode(code) => CodeRecord::Bytecode(code.clone()),
        ContractCode::Native(native) => CodeRecord::Native(native.name().to_string()),
    };
    AccountRecord {
        nonce: account.nonce,
        balance: account.balance,
        code,
        storage: account.storage.iter().map(|(key, value)| (*key, *value)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, BlockLimits};
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;
    use sereth_store::scratch_dir;
    use sereth_types::transaction::{Transaction, TxPayload};
    use sereth_types::u256::U256;

    fn genesis(key: &SecretKey) -> Genesis {
        GenesisBuilder::new().fund(key.address(), U256::from(100_000_000u64)).build()
    }

    fn open_mem(genesis: Genesis) -> ChainStore {
        ChainStore::open(StoreConfig::in_memory(genesis)).unwrap()
    }

    fn transfer(key: &SecretKey, nonce: u64, value: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(7)),
                value: U256::from(value),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn extend(store: &ChainStore, txs: Vec<Transaction>, miner: u64, ts: u64) -> Block {
        let parent = store.head_block().header.clone();
        build_block(
            &parent,
            store.head_state(),
            txs,
            Address::from_low_u64(miner),
            ts,
            &BlockLimits::default(),
        )
        .block
    }

    #[test]
    fn imports_extend_canonical_chain() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let b1 = extend(&store, vec![transfer(&key, 0, 5)], 1, 15_000);
        assert_eq!(store.import(b1.clone()).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(store.head_number(), 1);
        let b2 = extend(&store, vec![transfer(&key, 1, 5)], 1, 30_000);
        assert_eq!(store.import(b2).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(store.head_number(), 2);
        assert_eq!(store.canonical_chain().count(), 3);
        assert!(store.is_canonical(&b1.hash()));
    }

    #[test]
    fn duplicate_import_is_already_known() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let b1 = extend(&store, vec![], 1, 15_000);
        store.import(b1.clone()).unwrap();
        assert_eq!(store.import(b1).unwrap(), ImportOutcome::AlreadyKnown);
    }

    #[test]
    fn unknown_parent_rejected() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let mut b1 = extend(&store, vec![], 1, 15_000);
        b1.header.parent_hash = H256::keccak(b"nowhere");
        assert_eq!(store.import(b1).unwrap_err(), ImportError::UnknownParent);
    }

    #[test]
    fn invalid_block_rejected() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let mut b1 = extend(&store, vec![transfer(&key, 0, 5)], 1, 15_000);
        b1.header.state_root = H256::keccak(b"lies");
        assert!(matches!(store.import(b1).unwrap_err(), ImportError::Invalid(_)));
        assert_eq!(store.head_number(), 0, "head unchanged after rejection");
    }

    #[test]
    fn equal_length_fork_stays_with_incumbent() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let b1a = extend(&store, vec![], 1, 15_000);
        let b1b = extend(&store, vec![], 2, 16_000); // same parent, different miner
        store.import(b1a.clone()).unwrap();
        assert_eq!(store.import(b1b).unwrap(), ImportOutcome::SideChain);
        assert_eq!(store.head_hash(), b1a.hash());
    }

    #[test]
    fn longer_side_chain_triggers_reorg() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        // Canonical: g -> a1.
        let a1 = extend(&store, vec![transfer(&key, 0, 1)], 1, 15_000);
        store.import(a1.clone()).unwrap();
        // Side chain from genesis: g -> b1 -> b2 (longer).
        let g = store.canonical_block(0).unwrap().block.header.clone();
        let g_state = store.canonical_block(0).unwrap().post_state.clone();
        let b1 = build_block(&g, &g_state, vec![], Address::from_low_u64(2), 16_000, &BlockLimits::default());
        store.import(b1.block.clone()).unwrap();
        let b2 = build_block(
            &b1.block.header,
            &b1.post_state,
            vec![transfer(&key, 0, 2)],
            Address::from_low_u64(2),
            31_000,
            &BlockLimits::default(),
        );
        let outcome = store.import(b2.block.clone()).unwrap();
        assert_eq!(outcome, ImportOutcome::Reorged { reverted: 1 });
        assert_eq!(store.head_hash(), b2.block.hash());
        assert!(!store.is_canonical(&a1.hash()));
        assert!(store.is_canonical(&b1.block.hash()));
        assert_eq!(store.head_number(), 2);
    }

    #[test]
    fn find_receipt_locates_canonical_transactions() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let tx = transfer(&key, 0, 9);
        let b1 = extend(&store, vec![tx.clone()], 1, 15_000);
        store.import(b1.clone()).unwrap();
        let (stored, receipt) = store.find_receipt(&tx.hash()).expect("committed");
        assert_eq!(stored.block.hash(), b1.hash());
        assert_eq!(receipt.tx_hash, tx.hash());
        assert!(store.find_receipt(&H256::keccak(b"unknown")).is_none());
    }

    #[test]
    fn find_receipt_ignores_side_chains() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let tx = transfer(&key, 0, 5);
        // Canonical: empty block. Side chain: the tx.
        let empty = extend(&store, vec![], 1, 15_000);
        store.import(empty).unwrap();
        let g = store.canonical_block(0).unwrap();
        let side = build_block(
            &g.block.header.clone(),
            &g.post_state.clone(),
            vec![tx.clone()],
            Address::from_low_u64(2),
            16_000,
            &BlockLimits::default(),
        );
        assert_eq!(store.import(side.block).unwrap(), ImportOutcome::SideChain);
        assert!(store.find_receipt(&tx.hash()).is_none(), "side-chain receipts are not canonical");
    }

    #[test]
    fn logs_with_topic_walks_the_canonical_chain() {
        let key = SecretKey::from_label(1);
        let store = open_mem(genesis(&key));
        // Transfers emit no logs; the query returns empty rather than
        // erroring on log-free chains.
        assert!(store.logs_with_topic(&H256::keccak(b"SetOk(bytes32)")).is_empty());
    }

    #[test]
    fn parallel_validation_imports_agree_with_sequential_and_count_stats() {
        let key = SecretKey::from_label(1);
        let mut seq_store = open_mem(genesis(&key));
        let mut par_store = ChainStore::open(
            StoreConfig::in_memory(genesis(&key)).validation_mode(ValidationMode::Parallel { threads: 4 }),
        )
        .unwrap();
        assert_eq!(par_store.validation_mode(), ValidationMode::Parallel { threads: 4 });

        let b1 = extend(&seq_store, vec![transfer(&key, 0, 5), transfer(&key, 1, 7)], 1, 15_000);
        assert_eq!(seq_store.import(b1.clone()).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(par_store.import(b1).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(par_store.head_state().state_root(), seq_store.head_state().state_root());
        assert!(
            par_store.validation_stats().waves >= 1,
            "parallel replay ran: {:?}",
            par_store.validation_stats()
        );
        assert_eq!(seq_store.validation_stats().waves, 0, "sequential replay never waves");

        // Tampered blocks are rejected with the identical verdict — and
        // the replay they cost still lands in the counters: a wrong-root
        // block replays in full before the commitment check fires.
        let spent_before_rejection = par_store.validation_stats();
        let mut evil = extend(&seq_store, vec![transfer(&key, 2, 5)], 1, 30_000);
        evil.header.state_root = H256::keccak(b"lies");
        let seq_err = seq_store.import(evil.clone()).unwrap_err();
        let par_err = par_store.import(evil).unwrap_err();
        assert_eq!(seq_err, par_err, "cross-mode import verdicts must match");
        let spent_after_rejection = par_store.validation_stats();
        assert_ne!(
            spent_after_rejection, spent_before_rejection,
            "rejected blocks cost replay work and must be accounted"
        );
    }

    #[test]
    fn head_state_reflects_transactions() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let b1 = extend(&store, vec![transfer(&key, 0, 123)], 1, 15_000);
        store.import(b1).unwrap();
        assert_eq!(store.head_state().balance_of(&Address::from_low_u64(7)), U256::from(123u64));
    }

    #[test]
    fn store_views_pin_their_epoch() {
        let key = SecretKey::from_label(1);
        let mut store = open_mem(genesis(&key));
        let b1 = extend(&store, vec![transfer(&key, 0, 1)], 1, 15_000);
        store.import(b1).unwrap();
        let head_view = store.head_state_view();
        assert_eq!(head_view.pinned_epoch(), Some(1));
        assert!(store.pins().is_pinned(1));
        let genesis_view = store.state_view_at(0).unwrap();
        assert_eq!(genesis_view.pinned_epoch(), Some(0));
        let still_pinned = head_view.clone();
        drop(head_view);
        assert!(store.pins().is_pinned(1), "clone keeps the pin alive");
        drop(still_pinned);
        drop(genesis_view);
        assert_eq!(store.pins().pinned_epochs(), 0);
    }

    #[test]
    fn durable_store_recovers_byte_equal_head_after_reopen() {
        let key = SecretKey::from_label(1);
        let dir = scratch_dir("chain-reopen");
        let mut store = ChainStore::open(StoreConfig::durable(genesis(&key), &dir)).unwrap();
        assert!(store.is_durable());
        for nonce in 0..3 {
            let block = extend(&store, vec![transfer(&key, nonce, 5)], 1, (nonce + 1) * 15_000);
            assert_eq!(store.import(block).unwrap(), ImportOutcome::ExtendedCanonical);
        }
        let head_hash = store.head_hash();
        let root = store.head_state_view().state_root();
        drop(store);

        let mut reopened = ChainStore::open(StoreConfig::durable(genesis(&key), &dir)).unwrap();
        assert_eq!(reopened.head_hash(), head_hash);
        assert_eq!(reopened.head_number(), 3);
        assert_eq!(reopened.head_state_view().state_root(), root, "byte-equal recovered state");
        // The recovered store keeps importing.
        let b4 = extend(&reopened, vec![transfer(&key, 3, 5)], 1, 60_000);
        assert_eq!(reopened.import(b4).unwrap(), ImportOutcome::ExtendedCanonical);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_store_refuses_a_foreign_genesis() {
        let key = SecretKey::from_label(1);
        let other = SecretKey::from_label(2);
        let dir = scratch_dir("chain-foreign");
        drop(ChainStore::open(StoreConfig::durable(genesis(&key), &dir)).unwrap());
        let err = ChainStore::open(StoreConfig::durable(genesis(&other), &dir)).unwrap_err();
        assert!(matches!(err, StoreError::GenesisMismatch { .. }), "got {err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_pruning_respects_pins_and_keeps_views_frozen() {
        let key = SecretKey::from_label(1);
        let dir = scratch_dir("chain-prune");
        let options = DurableOptions { snapshot_every: 2, history: 0, ..Default::default() };
        let mut store =
            ChainStore::open(StoreConfig::durable(genesis(&key), &dir).durable_options(options)).unwrap();
        let mine = |store: &mut ChainStore, nonce: u64| {
            let block = extend(store, vec![transfer(&key, nonce, 1)], 1, (nonce + 1) * 15_000);
            store.import(block).unwrap();
        };
        mine(&mut store, 0);
        mine(&mut store, 1); // snapshot at 2 → floor 2, genesis and 1 pruned
        assert_eq!(store.retained_floor(), 2);
        assert!(store.state_view_at(0).is_none(), "pruned height is unreadable");

        let pinned = store.state_view_at(2).unwrap();
        let frozen_root = pinned.state_root();
        mine(&mut store, 2);
        mine(&mut store, 3); // snapshot at 4; the pin holds the floor at 2
        assert_eq!(store.retained_floor(), 2, "pinned epoch blocks pruning");
        assert!(store.state_view_at(2).is_some());
        assert_eq!(pinned.state_root(), frozen_root, "held view is byte-frozen");

        drop(pinned);
        mine(&mut store, 4);
        mine(&mut store, 5); // snapshot at 6; nothing pinned → floor catches up
        assert_eq!(store.retained_floor(), 6);
        assert!(store.state_view_at(2).is_none(), "released epoch gets pruned");
        assert!(store.state_view_at(6).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
