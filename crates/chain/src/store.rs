//! The chain store: block storage, canonical-chain tracking, and
//! longest-chain fork choice.

use std::collections::HashMap;
use std::sync::Arc;

use sereth_crypto::hash::H256;
use sereth_telemetry::{BlockTrace, Phase, Telemetry};
use sereth_types::block::Block;
use sereth_types::receipt::Receipt;

use crate::genesis::Genesis;
use crate::parallel::{ExecStats, ExecStatsCells};
use crate::state::{StateDb, StateView};
use crate::validation::{validate_block_traced, ValidationError, ValidationMode};

/// A block retained with its replay artifacts.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// The block itself.
    pub block: Block,
    /// Receipts from validation replay.
    pub receipts: Vec<Receipt>,
    /// State after the block.
    pub post_state: StateDb,
}

/// What happened when a block was imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block extended the canonical head.
    ExtendedCanonical,
    /// The block joined a side chain that is not (yet) canonical.
    SideChain,
    /// The block caused a reorganisation; the previous head was replaced.
    Reorged {
        /// Canonical blocks discarded by the reorg.
        reverted: usize,
    },
    /// The block was already known.
    AlreadyKnown,
}

/// Errors from [`ChainStore::import`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The parent block is unknown (the substrate does not buffer orphans;
    /// gossip re-delivery handles them in the simulator).
    UnknownParent,
    /// The block failed replay validation.
    Invalid(ValidationError),
}

impl core::fmt::Display for ImportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownParent => write!(f, "unknown parent block"),
            Self::Invalid(err) => write!(f, "invalid block: {err}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Block storage with longest-chain fork choice (ties favour the incumbent,
/// then the lower hash, so every node resolves ties identically).
#[derive(Debug, Clone)]
pub struct ChainStore {
    blocks: HashMap<H256, StoredBlock>,
    canonical: Vec<H256>,
    head: H256,
    /// How [`ChainStore::import`] replays blocks. Verdict-equivalent to
    /// sequential by construction, so it changes import *cost*, never
    /// import *outcomes*.
    validation_mode: ValidationMode,
    /// Cumulative executor counters over every replay this store ran —
    /// the validation-side twin of a miner's build stats, kept as
    /// `validation.*` counters in the telemetry registry.
    validation_cells: ExecStatsCells,
    /// The hub `import` records into: `validate`/`import` phase
    /// histograms, the `validation.*` counters, and per-block traces.
    telemetry: Arc<Telemetry>,
}

impl ChainStore {
    /// Creates a store rooted at `genesis`, replaying sequentially.
    pub fn new(genesis: Genesis) -> Self {
        Self::with_validation_mode(genesis, ValidationMode::Sequential)
    }

    /// Creates a store rooted at `genesis` with an explicit replay mode
    /// and its own (enabled) telemetry hub, so standalone stores keep
    /// counting replay work.
    pub fn with_validation_mode(genesis: Genesis, validation_mode: ValidationMode) -> Self {
        Self::with_telemetry(genesis, validation_mode, Arc::new(Telemetry::enabled()))
    }

    /// Creates a store recording into a shared `telemetry` hub — what a
    /// node does so store metrics land in the node-wide registry. With a
    /// disabled hub, [`ChainStore::validation_stats`] reads as zero.
    pub fn with_telemetry(
        genesis: Genesis,
        validation_mode: ValidationMode,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let hash = genesis.block.hash();
        let stored = StoredBlock { block: genesis.block, receipts: vec![], post_state: genesis.state };
        let mut blocks = HashMap::new();
        blocks.insert(hash, stored);
        let validation_cells = ExecStatsCells::register(&telemetry, "validation");
        Self { blocks, canonical: vec![hash], head: hash, validation_mode, validation_cells, telemetry }
    }

    /// Switches how subsequent imports replay blocks.
    pub fn set_validation_mode(&mut self, mode: ValidationMode) {
        self.validation_mode = mode;
    }

    /// The replay mode imports currently use.
    pub fn validation_mode(&self) -> ValidationMode {
        self.validation_mode
    }

    /// Cumulative executor counters over every block this store has
    /// replay-validated (waves, speculations, fallbacks — see
    /// [`ExecStats`]). All zero waves under sequential validation. A
    /// registry-backed view: readable from a clone of
    /// [`ChainStore::validation_cells`] without touching the store.
    pub fn validation_stats(&self) -> ExecStats {
        self.validation_cells.snapshot()
    }

    /// The registry cells behind [`ChainStore::validation_stats`].
    /// Cloning shares the cells, so a node can read replay counters
    /// without holding whatever lock guards the store.
    pub fn validation_cells(&self) -> &ExecStatsCells {
        &self.validation_cells
    }

    /// Hash of the canonical head.
    pub fn head_hash(&self) -> H256 {
        self.head
    }

    /// The canonical head block.
    pub fn head_block(&self) -> &Block {
        &self.blocks[&self.head].block
    }

    /// State at the canonical head.
    pub fn head_state(&self) -> &StateDb {
        &self.blocks[&self.head].post_state
    }

    /// An O(1) immutable snapshot of the canonical head state. This is the
    /// read path: the view can be handed out of any lock guarding the
    /// store and stays frozen while the chain advances.
    pub fn head_state_view(&self) -> StateView {
        self.blocks[&self.head].post_state.view()
    }

    /// An O(1) immutable snapshot of the canonical state at `number`, if
    /// that height exists.
    pub fn state_view_at(&self, number: u64) -> Option<StateView> {
        self.canonical_block(number).map(|stored| stored.post_state.view())
    }

    /// Height of the canonical head.
    pub fn head_number(&self) -> u64 {
        self.head_block().number()
    }

    /// Looks up any stored block by hash.
    pub fn get(&self, hash: &H256) -> Option<&StoredBlock> {
        self.blocks.get(hash)
    }

    /// The canonical block at `number`, if within the chain.
    pub fn canonical_block(&self, number: u64) -> Option<&StoredBlock> {
        self.canonical.get(number as usize).map(|hash| &self.blocks[hash])
    }

    /// `true` if `hash` is on the canonical chain.
    pub fn is_canonical(&self, hash: &H256) -> bool {
        self.blocks
            .get(hash)
            .is_some_and(|stored| self.canonical.get(stored.block.number() as usize) == Some(hash))
    }

    /// Finds the *canonical* receipt of a transaction, with the block it
    /// committed in — the `eth_getTransactionReceipt` analogue. Returns
    /// `None` while the transaction is pending (or only on side chains).
    pub fn find_receipt(&self, tx_hash: &H256) -> Option<(&StoredBlock, &Receipt)> {
        // Pool sizes and chain lengths in the simulation make a linear
        // scan over canonical blocks perfectly adequate; an index would
        // need reorg-aware maintenance for no measurable gain here.
        for block_hash in self.canonical.iter().rev() {
            let stored = &self.blocks[block_hash];
            if let Some(receipt) = stored.receipts.iter().find(|r| &r.tx_hash == tx_hash) {
                return Some((stored, receipt));
            }
        }
        None
    }

    /// All canonical logs whose first topic equals `topic`, oldest first,
    /// with their block numbers — the `eth_getLogs` analogue the metrics
    /// and clients use to observe contract-level success events.
    pub fn logs_with_topic(&self, topic: &H256) -> Vec<(u64, sereth_types::receipt::Log)> {
        let mut out = Vec::new();
        for block_hash in &self.canonical {
            let stored = &self.blocks[block_hash];
            for receipt in &stored.receipts {
                for log in &receipt.logs {
                    if log.topics.first() == Some(topic) {
                        out.push((stored.block.number(), log.clone()));
                    }
                }
            }
        }
        out
    }

    /// Number of stored blocks (canonical and side-chain).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if only genesis is stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() <= 1
    }

    /// Validates and stores `block`, running fork choice.
    ///
    /// # Errors
    ///
    /// See [`ImportError`].
    pub fn import(&mut self, block: Block) -> Result<ImportOutcome, ImportError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        let telemetry = Arc::clone(&self.telemetry);
        let parent = self.blocks.get(&block.header.parent_hash).ok_or(ImportError::UnknownParent)?;
        // Replay counters accumulate even for rejected blocks — an
        // invalid block costs (up to) a full replay before its verdict,
        // and that spend must be visible in `validation_stats`.
        let mut replay = ExecStats::default();
        let (validated, validate_ns) = telemetry.time_ns(Phase::Validate, || {
            validate_block_traced(
                &parent.block.header,
                &parent.post_state,
                &block,
                &self.validation_mode,
                &mut replay,
                &telemetry,
            )
        });
        self.validation_cells.absorb(&replay);
        let validated = validated.map_err(ImportError::Invalid)?;

        let number = block.number();
        let (outcome, import_ns) = telemetry.time_ns(Phase::Import, || {
            self.blocks.insert(
                hash,
                StoredBlock { block, receipts: validated.receipts, post_state: validated.post_state },
            );

            // Fork choice: strictly longer chains win; equal length keeps
            // the incumbent unless the challenger has a lower hash *and*
            // the incumbent is not an ancestor-extension (deterministic
            // but incumbent-sticky, like observed miner behaviour).
            let head_number = self.head_number();
            if number > head_number {
                let outcome = if self.canonical.get(number as usize - 1)
                    == Some(&self.blocks[&hash].block.header.parent_hash)
                {
                    ImportOutcome::ExtendedCanonical
                } else {
                    let reverted = self.rebuild_canonical(hash);
                    ImportOutcome::Reorged { reverted }
                };
                if outcome == ImportOutcome::ExtendedCanonical {
                    self.canonical.push(hash);
                    self.head = hash;
                }
                outcome
            } else {
                ImportOutcome::SideChain
            }
        });
        telemetry.trace_block(BlockTrace {
            number,
            role: "import",
            phase_ns: vec![(Phase::Validate, validate_ns), (Phase::Import, import_ns)],
        });
        Ok(outcome)
    }

    /// Rewrites the canonical vector to end at `new_head`, returning how
    /// many previously-canonical blocks were displaced.
    fn rebuild_canonical(&mut self, new_head: H256) -> usize {
        let mut path = Vec::new();
        let mut cursor = new_head;
        loop {
            path.push(cursor);
            let stored = &self.blocks[&cursor];
            if stored.block.number() == 0 {
                break;
            }
            cursor = stored.block.header.parent_hash;
        }
        path.reverse();
        let displaced = self
            .canonical
            .iter()
            .zip(path.iter())
            .skip_while(|(old, new)| old == new)
            .count()
            .max(self.canonical.len().saturating_sub(path.len()));
        self.canonical = path;
        self.head = new_head;
        displaced
    }

    /// Iterates canonical blocks from genesis to head.
    pub fn canonical_chain(&self) -> impl Iterator<Item = &StoredBlock> + '_ {
        self.canonical.iter().map(move |hash| &self.blocks[hash])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, BlockLimits};
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::address::Address;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::{Transaction, TxPayload};
    use sereth_types::u256::U256;

    fn genesis(key: &SecretKey) -> Genesis {
        GenesisBuilder::new().fund(key.address(), U256::from(100_000_000u64)).build()
    }

    fn transfer(key: &SecretKey, nonce: u64, value: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(7)),
                value: U256::from(value),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn extend(store: &ChainStore, txs: Vec<Transaction>, miner: u64, ts: u64) -> Block {
        let parent = store.head_block().header.clone();
        build_block(
            &parent,
            store.head_state(),
            txs,
            Address::from_low_u64(miner),
            ts,
            &BlockLimits::default(),
        )
        .block
    }

    #[test]
    fn imports_extend_canonical_chain() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let b1 = extend(&store, vec![transfer(&key, 0, 5)], 1, 15_000);
        assert_eq!(store.import(b1.clone()).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(store.head_number(), 1);
        let b2 = extend(&store, vec![transfer(&key, 1, 5)], 1, 30_000);
        assert_eq!(store.import(b2).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(store.head_number(), 2);
        assert_eq!(store.canonical_chain().count(), 3);
        assert!(store.is_canonical(&b1.hash()));
    }

    #[test]
    fn duplicate_import_is_already_known() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let b1 = extend(&store, vec![], 1, 15_000);
        store.import(b1.clone()).unwrap();
        assert_eq!(store.import(b1).unwrap(), ImportOutcome::AlreadyKnown);
    }

    #[test]
    fn unknown_parent_rejected() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let mut b1 = extend(&store, vec![], 1, 15_000);
        b1.header.parent_hash = H256::keccak(b"nowhere");
        assert_eq!(store.import(b1).unwrap_err(), ImportError::UnknownParent);
    }

    #[test]
    fn invalid_block_rejected() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let mut b1 = extend(&store, vec![transfer(&key, 0, 5)], 1, 15_000);
        b1.header.state_root = H256::keccak(b"lies");
        assert!(matches!(store.import(b1).unwrap_err(), ImportError::Invalid(_)));
        assert_eq!(store.head_number(), 0, "head unchanged after rejection");
    }

    #[test]
    fn equal_length_fork_stays_with_incumbent() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let b1a = extend(&store, vec![], 1, 15_000);
        let b1b = extend(&store, vec![], 2, 16_000); // same parent, different miner
        store.import(b1a.clone()).unwrap();
        assert_eq!(store.import(b1b).unwrap(), ImportOutcome::SideChain);
        assert_eq!(store.head_hash(), b1a.hash());
    }

    #[test]
    fn longer_side_chain_triggers_reorg() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        // Canonical: g -> a1.
        let a1 = extend(&store, vec![transfer(&key, 0, 1)], 1, 15_000);
        store.import(a1.clone()).unwrap();
        // Side chain from genesis: g -> b1 -> b2 (longer).
        let g = store.canonical_block(0).unwrap().block.header.clone();
        let g_state = store.canonical_block(0).unwrap().post_state.clone();
        let b1 = build_block(&g, &g_state, vec![], Address::from_low_u64(2), 16_000, &BlockLimits::default());
        store.import(b1.block.clone()).unwrap();
        let b2 = build_block(
            &b1.block.header,
            &b1.post_state,
            vec![transfer(&key, 0, 2)],
            Address::from_low_u64(2),
            31_000,
            &BlockLimits::default(),
        );
        let outcome = store.import(b2.block.clone()).unwrap();
        assert!(matches!(outcome, ImportOutcome::Reorged { .. }));
        assert_eq!(store.head_hash(), b2.block.hash());
        assert!(!store.is_canonical(&a1.hash()));
        assert!(store.is_canonical(&b1.block.hash()));
        assert_eq!(store.head_number(), 2);
    }

    #[test]
    fn find_receipt_locates_canonical_transactions() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let tx = transfer(&key, 0, 9);
        let b1 = extend(&store, vec![tx.clone()], 1, 15_000);
        store.import(b1.clone()).unwrap();
        let (stored, receipt) = store.find_receipt(&tx.hash()).expect("committed");
        assert_eq!(stored.block.hash(), b1.hash());
        assert_eq!(receipt.tx_hash, tx.hash());
        assert!(store.find_receipt(&H256::keccak(b"unknown")).is_none());
    }

    #[test]
    fn find_receipt_ignores_side_chains() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let tx = transfer(&key, 0, 5);
        // Canonical: empty block. Side chain: the tx.
        let empty = extend(&store, vec![], 1, 15_000);
        store.import(empty).unwrap();
        let g = store.canonical_block(0).unwrap();
        let side = build_block(
            &g.block.header.clone(),
            &g.post_state.clone(),
            vec![tx.clone()],
            Address::from_low_u64(2),
            16_000,
            &BlockLimits::default(),
        );
        assert_eq!(store.import(side.block).unwrap(), ImportOutcome::SideChain);
        assert!(store.find_receipt(&tx.hash()).is_none(), "side-chain receipts are not canonical");
    }

    #[test]
    fn logs_with_topic_walks_the_canonical_chain() {
        let key = SecretKey::from_label(1);
        let store = ChainStore::new(genesis(&key));
        // Transfers emit no logs; the query returns empty rather than
        // erroring on log-free chains.
        assert!(store.logs_with_topic(&H256::keccak(b"SetOk(bytes32)")).is_empty());
    }

    #[test]
    fn parallel_validation_imports_agree_with_sequential_and_count_stats() {
        let key = SecretKey::from_label(1);
        let mut seq_store = ChainStore::new(genesis(&key));
        let mut par_store =
            ChainStore::with_validation_mode(genesis(&key), ValidationMode::Parallel { threads: 4 });
        assert_eq!(par_store.validation_mode(), ValidationMode::Parallel { threads: 4 });

        let b1 = extend(&seq_store, vec![transfer(&key, 0, 5), transfer(&key, 1, 7)], 1, 15_000);
        assert_eq!(seq_store.import(b1.clone()).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(par_store.import(b1).unwrap(), ImportOutcome::ExtendedCanonical);
        assert_eq!(par_store.head_state().state_root(), seq_store.head_state().state_root());
        assert!(
            par_store.validation_stats().waves >= 1,
            "parallel replay ran: {:?}",
            par_store.validation_stats()
        );
        assert_eq!(seq_store.validation_stats().waves, 0, "sequential replay never waves");

        // Tampered blocks are rejected with the identical verdict — and
        // the replay they cost still lands in the counters: a wrong-root
        // block replays in full before the commitment check fires.
        let spent_before_rejection = par_store.validation_stats();
        let mut evil = extend(&seq_store, vec![transfer(&key, 2, 5)], 1, 30_000);
        evil.header.state_root = H256::keccak(b"lies");
        let seq_err = seq_store.import(evil.clone()).unwrap_err();
        let par_err = par_store.import(evil).unwrap_err();
        assert_eq!(seq_err, par_err, "cross-mode import verdicts must match");
        let spent_after_rejection = par_store.validation_stats();
        assert_ne!(
            spent_after_rejection, spent_before_rejection,
            "rejected blocks cost replay work and must be accounted"
        );
    }

    #[test]
    fn head_state_reflects_transactions() {
        let key = SecretKey::from_label(1);
        let mut store = ChainStore::new(genesis(&key));
        let b1 = extend(&store, vec![transfer(&key, 0, 123)], 1, 15_000);
        store.import(b1).unwrap();
        assert_eq!(store.head_state().balance_of(&Address::from_low_u64(7)), U256::from(123u64));
    }
}
