//! The world state: accounts, balances, contract storage — with a journal
//! so failed transactions can be rolled back while remaining in the block
//! (the paper's §III-A: "the transaction is included in the block, but has
//! no effect on the system state").

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::merkle::merkle_root;
use sereth_crypto::rlp::RlpStream;
use sereth_store::EpochGuard;
use sereth_types::u256::U256;
use sereth_vm::access::AccessKey;
use sereth_vm::exec::{ContractCode, Storage};

/// One account: an externally-owned account or a contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Account {
    /// Number of transactions sent from this account.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Executable code, if any.
    pub code: ContractCode,
    /// Contract storage; zero-valued slots are kept absent so the state
    /// commitment is canonical.
    pub storage: BTreeMap<H256, H256>,
}

impl Account {
    /// Commitment to this account's storage.
    pub fn storage_root(&self) -> H256 {
        let leaves: Vec<H256> = self
            .storage
            .iter()
            .map(|(key, value)| {
                let encoded = RlpStream::new_list(2)
                    .append_bytes(key.as_bytes())
                    .append_bytes(value.as_bytes())
                    .finish();
                H256::keccak(&encoded)
            })
            .collect();
        merkle_root(&leaves)
    }

    /// Commitment to the whole account.
    pub fn account_hash(&self, address: &Address) -> H256 {
        let encoded = RlpStream::new_list(5)
            .append_bytes(address.as_bytes())
            .append_u64(self.nonce)
            .append_bytes(&self.balance.to_be_bytes())
            .append_bytes(self.code.code_hash().as_bytes())
            .append_bytes(self.storage_root().as_bytes())
            .finish();
        H256::keccak(&encoded)
    }
}

/// Reverting information for one state mutation.
#[derive(Debug, Clone)]
enum JournalEntry {
    StorageChanged { address: Address, key: H256, prev: H256 },
    BalanceChanged { address: Address, prev: U256 },
    NonceChanged { address: Address, prev: u64 },
    CodeChanged { address: Address, prev: ContractCode },
    AccountCreated { address: Address },
}

/// A snapshot handle returned by [`StateDb::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot(usize);

/// The persistent account map both [`StateDb`] and [`StateView`] hang off:
/// an `Arc` over the map, `Arc` per account. Sharing either level is O(1);
/// mutation clones lazily (the map of pointers on the first write after a
/// share, one account on the first write to it).
type Accounts = BTreeMap<Address, Arc<Account>>;

fn accounts_root(accounts: &Accounts) -> H256 {
    let leaves: Vec<H256> = accounts.iter().map(|(address, account)| account.account_hash(address)).collect();
    merkle_root(&leaves)
}

/// The journaled world state.
///
/// All mutation goes through methods that append to the journal, so any
/// prefix of work can be undone with [`StateDb::revert_to`]. The journal is
/// cleared wholesale with [`StateDb::clear_journal`] once a block is sealed.
///
/// The account map is copy-on-write: [`StateDb::view`] (and `clone`) share
/// it in O(1), and the first mutation after a share unshares the map —
/// clones of pointers, not of accounts — then unshares single accounts as
/// they are touched. Held [`StateView`]s therefore stay frozen at the
/// moment they were taken, including across [`StateDb::revert_to`].
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    accounts: Arc<Accounts>,
    journal: Vec<JournalEntry>,
}

/// An immutable, cheaply shareable snapshot of a [`StateDb`].
///
/// Taking one is O(1) (an `Arc` clone); it can outlive locks, cross
/// threads, and survive arbitrary mutation of the live state. This is what
/// every read-only consumer (node queries, miner pre-execution reads, sim
/// oracles) works against.
///
/// Views handed out by a `ChainStore` read surface additionally *pin*
/// their epoch (canonical height): garbage collection never prunes a
/// pinned epoch, in memory or on disk, so the view stays both byte-frozen
/// (copy-on-write guarantees that part) and re-servable until the last
/// clone drops. Views taken directly from a [`StateDb`] carry no pin.
#[derive(Debug, Clone, Default)]
pub struct StateView {
    accounts: Arc<Accounts>,
    pin: Option<EpochGuard>,
}

impl StateView {
    /// The epoch this view holds against garbage collection, when it was
    /// taken through an epoch-pinning read surface.
    pub fn pinned_epoch(&self) -> Option<u64> {
        self.pin.as_ref().map(EpochGuard::epoch)
    }

    /// Attaches an epoch pin (the `ChainStore` read path does this; the
    /// guard travels with every clone of the view).
    pub(crate) fn with_pin(mut self, pin: EpochGuard) -> Self {
        self.pin = Some(pin);
        self
    }
    /// Read-only view of an account, if it exists.
    pub fn account(&self, address: &Address) -> Option<&Account> {
        self.accounts.get(address).map(Arc::as_ref)
    }

    /// The account's nonce (0 if absent).
    pub fn nonce_of(&self, address: &Address) -> u64 {
        self.account(address).map_or(0, |a| a.nonce)
    }

    /// The account's balance (0 if absent).
    pub fn balance_of(&self, address: &Address) -> U256 {
        self.account(address).map_or(U256::ZERO, |a| a.balance)
    }

    /// The account's code (empty if absent).
    pub fn code_of(&self, address: &Address) -> ContractCode {
        self.account(address).map_or(ContractCode::None, |a| a.code.clone())
    }

    /// Reads a storage slot; absent slots read as zero.
    pub fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        self.account(address).and_then(|account| account.storage.get(key)).copied().unwrap_or(H256::ZERO)
    }

    /// Number of accounts in the view.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` if no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Deterministic commitment to the viewed state (same function as
    /// [`StateDb::state_root`]).
    pub fn state_root(&self) -> H256 {
        accounts_root(&self.accounts)
    }

    /// Iterates accounts in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter().map(|(address, account)| (address, account.as_ref()))
    }

    /// `true` if both views share the same underlying account map.
    pub fn ptr_eq(&self, other: &StateView) -> bool {
        Arc::ptr_eq(&self.accounts, &other.accounts)
    }

    /// Every [`AccessKey`] whose value differs between `self` and `other`
    /// — the dirty-key set a cross-block pipeline uses to decide which
    /// speculations against a *predicted* state survive against the state
    /// that actually materialized.
    ///
    /// Exploits the copy-on-write sharing: accounts whose `Arc`s are
    /// still shared between the two views are skipped without comparison,
    /// so diffing a prediction that mostly held costs only the touched
    /// accounts. An account present on one side only diffs against the
    /// absent-account defaults (nonce 0, zero balance, no code, empty
    /// storage) — matching how every reader treats missing accounts.
    pub fn diff_access_keys(&self, other: &StateView) -> HashSet<AccessKey> {
        fn diff_account(dirty: &mut HashSet<AccessKey>, address: Address, a: &Account, b: &Account) {
            if a.nonce != b.nonce {
                dirty.insert(AccessKey::Nonce(address));
            }
            if a.balance != b.balance {
                dirty.insert(AccessKey::Balance(address));
            }
            if a.code != b.code {
                dirty.insert(AccessKey::Code(address));
            }
            for key in a.storage.keys().chain(b.storage.keys()) {
                if a.storage.get(key).copied().unwrap_or(H256::ZERO)
                    != b.storage.get(key).copied().unwrap_or(H256::ZERO)
                {
                    dirty.insert(AccessKey::Slot(address, *key));
                }
            }
        }
        let mut dirty = HashSet::new();
        let absent = Account::default();
        let mut left_iter = self.accounts.iter();
        let mut right_iter = other.accounts.iter();
        let mut left = left_iter.next();
        let mut right = right_iter.next();
        loop {
            match (left, right) {
                (Some((la, lacc)), Some((ra, racc))) => match la.cmp(ra) {
                    Ordering::Equal => {
                        if !Arc::ptr_eq(lacc, racc) {
                            diff_account(&mut dirty, *la, lacc, racc);
                        }
                        left = left_iter.next();
                        right = right_iter.next();
                    }
                    Ordering::Less => {
                        diff_account(&mut dirty, *la, lacc, &absent);
                        left = left_iter.next();
                    }
                    Ordering::Greater => {
                        diff_account(&mut dirty, *ra, &absent, racc);
                        right = right_iter.next();
                    }
                },
                (Some((la, lacc)), None) => {
                    diff_account(&mut dirty, *la, lacc, &absent);
                    left = left_iter.next();
                }
                (None, Some((ra, racc))) => {
                    diff_account(&mut dirty, *ra, &absent, racc);
                    right = right_iter.next();
                }
                (None, None) => break,
            }
        }
        dirty
    }

    /// Account-granular diff: the post-image in `other` of every account
    /// whose content differs from `self`, address-ordered (`None` = the
    /// account is absent in `other` — a tombstone). This is the write-set
    /// the durable journal records per block, taken as
    /// `parent_view.diff_accounts(&child_view)`.
    ///
    /// Like [`StateView::diff_access_keys`], accounts whose `Arc`s are
    /// still shared are skipped without comparison, so the diff costs only
    /// the accounts a block actually touched.
    pub fn diff_accounts(&self, other: &StateView) -> Vec<(Address, Option<Account>)> {
        let mut writes = Vec::new();
        let mut left_iter = self.accounts.iter();
        let mut right_iter = other.accounts.iter();
        let mut left = left_iter.next();
        let mut right = right_iter.next();
        loop {
            match (left, right) {
                (Some((la, lacc)), Some((ra, racc))) => match la.cmp(ra) {
                    Ordering::Equal => {
                        if !Arc::ptr_eq(lacc, racc) && lacc != racc {
                            writes.push((*la, Some(Account::clone(racc))));
                        }
                        left = left_iter.next();
                        right = right_iter.next();
                    }
                    Ordering::Less => {
                        writes.push((*la, None));
                        left = left_iter.next();
                    }
                    Ordering::Greater => {
                        writes.push((*ra, Some(Account::clone(racc))));
                        right = right_iter.next();
                    }
                },
                (Some((la, _)), None) => {
                    writes.push((*la, None));
                    left = left_iter.next();
                }
                (None, Some((ra, racc))) => {
                    writes.push((*ra, Some(Account::clone(racc))));
                    right = right_iter.next();
                }
                (None, None) => break,
            }
        }
        writes
    }
}

impl sereth_vm::exec::ReadStorage for StateView {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        StateView::storage_get(self, address, key)
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        self.code_of(address)
    }

    fn balance_get(&self, address: &Address) -> U256 {
        self.balance_of(address)
    }
}

impl StateDb {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an immutable O(1) snapshot of the current accounts. The view
    /// is unaffected by any later mutation of `self` (writes unshare).
    pub fn view(&self) -> StateView {
        StateView { accounts: Arc::clone(&self.accounts), pin: None }
    }

    /// A structurally independent copy: every account duplicated, nothing
    /// shared with `self`. This is the old `clone` semantics — O(state
    /// size) — kept as the baseline for the RAA-STATE benchmark and as the
    /// eager oracle in the view-equivalence property suite.
    pub fn deep_clone(&self) -> StateDb {
        let accounts: Accounts = self
            .accounts
            .iter()
            .map(|(address, account)| (*address, Arc::new(Account::clone(account))))
            .collect();
        StateDb { accounts: Arc::new(accounts), journal: self.journal.clone() }
    }

    /// Rebuilds a state wholesale from recovered account images — the
    /// durable store's snapshot-restore path. The journal starts empty.
    pub(crate) fn from_accounts(accounts: impl IntoIterator<Item = (Address, Account)>) -> Self {
        let accounts: Accounts =
            accounts.into_iter().map(|(address, account)| (address, Arc::new(account))).collect();
        Self { accounts: Arc::new(accounts), journal: Vec::new() }
    }

    /// Installs (or, on `None`, deletes) an account post-image without
    /// journaling — recovery replay only, where write-sets are applied
    /// wholesale and rollback never happens. Copy-on-write still applies:
    /// views taken before the call stay frozen.
    pub(crate) fn replace_account(&mut self, address: Address, account: Option<Account>) {
        match account {
            Some(account) => {
                self.accounts_mut().insert(address, Arc::new(account));
            }
            None => {
                self.accounts_mut().remove(&address);
            }
        }
    }

    /// The mutable account map, unsharing it first if any view or clone
    /// still holds the previous version.
    fn accounts_mut(&mut self) -> &mut Accounts {
        Arc::make_mut(&mut self.accounts)
    }

    /// Mutable access to an existing account (unshares map and account).
    fn account_mut(&mut self, address: &Address) -> &mut Account {
        let account = Arc::make_mut(&mut self.accounts).get_mut(address).expect("journaled account exists");
        Arc::make_mut(account)
    }

    /// Read-only view of an account, if it exists.
    pub fn account(&self, address: &Address) -> Option<&Account> {
        self.accounts.get(address).map(Arc::as_ref)
    }

    /// The account's nonce (0 if absent).
    pub fn nonce_of(&self, address: &Address) -> u64 {
        self.accounts.get(address).map_or(0, |a| a.nonce)
    }

    /// The account's balance (0 if absent).
    pub fn balance_of(&self, address: &Address) -> U256 {
        self.accounts.get(address).map_or(U256::ZERO, |a| a.balance)
    }

    /// The account's code (empty if absent).
    pub fn code_of(&self, address: &Address) -> ContractCode {
        self.accounts.get(address).map_or(ContractCode::None, |a| a.code.clone())
    }

    /// Number of accounts in the state.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` if no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    fn ensure_account(&mut self, address: &Address) -> &mut Account {
        if !self.accounts.contains_key(address) {
            self.journal.push(JournalEntry::AccountCreated { address: *address });
            self.accounts_mut().insert(*address, Arc::new(Account::default()));
        }
        self.account_mut(address)
    }

    /// Sets the balance, journaled.
    pub fn set_balance(&mut self, address: &Address, balance: U256) {
        let prev = self.balance_of(address);
        let account = self.ensure_account(address);
        account.balance = balance;
        self.journal.push(JournalEntry::BalanceChanged { address: *address, prev });
    }

    /// Adds to the balance, journaled.
    pub fn credit(&mut self, address: &Address, amount: U256) {
        let next = self.balance_of(address) + amount;
        self.set_balance(address, next);
    }

    /// Subtracts from the balance, journaled.
    ///
    /// Returns `false` (and changes nothing) when funds are insufficient.
    pub fn debit(&mut self, address: &Address, amount: U256) -> bool {
        let current = self.balance_of(address);
        match current.checked_sub(amount) {
            Some(next) => {
                self.set_balance(address, next);
                true
            }
            None => false,
        }
    }

    /// Sets the nonce, journaled.
    pub fn set_nonce(&mut self, address: &Address, nonce: u64) {
        let prev = self.nonce_of(address);
        let account = self.ensure_account(address);
        account.nonce = nonce;
        self.journal.push(JournalEntry::NonceChanged { address: *address, prev });
    }

    /// Installs contract code, journaled.
    pub fn set_code(&mut self, address: &Address, code: ContractCode) {
        let prev = self.code_of(address);
        let account = self.ensure_account(address);
        account.code = code;
        self.journal.push(JournalEntry::CodeChanged { address: *address, prev });
    }

    /// Takes a snapshot to which the state can later be reverted.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.journal.len())
    }

    /// Undoes every mutation recorded after `snapshot`.
    pub fn revert_to(&mut self, snapshot: Snapshot) {
        while self.journal.len() > snapshot.0 {
            match self.journal.pop().expect("length checked") {
                JournalEntry::StorageChanged { address, key, prev } => {
                    let account = self.account_mut(&address);
                    if prev.is_zero() {
                        account.storage.remove(&key);
                    } else {
                        account.storage.insert(key, prev);
                    }
                }
                JournalEntry::BalanceChanged { address, prev } => {
                    self.account_mut(&address).balance = prev;
                }
                JournalEntry::NonceChanged { address, prev } => {
                    self.account_mut(&address).nonce = prev;
                }
                JournalEntry::CodeChanged { address, prev } => {
                    self.account_mut(&address).code = prev;
                }
                JournalEntry::AccountCreated { address } => {
                    self.accounts_mut().remove(&address);
                }
            }
        }
    }

    /// Drops the journal; prior snapshots become unusable. Call after a
    /// block is sealed.
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// The [`AccessKey`]s of every mutation
    /// journaled at or after `checkpoint` — the exact write set of
    /// whatever executed since. The parallel executor's merge loop uses
    /// this to keep validating speculations after a sequential fallback
    /// ran directly against the live state (account creations carry no
    /// key of their own: a default account reads identically to an absent
    /// one, and any surviving field write is journaled separately).
    pub fn journal_writes_since(
        &self,
        checkpoint: usize,
    ) -> impl Iterator<Item = sereth_vm::access::AccessKey> + '_ {
        use sereth_vm::access::AccessKey;
        self.journal[checkpoint.min(self.journal.len())..].iter().filter_map(|entry| match entry {
            JournalEntry::StorageChanged { address, key, .. } => Some(AccessKey::Slot(*address, *key)),
            JournalEntry::BalanceChanged { address, .. } => Some(AccessKey::Balance(*address)),
            JournalEntry::NonceChanged { address, .. } => Some(AccessKey::Nonce(*address)),
            JournalEntry::CodeChanged { address, .. } => Some(AccessKey::Code(*address)),
            JournalEntry::AccountCreated { .. } => None,
        })
    }

    /// Deterministic commitment to the entire state: a Merkle root over the
    /// sorted account hashes (see `DESIGN.md` §7 for the trie substitution).
    pub fn state_root(&self) -> H256 {
        accounts_root(&self.accounts)
    }

    /// Iterates accounts in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter().map(|(address, account)| (address, account.as_ref()))
    }
}

impl Storage for StateDb {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        self.accounts.get(address).and_then(|account| account.storage.get(key)).copied().unwrap_or(H256::ZERO)
    }

    fn storage_set(&mut self, address: &Address, key: H256, value: H256) {
        let prev = self.storage_get(address, &key);
        if prev == value {
            return;
        }
        let account = self.ensure_account(address);
        if value.is_zero() {
            account.storage.remove(&key);
        } else {
            account.storage.insert(key, value);
        }
        self.journal.push(JournalEntry::StorageChanged { address: *address, key, prev });
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        self.code_of(address)
    }

    fn balance_get(&self, address: &Address) -> U256 {
        self.balance_of(address)
    }

    fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        if !self.debit(from, value) {
            return false;
        }
        self.credit(to, value);
        true
    }

    fn checkpoint(&self) -> usize {
        self.journal.len()
    }

    fn revert_checkpoint(&mut self, checkpoint: usize) {
        self.revert_to(Snapshot(checkpoint));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn balances_default_to_zero() {
        let state = StateDb::new();
        assert_eq!(state.balance_of(&addr(1)), U256::ZERO);
        assert_eq!(state.nonce_of(&addr(1)), 0);
    }

    #[test]
    fn credit_and_debit() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(100u64));
        assert!(state.debit(&addr(1), U256::from(30u64)));
        assert_eq!(state.balance_of(&addr(1)), U256::from(70u64));
        assert!(!state.debit(&addr(1), U256::from(1000u64)));
        assert_eq!(state.balance_of(&addr(1)), U256::from(70u64));
    }

    #[test]
    fn revert_restores_everything() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(10u64));
        state.clear_journal();
        let root_before = state.state_root();

        let snapshot = state.snapshot();
        state.credit(&addr(1), U256::from(5u64));
        state.set_nonce(&addr(1), 3);
        state.storage_set(&addr(2), H256::from_low_u64(1), H256::from_low_u64(9));
        state.set_code(&addr(3), ContractCode::Bytecode(bytes::Bytes::from_static(&[0x00])));
        assert_ne!(state.state_root(), root_before);

        state.revert_to(snapshot);
        assert_eq!(state.state_root(), root_before);
        assert_eq!(state.balance_of(&addr(1)), U256::from(10u64));
        assert_eq!(state.nonce_of(&addr(1)), 0);
        assert!(state.account(&addr(2)).is_none(), "created account removed on revert");
        assert!(state.account(&addr(3)).is_none());
    }

    #[test]
    fn nested_snapshots_revert_in_order() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(1u64));
        let outer = state.snapshot();
        state.credit(&addr(1), U256::from(1u64));
        let inner = state.snapshot();
        state.credit(&addr(1), U256::from(1u64));
        assert_eq!(state.balance_of(&addr(1)), U256::from(3u64));
        state.revert_to(inner);
        assert_eq!(state.balance_of(&addr(1)), U256::from(2u64));
        state.revert_to(outer);
        assert_eq!(state.balance_of(&addr(1)), U256::from(1u64));
    }

    #[test]
    fn zero_storage_writes_do_not_bloat_state() {
        let mut state = StateDb::new();
        state.storage_set(&addr(1), H256::from_low_u64(1), H256::from_low_u64(5));
        state.storage_set(&addr(1), H256::from_low_u64(1), H256::ZERO);
        assert_eq!(state.account(&addr(1)).unwrap().storage.len(), 0);
    }

    #[test]
    fn writing_same_value_is_a_noop_for_the_journal() {
        let mut state = StateDb::new();
        state.storage_set(&addr(1), H256::from_low_u64(1), H256::from_low_u64(5));
        let snapshot = state.snapshot();
        state.storage_set(&addr(1), H256::from_low_u64(1), H256::from_low_u64(5));
        state.revert_to(snapshot);
        assert_eq!(state.storage_get(&addr(1), &H256::from_low_u64(1)), H256::from_low_u64(5));
    }

    #[test]
    fn state_root_is_order_independent_but_content_sensitive() {
        let mut a = StateDb::new();
        a.credit(&addr(1), U256::from(1u64));
        a.credit(&addr(2), U256::from(2u64));
        let mut b = StateDb::new();
        b.credit(&addr(2), U256::from(2u64));
        b.credit(&addr(1), U256::from(1u64));
        assert_eq!(a.state_root(), b.state_root());

        b.credit(&addr(3), U256::from(3u64));
        assert_ne!(a.state_root(), b.state_root());
    }

    #[test]
    fn state_root_reflects_storage() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(1u64));
        let before = state.state_root();
        state.storage_set(&addr(1), H256::from_low_u64(7), H256::from_low_u64(8));
        assert_ne!(state.state_root(), before);
    }

    #[test]
    fn views_freeze_at_the_moment_taken() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(10u64));
        state.storage_set(&addr(2), H256::from_low_u64(1), H256::from_low_u64(5));
        state.clear_journal();

        let view = state.view();
        let frozen_root = state.state_root();
        assert!(view.ptr_eq(&state.view()), "no mutation yet: the map is shared");

        // Every kind of mutation after the view was taken…
        state.credit(&addr(1), U256::from(90u64));
        state.set_nonce(&addr(1), 7);
        state.storage_set(&addr(2), H256::from_low_u64(1), H256::from_low_u64(6));
        state.set_code(&addr(3), ContractCode::Bytecode(bytes::Bytes::from_static(&[0x01])));
        state.clear_journal();

        // …leaves the view byte-identical to the moment of capture.
        assert_eq!(view.state_root(), frozen_root);
        assert_eq!(view.balance_of(&addr(1)), U256::from(10u64));
        assert_eq!(view.nonce_of(&addr(1)), 0);
        assert_eq!(view.storage_get(&addr(2), &H256::from_low_u64(1)), H256::from_low_u64(5));
        assert!(view.account(&addr(3)).is_none());
        assert!(!view.ptr_eq(&state.view()), "the write unshared the map");
        // The live state moved on.
        assert_eq!(state.balance_of(&addr(1)), U256::from(100u64));
    }

    #[test]
    fn views_survive_revert_across_the_cow_boundary() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(10u64));
        state.clear_journal();

        let snapshot = state.snapshot();
        state.credit(&addr(1), U256::from(5u64));
        state.storage_set(&addr(2), H256::from_low_u64(1), H256::from_low_u64(9));

        // View taken mid-journal, before the revert.
        let view = state.view();
        assert_eq!(view.balance_of(&addr(1)), U256::from(15u64));

        // The revert happens on the live state only: it COWs away from the
        // view instead of mutating through it.
        state.revert_to(snapshot);
        assert_eq!(state.balance_of(&addr(1)), U256::from(10u64));
        assert!(state.account(&addr(2)).is_none());
        assert_eq!(view.balance_of(&addr(1)), U256::from(15u64));
        assert_eq!(view.storage_get(&addr(2), &H256::from_low_u64(1)), H256::from_low_u64(9));
    }

    #[test]
    fn clones_share_until_either_side_writes() {
        let mut a = StateDb::new();
        a.credit(&addr(1), U256::from(10u64));
        a.clear_journal();
        let mut b = a.clone();
        assert!(a.view().ptr_eq(&b.view()));

        // Writing the clone leaves the original untouched, and vice versa.
        b.credit(&addr(1), U256::from(1u64));
        assert_eq!(a.balance_of(&addr(1)), U256::from(10u64));
        a.set_nonce(&addr(1), 3);
        assert_eq!(b.nonce_of(&addr(1)), 0);
        assert_eq!(b.balance_of(&addr(1)), U256::from(11u64));
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut state = StateDb::new();
        state.credit(&addr(1), U256::from(10u64));
        state.clear_journal();
        let copy = state.deep_clone();
        assert!(!state.view().ptr_eq(&copy.view()));
        assert_eq!(copy.state_root(), state.state_root());
        assert_eq!(copy.balance_of(&addr(1)), U256::from(10u64));
    }

    #[test]
    fn storage_is_per_account() {
        let mut state = StateDb::new();
        state.storage_set(&addr(1), H256::from_low_u64(1), H256::from_low_u64(5));
        assert_eq!(state.storage_get(&addr(2), &H256::from_low_u64(1)), H256::ZERO);
    }

    #[test]
    fn diff_access_keys_finds_exactly_the_changed_keys() {
        let mut a = StateDb::new();
        a.credit(&addr(1), U256::from(10u64));
        a.credit(&addr(2), U256::from(10u64));
        a.storage_set(&addr(2), H256::from_low_u64(1), H256::from_low_u64(5));
        a.storage_set(&addr(2), H256::from_low_u64(2), H256::from_low_u64(6));
        a.clear_journal();
        let before = a.view();
        assert!(before.diff_access_keys(&before).is_empty());

        let mut b = a.clone();
        b.credit(&addr(1), U256::from(1u64)); // balance change
        b.set_nonce(&addr(2), 1); // nonce change, same-account slot change below
        b.storage_set(&addr(2), H256::from_low_u64(2), H256::from_low_u64(7));
        b.storage_set(&addr(2), H256::from_low_u64(3), H256::from_low_u64(8)); // new slot
        b.credit(&addr(3), U256::from(4u64)); // account only on one side
        b.clear_journal();
        let after = b.view();

        let dirty = before.diff_access_keys(&after);
        let expect: HashSet<AccessKey> = [
            AccessKey::Balance(addr(1)),
            AccessKey::Nonce(addr(2)),
            AccessKey::Slot(addr(2), H256::from_low_u64(2)),
            AccessKey::Slot(addr(2), H256::from_low_u64(3)),
            AccessKey::Balance(addr(3)),
        ]
        .into_iter()
        .collect();
        assert_eq!(dirty, expect);
        // Symmetric.
        assert_eq!(after.diff_access_keys(&before), expect);
        // Unshared-but-equal maps (deep clone) still diff to empty.
        assert!(a.deep_clone().view().diff_access_keys(&before).is_empty());
    }

    #[test]
    fn diff_accounts_yields_post_images_and_tombstones() {
        let mut a = StateDb::new();
        a.credit(&addr(1), U256::from(10u64));
        a.credit(&addr(2), U256::from(20u64));
        a.credit(&addr(4), U256::from(40u64));
        a.clear_journal();
        let before = a.view();
        assert!(before.diff_accounts(&before).is_empty());

        let mut b = a.clone();
        b.credit(&addr(2), U256::from(1u64)); // changed
        b.credit(&addr(3), U256::from(30u64)); // created
        b.clear_journal();
        // Delete addr(4) via the recovery-only path to exercise tombstones.
        b.replace_account(addr(4), None);
        let after = b.view();

        let writes = before.diff_accounts(&after);
        assert_eq!(
            writes.iter().map(|(address, post)| (*address, post.is_some())).collect::<Vec<_>>(),
            vec![(addr(2), true), (addr(3), true), (addr(4), false)],
            "address-ordered post-images with a tombstone for the deletion"
        );
        assert_eq!(writes[0].1.as_ref().unwrap().balance, U256::from(21u64));

        // Applying the write-set onto the old state reproduces the new one.
        let mut replayed = StateDb::from_accounts(before.iter().map(|(ad, acc)| (*ad, acc.clone())));
        for (address, post) in writes {
            replayed.replace_account(address, post);
        }
        assert_eq!(replayed.state_root(), after.state_root());
        // Unshared-but-equal maps (deep clone) still diff to empty.
        assert!(a.deep_clone().view().diff_accounts(&before).is_empty());
    }

    #[test]
    fn plain_statedb_views_carry_no_pin() {
        let state = StateDb::new();
        assert_eq!(state.view().pinned_epoch(), None);
    }
}
