//! The ledger substrate: state, execution, pooling, building, validation,
//! and storage of blocks — everything the paper's private Ethereum network
//! provided to its experiments, reimplemented from scratch.
//!
//! * [`state`] — journaled world state with deterministic commitments;
//! * [`executor`] — transaction application and the read-only call path on
//!   which Runtime Argument Augmentation operates;
//! * [`txpool`] — the pending pool, "an underutilized communication
//!   channel" (paper §III-C) and the input to Hash-Mark-Set;
//! * [`builder`] — block sealing over an externally-chosen order (miner
//!   policies live in `sereth-node`);
//! * [`parallel`] — conflict-aware optimistic execution of a block's
//!   candidates in waves, byte-equivalent to the sequential loop;
//! * [`validation`] — replay validation, the mechanism that both enforces
//!   consistency and (paper §II-D) creates the READ-COMMITTED latency the
//!   paper attacks; replay runs sequentially or on the wave executor
//!   ([`validation::ValidationMode`]), with identical verdicts;
//! * [`store`] — fork choice and canonical-chain tracking;
//! * [`genesis`] — block-zero construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod executor;
pub mod genesis;
pub mod parallel;
pub mod state;
pub mod store;
pub mod txpool;
pub mod validation;

pub use builder::{
    build_block, build_block_pipelined, build_block_traced, build_block_with_mode, BlockLimits, BuiltBlock,
};
pub use executor::{apply_transaction, call_readonly, read_slot, BlockEnv, TxApplyError, TxState};
pub use genesis::{Genesis, GenesisBuilder};
pub use parallel::{ExecMode, ExecStats, ExecStatsCells, PipelineSink};
pub use state::{Account, Snapshot, StateDb, StateView};
pub use store::{ChainStore, ImportError, ImportOutcome, StateBackendConfig, StoreConfig, StoredBlock};
// Downstream crates (node, sim, bench) configure and observe the durable
// backend through the chain API without depending on `sereth-store`.
pub use sereth_store::{DurableOptions, EpochGuard, EpochPins, StoreError};
pub use txpool::{PoolConfig, PoolEntry, PoolError, TxPool};
pub use validation::{
    validate_block, validate_block_accounted, validate_block_traced, validate_block_with_mode, Validated,
    ValidationError, ValidationMode,
};
