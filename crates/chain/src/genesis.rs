//! Genesis construction: the block-zero state every node agrees on.

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::block::{Block, BlockHeader};
use sereth_types::u256::U256;
use sereth_vm::exec::{ContractCode, Storage};

use crate::state::StateDb;

/// A fully-built genesis: the sealed block and its state.
#[derive(Debug, Clone)]
pub struct Genesis {
    /// Block number zero.
    pub block: Block,
    /// The state the block commits to.
    pub state: StateDb,
}

/// Builder for genesis configurations.
///
/// # Examples
///
/// ```
/// use sereth_chain::genesis::GenesisBuilder;
/// use sereth_crypto::Address;
/// use sereth_types::U256;
///
/// let genesis = GenesisBuilder::new()
///     .fund(Address::from_low_u64(1), U256::from(1_000_000u64))
///     .gas_limit(4_000_000)
///     .build();
/// assert_eq!(genesis.block.number(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct GenesisBuilder {
    state: StateDb,
    gas_limit: u64,
    timestamp_ms: u64,
}

impl GenesisBuilder {
    /// An empty genesis with default limits.
    pub fn new() -> Self {
        Self { state: StateDb::new(), gas_limit: 8_000_000, timestamp_ms: 0 }
    }

    /// Funds an account.
    pub fn fund(mut self, address: Address, balance: U256) -> Self {
        self.state.set_balance(&address, balance);
        self
    }

    /// Installs a contract with the given code.
    pub fn contract(mut self, address: Address, code: ContractCode) -> Self {
        self.state.set_code(&address, code);
        self
    }

    /// Installs a contract and pre-populates storage slots.
    pub fn contract_with_storage(
        mut self,
        address: Address,
        code: ContractCode,
        slots: impl IntoIterator<Item = (H256, H256)>,
    ) -> Self {
        self.state.set_code(&address, code);
        for (key, value) in slots {
            self.state.storage_set(&address, key, value);
        }
        self
    }

    /// Sets the block gas limit recorded in the genesis header.
    pub fn gas_limit(mut self, gas_limit: u64) -> Self {
        self.gas_limit = gas_limit;
        self
    }

    /// Seals the genesis block.
    pub fn build(mut self) -> Genesis {
        self.state.clear_journal();
        let header = BlockHeader {
            parent_hash: H256::ZERO,
            number: 0,
            timestamp_ms: self.timestamp_ms,
            miner: Address::ZERO,
            state_root: self.state.state_root(),
            tx_root: Block::compute_tx_root(&[]),
            receipts_root: Block::compute_receipts_root(&[]),
            gas_used: 0,
            gas_limit: self.gas_limit,
        };
        Genesis { block: Block { header, transactions: vec![] }, state: self.state }
    }
}

impl Default for GenesisBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funded_accounts_appear_in_state() {
        let genesis = GenesisBuilder::new().fund(Address::from_low_u64(1), U256::from(5u64)).build();
        assert_eq!(genesis.state.balance_of(&Address::from_low_u64(1)), U256::from(5u64));
        assert_eq!(genesis.block.header.state_root, genesis.state.state_root());
    }

    #[test]
    fn contracts_with_storage_install() {
        let addr = Address::from_low_u64(2);
        let genesis = GenesisBuilder::new()
            .contract_with_storage(
                addr,
                ContractCode::Bytecode(bytes::Bytes::from_static(&[0x00])),
                [(H256::from_low_u64(0), H256::from_low_u64(42))],
            )
            .build();
        assert_eq!(genesis.state.storage_get(&addr, &H256::from_low_u64(0)), H256::from_low_u64(42));
    }

    #[test]
    fn same_config_same_genesis_hash() {
        let a = GenesisBuilder::new().fund(Address::from_low_u64(1), U256::from(5u64)).build();
        let b = GenesisBuilder::new().fund(Address::from_low_u64(1), U256::from(5u64)).build();
        assert_eq!(a.block.hash(), b.block.hash());
    }

    #[test]
    fn different_config_different_genesis_hash() {
        let a = GenesisBuilder::new().fund(Address::from_low_u64(1), U256::from(5u64)).build();
        let b = GenesisBuilder::new().fund(Address::from_low_u64(1), U256::from(6u64)).build();
        assert_ne!(a.block.hash(), b.block.hash());
    }
}
