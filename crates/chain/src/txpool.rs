//! The pending-transaction pool (TxPool).
//!
//! "Hash-Mark-Set takes advantage of an underutilized communication channel
//! among the peers on a blockchain, the transaction pool" (paper §III-C).
//! The pool keeps per-sender nonce-ordered queues (miners must respect nonce
//! order, §II-C) and tracks arrival order, which defines the *real time
//! order* of the concurrent history (§II-B) that HMS snapshots.

use std::collections::{BTreeMap, HashMap, VecDeque};

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::transaction::Transaction;
use sereth_types::SimTime;

/// A pool mutation, as observed by subscribers (the `sereth-raa` view
/// service consumes these to maintain its per-contract series caches
/// incrementally instead of re-reading the whole pool per query).
// Inserted dominates the size (it carries the transaction) and also
// dominates the event count, so boxing it would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolEvent {
    /// A transaction entered the pool.
    Inserted {
        /// The pooled transaction.
        tx: Transaction,
        /// Its global arrival sequence number.
        arrival_seq: u64,
    },
    /// A transaction left the pool without committing: replaced by a
    /// higher-priced same-nonce transaction, evicted at capacity, pruned
    /// as nonce-stale, or removed explicitly.
    Removed {
        /// Hash of the departed transaction.
        hash: H256,
        /// Its callee, kept so subscribers indexing by contract can
        /// route the removal without a global hash index.
        to: Option<Address>,
    },
    /// A transaction left the pool because an imported block included it
    /// — "right after publication the pool no longer contains marked
    /// transactions" (paper §V-C).
    Committed {
        /// Hash of the committed transaction.
        hash: H256,
        /// Its callee (see [`PoolEvent::Removed::to`]).
        to: Option<Address>,
    },
}

/// A [`PoolEvent`] stamped with its position in the pool's event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolEventRecord {
    /// Monotone sequence number (dense, starting at 0).
    pub seq: u64,
    /// The event.
    pub event: PoolEvent,
}

/// A subscriber's cursor fell behind the bounded event buffer; the
/// subscriber must resynchronise from a full pool snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLag {
    /// The oldest sequence number still buffered.
    pub oldest_buffered: u64,
    /// The cursor to resume from after resynchronising.
    pub resume_cursor: u64,
}

impl core::fmt::Display for EventLag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "pool event subscriber lagged: oldest buffered seq is {}, resume from {}",
            self.oldest_buffered, self.resume_cursor
        )
    }
}

impl std::error::Error for EventLag {}

/// Why the pool declined a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The exact transaction is already pooled.
    Duplicate,
    /// Another transaction with the same sender and nonce is pooled at an
    /// equal-or-better price; Ethereum requires a price bump to replace.
    ReplacementUnderpriced,
    /// The pool is full and the transaction's price does not beat the
    /// cheapest pooled transaction.
    PoolFull,
    /// The transaction's nonce is already below the sender's account nonce.
    Stale,
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Duplicate => write!(f, "transaction already pooled"),
            Self::ReplacementUnderpriced => write!(f, "replacement transaction underpriced"),
            Self::PoolFull => write!(f, "pool is full"),
            Self::Stale => write!(f, "transaction nonce already consumed"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A pooled transaction together with its arrival bookkeeping.
#[derive(Debug, Clone)]
pub struct PoolEntry {
    /// The transaction itself.
    pub tx: Transaction,
    /// Global arrival sequence number (defines real-time order).
    pub arrival_seq: u64,
    /// Simulated arrival time.
    pub arrival_time: SimTime,
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum number of pooled transactions.
    pub capacity: usize,
    /// Percentage price bump required to replace a same-nonce transaction.
    pub replace_bump_pct: u64,
    /// Number of [`PoolEvent`]s retained for subscribers; a cursor older
    /// than the buffer gets [`EventLag`] and must resynchronise.
    pub event_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { capacity: 4096, replace_bump_pct: 10, event_capacity: 16_384 }
    }
}

/// The pending transaction pool.
#[derive(Debug, Clone, Default)]
pub struct TxPool {
    config: PoolConfig,
    by_sender: HashMap<Address, BTreeMap<u64, PoolEntry>>,
    by_hash: HashMap<H256, (Address, u64)>,
    arrival_counter: u64,
    events: VecDeque<PoolEventRecord>,
    next_event_seq: u64,
    /// Buffering starts only once [`TxPool::subscribe`] is called, so
    /// pools nobody watches (Geth nodes, plain tests) pay nothing for
    /// the event stream. The sequence number advances regardless, which
    /// is what lets a late subscriber detect the gap as [`EventLag`].
    events_enabled: bool,
}

impl TxPool {
    /// An empty pool with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with the given configuration.
    pub fn with_config(config: PoolConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Number of pooled transactions.
    pub fn len(&self) -> usize {
        self.by_hash.len()
    }

    /// `true` if nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.by_hash.is_empty()
    }

    /// `true` if the pool holds the given transaction hash.
    pub fn contains(&self, hash: &H256) -> bool {
        self.by_hash.contains_key(hash)
    }

    /// The cursor a new event subscriber should start from (the sequence
    /// number the *next* event will carry).
    pub fn event_cursor(&self) -> u64 {
        self.next_event_seq
    }

    /// Turns on event buffering and returns the cursor to read from.
    /// Until this is called the pool only advances its sequence number —
    /// mutations cost nothing extra and [`TxPool::events_since`] reports
    /// [`EventLag`] for any elapsed history, forcing a snapshot rebuild.
    pub fn subscribe(&mut self) -> u64 {
        self.events_enabled = true;
        self.next_event_seq
    }

    /// Every event recorded at or after `cursor`, in order.
    ///
    /// # Errors
    ///
    /// [`EventLag`] when `cursor` has already been evicted from the
    /// bounded buffer; the caller must rebuild from a full snapshot
    /// ([`TxPool::pending_by_arrival`]) and resume from
    /// [`EventLag::resume_cursor`].
    pub fn events_since(&self, cursor: u64) -> Result<Vec<PoolEventRecord>, EventLag> {
        if cursor >= self.next_event_seq {
            return Ok(Vec::new());
        }
        let oldest = match self.events.front() {
            Some(record) => record.seq,
            None => self.next_event_seq,
        };
        if cursor < oldest {
            return Err(EventLag { oldest_buffered: oldest, resume_cursor: self.next_event_seq });
        }
        let skip = (cursor - oldest) as usize;
        Ok(self.events.iter().skip(skip).cloned().collect())
    }

    /// Records the event built by `make` if anyone is buffering; always
    /// advances the sequence number. Taking a closure keeps unwatched
    /// pools from even constructing (and cloning into) the event.
    fn emit_with(&mut self, make: impl FnOnce() -> PoolEvent) {
        if self.events_enabled && self.config.event_capacity > 0 {
            while self.events.len() >= self.config.event_capacity {
                self.events.pop_front();
            }
            self.events.push_back(PoolEventRecord { seq: self.next_event_seq, event: make() });
        }
        self.next_event_seq += 1;
    }

    /// Inserts `tx`, arriving at `now`.
    ///
    /// # Errors
    ///
    /// See [`PoolError`] for the admission rules.
    pub fn insert(&mut self, tx: Transaction, now: SimTime) -> Result<(), PoolError> {
        if self.by_hash.contains_key(&tx.hash()) {
            return Err(PoolError::Duplicate);
        }
        let sender = tx.sender();
        let nonce = tx.nonce();

        if let Some(existing) = self.by_sender.get(&sender).and_then(|queue| queue.get(&nonce)) {
            let required = existing.tx.gas_price().saturating_mul(100 + self.config.replace_bump_pct) / 100;
            if tx.gas_price() < required.max(existing.tx.gas_price() + 1) {
                return Err(PoolError::ReplacementUnderpriced);
            }
            let old_hash = existing.tx.hash();
            let old_to = existing.tx.to();
            self.by_hash.remove(&old_hash);
            self.emit_with(|| PoolEvent::Removed { hash: old_hash, to: old_to });
        } else if self.by_hash.len() >= self.config.capacity {
            // Evict the globally cheapest transaction if the newcomer pays
            // more; otherwise refuse.
            let cheapest = self
                .by_hash
                .keys()
                .filter_map(|hash| self.entry_by_hash(hash))
                .min_by_key(|entry| (entry.tx.gas_price(), u64::MAX - entry.arrival_seq))
                .map(|entry| entry.tx.hash());
            match cheapest {
                Some(hash)
                    if self
                        .entry_by_hash(&hash)
                        .is_some_and(|cheap| cheap.tx.gas_price() < tx.gas_price()) =>
                {
                    self.remove(&hash);
                }
                _ => return Err(PoolError::PoolFull),
            }
        }

        let entry = PoolEntry { arrival_seq: self.arrival_counter, arrival_time: now, tx };
        self.arrival_counter += 1;
        self.by_hash.insert(entry.tx.hash(), (sender, nonce));
        self.emit_with(|| PoolEvent::Inserted { tx: entry.tx.clone(), arrival_seq: entry.arrival_seq });
        self.by_sender.entry(sender).or_default().insert(nonce, entry);
        Ok(())
    }

    fn entry_by_hash(&self, hash: &H256) -> Option<&PoolEntry> {
        let (sender, nonce) = self.by_hash.get(hash)?;
        self.by_sender.get(sender)?.get(nonce)
    }

    /// Removes a transaction by hash, returning it if present.
    pub fn remove(&mut self, hash: &H256) -> Option<Transaction> {
        self.remove_as(hash, false)
    }

    /// Removes by hash, emitting [`PoolEvent::Committed`] when
    /// `committed`, [`PoolEvent::Removed`] otherwise.
    fn remove_as(&mut self, hash: &H256, committed: bool) -> Option<Transaction> {
        let (sender, nonce) = self.by_hash.remove(hash)?;
        let queue = self.by_sender.get_mut(&sender)?;
        let entry = queue.remove(&nonce);
        if queue.is_empty() {
            self.by_sender.remove(&sender);
        }
        let tx = entry.map(|e| e.tx);
        if let Some(tx) = &tx {
            let to = tx.to();
            self.emit_with(|| {
                if committed {
                    PoolEvent::Committed { hash: *hash, to }
                } else {
                    PoolEvent::Removed { hash: *hash, to }
                }
            });
        }
        tx
    }

    /// Drops every pooled transaction that appears in `block_txs`, and any
    /// pooled transaction whose nonce is now stale for its sender. Called
    /// when a block is imported — this is why, right after publication, the
    /// pool "no longer contains marked transactions" (paper §V-C).
    pub fn remove_committed<'a>(&mut self, block_txs: impl IntoIterator<Item = &'a Transaction>) {
        for tx in block_txs {
            self.remove_as(&tx.hash(), true);
            // Same-sender same-nonce alternatives are now unincludable.
            let sender = tx.sender();
            let mut dropped = Vec::new();
            if let Some(queue) = self.by_sender.get_mut(&sender) {
                let stale: Vec<u64> = queue.range(..=tx.nonce()).map(|(n, _)| *n).collect();
                for nonce in stale {
                    if let Some(entry) = queue.remove(&nonce) {
                        self.by_hash.remove(&entry.tx.hash());
                        dropped.push((entry.tx.hash(), entry.tx.to()));
                    }
                }
                if queue.is_empty() {
                    self.by_sender.remove(&sender);
                }
            }
            for (hash, to) in dropped {
                self.emit_with(|| PoolEvent::Removed { hash, to });
            }
        }
    }

    /// Every pooled transaction in arrival order — the concurrent history
    /// snapshot that Hash-Mark-Set's `PROCESS` filters (paper Alg. 2).
    pub fn pending_by_arrival(&self) -> Vec<PoolEntry> {
        self.entries_by_arrival().into_iter().cloned().collect()
    }

    /// Borrowed view of every pooled entry in arrival order. Only the
    /// reference vector is allocated; the entries (and their calldata)
    /// stay in place — the read path HMS providers should use instead of
    /// cloning the pool per query via [`TxPool::pending_by_arrival`].
    pub fn entries_by_arrival(&self) -> Vec<&PoolEntry> {
        let mut entries: Vec<&PoolEntry> = self.by_sender.values().flat_map(|queue| queue.values()).collect();
        entries.sort_by_key(|entry| entry.arrival_seq);
        entries
    }

    /// Drops every pooled transaction whose nonce is below its sender's
    /// current account nonce (e.g. after a reorg or a block built
    /// elsewhere). `nonce_of` supplies the account nonce per sender.
    pub fn prune_stale(&mut self, nonce_of: impl Fn(&Address) -> u64) {
        let stale: Vec<H256> = self
            .by_sender
            .iter()
            .flat_map(|(sender, queue)| {
                let floor = nonce_of(sender);
                queue.range(..floor).map(|(_, entry)| entry.tx.hash()).collect::<Vec<_>>()
            })
            .collect();
        for hash in stale {
            self.remove(&hash);
        }
    }

    /// Executable transactions ordered the way a fee-maximising miner picks
    /// them: highest gas price first, arrival order breaking ties, while
    /// never emitting a sender's nonce `n + 1` before `n` (paper §II-C).
    ///
    /// `base_nonce` supplies each sender's current account nonce; senders
    /// whose next pooled nonce is ahead of their account nonce (a gap) are
    /// held back entirely.
    pub fn ready_by_price(&self, base_nonce: impl Fn(&Address) -> u64) -> Vec<Transaction> {
        // Iterate per-sender queues with a simple repeated-selection loop.
        // Pool sizes in the simulation are a few thousand at most.
        let mut cursors: HashMap<Address, u64> = HashMap::new();
        for sender in self.by_sender.keys() {
            cursors.insert(*sender, base_nonce(sender));
        }
        let mut out = Vec::new();
        loop {
            let mut best: Option<&PoolEntry> = None;
            for (sender, queue) in &self.by_sender {
                let next_nonce = cursors[sender];
                if let Some(entry) = queue.get(&next_nonce) {
                    let better = match best {
                        None => true,
                        Some(current) => {
                            (entry.tx.gas_price(), current.arrival_seq)
                                > (current.tx.gas_price(), entry.arrival_seq)
                        }
                    };
                    if better {
                        best = Some(entry);
                    }
                }
            }
            match best {
                Some(entry) => {
                    out.push(entry.tx.clone());
                    *cursors.get_mut(&entry.tx.sender()).expect("cursor exists") += 1;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;

    fn tx(key: &SecretKey, nonce: u64, gas_price: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(1)),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            key,
        )
    }

    #[test]
    fn insert_and_len() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        pool.insert(tx(&key, 1, 10), 1).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let t = tx(&key, 0, 10);
        pool.insert(t.clone(), 0).unwrap();
        assert_eq!(pool.insert(t, 1), Err(PoolError::Duplicate));
    }

    #[test]
    fn replacement_requires_price_bump() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 100), 0).unwrap();
        // The identical transaction is a duplicate, not a replacement.
        assert_eq!(pool.insert(tx(&key, 0, 100), 1), Err(PoolError::Duplicate));
        // +5% is below the 10% bump: refused.
        assert_eq!(pool.insert(tx(&key, 0, 105), 2), Err(PoolError::ReplacementUnderpriced));
        // +10%: accepted, replacing the old one.
        pool.insert(tx(&key, 0, 110), 3).unwrap();
        assert_eq!(pool.len(), 1);
        let pending = pool.pending_by_arrival();
        assert_eq!(pending[0].tx.gas_price(), 110);
    }

    #[test]
    fn capacity_evicts_cheapest_when_newcomer_pays_more() {
        let mut pool = TxPool::with_config(PoolConfig { capacity: 2, ..PoolConfig::default() });
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        let c = SecretKey::from_label(3);
        pool.insert(tx(&a, 0, 5), 0).unwrap();
        pool.insert(tx(&b, 0, 50), 1).unwrap();
        // Cheaper than everything pooled: refused.
        assert_eq!(pool.insert(tx(&c, 0, 1), 2), Err(PoolError::PoolFull));
        // Richer than the cheapest: evicts it.
        pool.insert(tx(&c, 0, 20), 3).unwrap();
        assert_eq!(pool.len(), 2);
        let prices: Vec<u64> = pool.pending_by_arrival().iter().map(|e| e.tx.gas_price()).collect();
        assert!(prices.contains(&50) && prices.contains(&20));
    }

    #[test]
    fn pending_by_arrival_preserves_real_time_order() {
        let mut pool = TxPool::new();
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        pool.insert(tx(&b, 0, 1), 10).unwrap();
        pool.insert(tx(&a, 0, 99), 20).unwrap();
        pool.insert(tx(&b, 1, 1), 30).unwrap();
        let order: Vec<u64> = pool.pending_by_arrival().iter().map(|e| e.arrival_time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ready_by_price_orders_by_fee_with_nonce_constraint() {
        let mut pool = TxPool::new();
        let rich = SecretKey::from_label(1);
        let poor = SecretKey::from_label(2);
        // rich sends nonce 0 at low price, nonce 1 at high price; the high
        // price tx must still come after its predecessor.
        pool.insert(tx(&rich, 0, 10), 0).unwrap();
        pool.insert(tx(&rich, 1, 500), 1).unwrap();
        pool.insert(tx(&poor, 0, 100), 2).unwrap();
        let ready = pool.ready_by_price(|_| 0);
        let prices: Vec<u64> = ready.iter().map(Transaction::gas_price).collect();
        assert_eq!(prices, vec![100, 10, 500]);
    }

    #[test]
    fn ready_by_price_holds_back_nonce_gaps() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 1, 100), 0).unwrap(); // gap: nonce 0 missing
        assert!(pool.ready_by_price(|_| 0).is_empty());
        pool.insert(tx(&key, 0, 1), 1).unwrap();
        assert_eq!(pool.ready_by_price(|_| 0).len(), 2);
    }

    #[test]
    fn remove_committed_clears_included_and_stale() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let committed = tx(&key, 1, 10);
        pool.insert(tx(&key, 0, 10), 0).unwrap(); // stale once nonce 1 commits
        pool.insert(committed.clone(), 1).unwrap();
        pool.insert(tx(&key, 2, 10), 2).unwrap(); // still valid
        pool.remove_committed([&committed]);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_by_arrival()[0].tx.nonce(), 2);
    }

    #[test]
    fn remove_unknown_hash_is_none() {
        let mut pool = TxPool::new();
        assert!(pool.remove(&H256::keccak(b"nothing")).is_none());
    }

    #[test]
    fn events_record_insert_remove_commit() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let cursor = pool.subscribe();
        let t0 = tx(&key, 0, 10);
        let t1 = tx(&key, 1, 10);
        pool.insert(t0.clone(), 0).unwrap();
        pool.insert(t1.clone(), 1).unwrap();
        pool.remove(&t1.hash());
        pool.remove_committed([&t0]);
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(
            events,
            vec![
                PoolEvent::Inserted { tx: t0.clone(), arrival_seq: 0 },
                PoolEvent::Inserted { tx: t1.clone(), arrival_seq: 1 },
                PoolEvent::Removed { hash: t1.hash(), to: t1.to() },
                PoolEvent::Committed { hash: t0.hash(), to: t0.to() },
            ]
        );
        // The cursor advanced past everything: nothing new.
        assert!(pool.events_since(pool.event_cursor()).unwrap().is_empty());
    }

    #[test]
    fn replacement_emits_removed_then_inserted() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let cheap = tx(&key, 0, 100);
        pool.subscribe();
        pool.insert(cheap.clone(), 0).unwrap();
        let cursor = pool.event_cursor();
        let rich = tx(&key, 0, 110);
        pool.insert(rich.clone(), 1).unwrap();
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], PoolEvent::Removed { hash, .. } if *hash == cheap.hash()));
        assert!(matches!(&events[1], PoolEvent::Inserted { tx, .. } if tx.hash() == rich.hash()));
    }

    #[test]
    fn stale_nonce_collateral_emits_removed() {
        let mut pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let n0 = tx(&key, 0, 10);
        let committed = tx(&key, 1, 10);
        pool.subscribe();
        pool.insert(n0.clone(), 0).unwrap();
        pool.insert(committed.clone(), 1).unwrap();
        let cursor = pool.event_cursor();
        pool.remove_committed([&committed]);
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], PoolEvent::Committed { hash, .. } if *hash == committed.hash()));
        assert!(matches!(&events[1], PoolEvent::Removed { hash, .. } if *hash == n0.hash()));
    }

    #[test]
    fn lagged_cursor_reports_resync_point() {
        let mut pool = TxPool::with_config(PoolConfig { event_capacity: 2, ..PoolConfig::default() });
        pool.subscribe();
        let key = SecretKey::from_label(1);
        for nonce in 0..5 {
            pool.insert(tx(&key, nonce, 10), nonce).unwrap();
        }
        let err = pool.events_since(0).unwrap_err();
        assert_eq!(err.oldest_buffered, 3);
        assert_eq!(err.resume_cursor, 5);
        // The still-buffered suffix is readable.
        assert_eq!(pool.events_since(3).unwrap().len(), 2);
    }
}
