//! Block building: executing an ordered candidate list against the parent
//! state and sealing the result.
//!
//! Ordering the candidates is *miner policy* and lives in `sereth-node`
//! (standard fee-priority vs. the paper's HMS-aware *semantic mining*,
//! §V-C); this module faithfully executes whatever order it is given — the
//! blockchain is a "blind transactional data structure" (§I) and the
//! builder is the blind part.

use sereth_crypto::address::Address;
use sereth_telemetry::{Phase, Telemetry};
use sereth_types::block::{Block, BlockHeader};
use sereth_types::receipt::Receipt;
use sereth_types::transaction::Transaction;

use crate::executor::{apply_transaction, BlockEnv};
use crate::parallel::{self, ExecMode, ExecOutcome, ExecStats, PipelineSink};
use crate::state::StateDb;

/// Limits for one block.
#[derive(Debug, Clone)]
pub struct BlockLimits {
    /// Gas capacity.
    pub gas_limit: u64,
    /// Optional hard cap on transaction count (the experiments use this to
    /// model small blocks and create TxPool backlog, §V-A).
    pub max_txs: Option<usize>,
}

impl Default for BlockLimits {
    fn default() -> Self {
        Self { gas_limit: 8_000_000, max_txs: None }
    }
}

/// A sealed block plus everything a node wants to retain about it.
#[derive(Debug, Clone)]
pub struct BuiltBlock {
    /// The sealed block.
    pub block: Block,
    /// Receipts, in block order.
    pub receipts: Vec<Receipt>,
    /// State after applying the block.
    pub post_state: StateDb,
    /// Candidates that were skipped (protocol-invalid or over capacity).
    pub skipped: usize,
    /// How the executor got there (waves, speculations, fallbacks).
    pub stats: ExecStats,
}

/// Executes `candidates` in order on top of `parent`, skipping transactions
/// that are protocol-invalid (bad nonce/signature/funds) or would exceed
/// the block limits, and seals the result into a block mined by `miner` at
/// `timestamp_ms`.
pub fn build_block(
    parent: &BlockHeader,
    parent_state: &StateDb,
    candidates: Vec<Transaction>,
    miner: Address,
    timestamp_ms: u64,
    limits: &BlockLimits,
) -> BuiltBlock {
    build_block_with_mode(
        parent,
        parent_state,
        &candidates,
        miner,
        timestamp_ms,
        limits,
        &ExecMode::Sequential,
    )
}

/// [`build_block`] with an explicit execution mode.
///
/// Candidates are borrowed — callers keep their list (miners reuse it
/// for pool bookkeeping); included transactions are cloned into the
/// block, which is cheap (`Bytes` calldata is refcounted).
///
/// [`ExecMode::Parallel`] runs the conflict-aware wave executor of
/// [`crate::parallel`]; the sealed block is byte-equivalent to
/// [`ExecMode::Sequential`]'s for the same inputs (same state root,
/// receipts, gas, and logs) — the `parallel_exec_props` suite holds the
/// two modes equal over randomized workloads.
pub fn build_block_with_mode(
    parent: &BlockHeader,
    parent_state: &StateDb,
    candidates: &[Transaction],
    miner: Address,
    timestamp_ms: u64,
    limits: &BlockLimits,
    mode: &ExecMode,
) -> BuiltBlock {
    build_block_traced(parent, parent_state, candidates, miner, timestamp_ms, limits, mode, Telemetry::off())
}

/// [`build_block_with_mode`] recording into `telemetry`: the wave
/// executor's speculate/merge stages land in their phase histograms and
/// the root-computation + header assembly is timed as [`Phase::Seal`].
/// Pass [`Telemetry::off()`] (what [`build_block_with_mode`] does) to
/// build untimed.
#[allow(clippy::too_many_arguments)] // the traced twin of build_block_with_mode, +1 tail param
pub fn build_block_traced(
    parent: &BlockHeader,
    parent_state: &StateDb,
    candidates: &[Transaction],
    miner: Address,
    timestamp_ms: u64,
    limits: &BlockLimits,
    mode: &ExecMode,
    telemetry: &Telemetry,
) -> BuiltBlock {
    let mut state = parent_state.clone();
    state.clear_journal();
    let env = BlockEnv { number: parent.number + 1, timestamp_ms, gas_limit: limits.gas_limit, miner };

    let outcome = match mode {
        ExecMode::Sequential => run_sequential(&mut state, &env, candidates, limits),
        ExecMode::Parallel { threads } => {
            parallel::execute_candidates(&mut state, &env, candidates, limits, *threads, telemetry)
        }
    };
    seal(parent, state, outcome, miner, timestamp_ms, limits, telemetry)
}

/// [`build_block_traced`] consuming a cross-block [`PipelineSink`]: the
/// candidates run on the wave executor with the sink's prespeculated
/// outcomes prefed (valid ones merge without re-execution; the rest fall
/// back live). The sealed block is byte-identical to what
/// [`build_block_traced`] produces for the same inputs in *either* mode —
/// the pipeline only moves work, never results.
///
/// Always routes through the wave executor, whatever the configured mode:
/// consuming prefed outcomes needs no worker threads, so even a
/// `threads == 1` (or sequential-mode) node overlaps this way.
#[allow(clippy::too_many_arguments)] // the pipelined twin of build_block_traced
pub fn build_block_pipelined(
    parent: &BlockHeader,
    parent_state: &StateDb,
    candidates: &[Transaction],
    miner: Address,
    timestamp_ms: u64,
    limits: &BlockLimits,
    threads: usize,
    pipeline: &mut PipelineSink,
    telemetry: &Telemetry,
) -> BuiltBlock {
    let mut state = parent_state.clone();
    state.clear_journal();
    let env = BlockEnv { number: parent.number + 1, timestamp_ms, gas_limit: limits.gas_limit, miner };
    let outcome = parallel::execute_candidates_pipelined(
        &mut state, &env, candidates, limits, threads, telemetry, pipeline,
    );
    seal(parent, state, outcome, miner, timestamp_ms, limits, telemetry)
}

/// The shared seal tail: computes the commitment roots over the executed
/// outcome and assembles the header, timed as [`Phase::Seal`].
fn seal(
    parent: &BlockHeader,
    mut state: StateDb,
    outcome: ExecOutcome,
    miner: Address,
    timestamp_ms: u64,
    limits: &BlockLimits,
    telemetry: &Telemetry,
) -> BuiltBlock {
    let ExecOutcome { included, receipts, gas_used, skipped, stats } = outcome;
    telemetry.time(Phase::Seal, || {
        state.clear_journal();
        let header = BlockHeader {
            parent_hash: parent.hash(),
            number: parent.number + 1,
            timestamp_ms,
            miner,
            state_root: state.state_root(),
            tx_root: Block::compute_tx_root(&included),
            receipts_root: Block::compute_receipts_root(&receipts),
            gas_used,
            gas_limit: limits.gas_limit,
        };
        BuiltBlock {
            block: Block { header, transactions: included },
            receipts,
            post_state: state,
            skipped,
            stats,
        }
    })
}

/// The classic one-by-one candidate loop, built on the same
/// [`parallel::admit`]/[`parallel::include`] bookkeeping as the wave
/// executor so the admission rules exist exactly once.
fn run_sequential(
    state: &mut StateDb,
    env: &BlockEnv,
    candidates: &[Transaction],
    limits: &BlockLimits,
) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    for tx in candidates {
        if !parallel::admit(&mut out, tx, limits) {
            continue;
        }
        out.stats.sequential_txs += 1;
        match apply_transaction(state, env, tx, out.included.len() as u32) {
            Ok(receipt) => parallel::include(&mut out, tx, receipt),
            Err(_) => out.skipped += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;

    fn transfer(key: &SecretKey, nonce: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(7)),
                value: U256::from(1u64),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn genesis_with(keys: &[&SecretKey]) -> (BlockHeader, StateDb) {
        let mut builder = GenesisBuilder::new();
        for key in keys {
            builder = builder.fund(key.address(), U256::from(10_000_000u64));
        }
        let genesis = builder.build();
        (genesis.block.header, genesis.state)
    }

    #[test]
    fn builds_block_with_valid_transactions() {
        let key = SecretKey::from_label(1);
        let (parent, state) = genesis_with(&[&key]);
        let built = build_block(
            &parent,
            &state,
            vec![transfer(&key, 0), transfer(&key, 1)],
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
        );
        assert_eq!(built.block.transactions.len(), 2);
        assert_eq!(built.skipped, 0);
        assert_eq!(built.block.header.number, 1);
        assert!(built.block.body_matches_header());
        assert_eq!(built.post_state.nonce_of(&key.address()), 2);
    }

    #[test]
    fn skips_invalid_nonce_but_keeps_going() {
        let key = SecretKey::from_label(1);
        let (parent, state) = genesis_with(&[&key]);
        // nonce 5 is invalid now; nonce 0 still applies.
        let built = build_block(
            &parent,
            &state,
            vec![transfer(&key, 5), transfer(&key, 0)],
            Address::from_low_u64(1),
            15_000,
            &BlockLimits::default(),
        );
        assert_eq!(built.block.transactions.len(), 1);
        assert_eq!(built.skipped, 1);
    }

    #[test]
    fn respects_max_txs() {
        let key = SecretKey::from_label(1);
        let (parent, state) = genesis_with(&[&key]);
        let candidates: Vec<Transaction> = (0..5).map(|n| transfer(&key, n)).collect();
        let built = build_block(
            &parent,
            &state,
            candidates,
            Address::from_low_u64(1),
            15_000,
            &BlockLimits { gas_limit: 8_000_000, max_txs: Some(3) },
        );
        assert_eq!(built.block.transactions.len(), 3);
        assert_eq!(built.skipped, 2);
    }

    #[test]
    fn respects_gas_limit() {
        let key = SecretKey::from_label(1);
        let (parent, state) = genesis_with(&[&key]);
        let candidates: Vec<Transaction> = (0..4).map(|n| transfer(&key, n)).collect();
        let built = build_block(
            &parent,
            &state,
            candidates,
            Address::from_low_u64(1),
            15_000,
            &BlockLimits { gas_limit: 50_000, max_txs: None }, // fits two 21k txs
        );
        assert_eq!(built.block.transactions.len(), 2);
        assert_eq!(built.skipped, 2);
        assert!(built.block.header.gas_used <= 50_000);
    }

    #[test]
    fn empty_candidate_list_builds_empty_block() {
        let (parent, state) = genesis_with(&[]);
        let built =
            build_block(&parent, &state, vec![], Address::from_low_u64(1), 15_000, &BlockLimits::default());
        assert!(built.block.transactions.is_empty());
        assert_eq!(built.block.header.state_root, state.state_root());
    }
}
