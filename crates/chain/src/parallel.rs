//! Conflict-aware parallel block execution.
//!
//! The sequential builder applies transactions one by one; nothing about
//! block semantics *requires* that — only the result must equal the
//! sequential history. This module executes a candidate list in **waves**:
//!
//! 1. **Plan.** The next window of candidates is split into transactions
//!    worth speculating and transactions scheduled for in-order execution:
//!    a sender's second transaction in the window serializes behind its
//!    first (nonce chains), and plain transfers whose statically-known
//!    footprint ([`AccessKey`] sets) collides with an earlier window-mate
//!    are serialized up front instead of wasting a speculation.
//! 2. **Speculate.** Every planned transaction executes on its own
//!    journaled overlay (`SpecStorage`) over one shared, frozen
//!    [`StateView`] of the wave base, concurrently under
//!    [`std::thread::scope`]. Execution runs the *same* algorithm as the
//!    sequential path (`apply_tx_inner`) and records the exact
//!    read/write [`AccessSet`] it observed — the same footprint
//!    vocabulary `sereth_vm::access` exposes (and that
//!    [`sereth_vm::trace::trace_access`] derives from the tracing
//!    interpreter), extended here with the chain-level nonce/code keys.
//! 3. **Merge.** Journals merge strictly in canonical order. A speculation
//!    is still valid iff nothing it *read* was written by a transaction
//!    merged after the wave base was frozen (tracked in a dirty-key set).
//!    A mis-speculation falls back to sequential re-execution against the
//!    live state — observably counted in [`ExecStats::fallbacks`] — so the
//!    merged history is byte-equivalent to the sequential one: same state
//!    root, receipts, gas, and logs (proven by the
//!    `parallel_exec_props` property suite).
//!
//! Miner fees are the one deliberate departure from literal replay: every
//! transaction credits the miner, which would serialize everything on one
//! balance. `apply_tx_inner` defers the fee, the merge applies it in
//! canonical order (credits commute into an identical sum), and the
//! miner's balance key is marked dirty so any transaction that genuinely
//! *reads* it falls back.
//!
//! Blocks whose conflict ratio makes speculation a net loss degrade
//! gracefully: when more than half of a wave mis-speculates, subsequent
//! windows run sequentially, with exponentially backed-off probe waves to
//! detect when parallelism starts paying again.
//!
//! The wave loop itself is policy-free: `run_waves` drives planning,
//! speculation, and in-order merging against a `WaveSink` that decides
//! what *inclusion* means. The block builder's sink admits against block
//! limits and counts skips; replay validation's sink
//! ([`crate::validation`]) admits everything and aborts on the first
//! apply error — so building, validating, and the sequential baseline all
//! run the one [`TxState`] transaction algorithm and provably cannot
//! drift.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_telemetry::{Counter, Phase, Telemetry};
use sereth_types::receipt::Receipt;
use sereth_types::transaction::Transaction;
use sereth_types::u256::U256;
use sereth_vm::access::{AccessKey, AccessSet};
use sereth_vm::exec::{ContractCode, Storage};

use crate::builder::BlockLimits;
use crate::executor::{apply_transaction, apply_tx_inner, BlockEnv, TxApplyError, TxState};
use crate::state::{StateDb, StateView};

/// How a block's candidate list is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The classic one-by-one loop (the baseline and the default).
    #[default]
    Sequential,
    /// Conflict-aware optimistic execution in waves.
    Parallel {
        /// Worker threads per wave (clamped to at least 1).
        threads: usize,
    },
}

/// The host's detected hardware parallelism (1 when detection fails).
pub(crate) fn detected_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl ExecMode {
    /// Picks [`ExecMode::Parallel`] with `threads` workers on multi-core
    /// hosts and falls back to [`ExecMode::Sequential`] when the machine
    /// exposes a single CPU — where speculation is pure overhead (no cores
    /// to run it on). Callers wanting parallelism regardless construct
    /// `Parallel { threads }` directly; `auto` is the deployment default.
    pub fn auto(threads: usize) -> Self {
        Self::auto_for(threads, detected_parallelism())
    }

    /// [`ExecMode::auto`] with an explicit parallelism reading — the
    /// deterministic core the single-CPU regression test pins.
    pub fn auto_for(threads: usize, available_parallelism: usize) -> Self {
        if available_parallelism <= 1 || threads <= 1 {
            Self::Sequential
        } else {
            Self::Parallel { threads }
        }
    }
}

/// Counters describing how a block (or a node's lifetime of blocks) was
/// executed. All additive; [`ExecStats::absorb`] accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Speculation waves run (parallel mode only).
    pub waves: u64,
    /// Transactions executed optimistically against a wave base.
    pub speculated: u64,
    /// Speculations that merged without re-execution.
    pub fast_commits: u64,
    /// Speculations invalidated at merge (observed reads hit a dirty key)
    /// and re-executed sequentially — the mis-prediction counter.
    pub fallbacks: u64,
    /// Transactions executed sequentially by plan: nonce chains, predicted
    /// static conflicts, and adaptive high-conflict windows.
    pub sequential_txs: u64,
}

impl ExecStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.waves += other.waves;
        self.speculated += other.speculated;
        self.fast_commits += other.fast_commits;
        self.fallbacks += other.fallbacks;
        self.sequential_txs += other.sequential_txs;
    }
}

/// Registry-backed [`ExecStats`] accumulation: five named counters in a
/// telemetry registry, absorbable lock-free from any thread and
/// readable back as a plain [`ExecStats`] without any node or store
/// lock. This is what unifies the node's lifetime executor stats and
/// the store's validation stats over the one telemetry substrate.
///
/// Registered under `<prefix>.waves`, `<prefix>.speculated`,
/// `<prefix>.fast_commits`, `<prefix>.fallbacks`, and
/// `<prefix>.sequential_txs`. Cloning shares the cells. When the
/// owning telemetry hub is disabled the counters are inert and
/// [`ExecStatsCells::snapshot`] reads zero.
#[derive(Debug, Clone)]
pub struct ExecStatsCells {
    waves: Counter,
    speculated: Counter,
    fast_commits: Counter,
    fallbacks: Counter,
    sequential_txs: Counter,
}

impl ExecStatsCells {
    /// Registers (or re-resolves) the five counters under `prefix`.
    pub fn register(telemetry: &Telemetry, prefix: &str) -> Self {
        Self {
            waves: telemetry.counter(&format!("{prefix}.waves")),
            speculated: telemetry.counter(&format!("{prefix}.speculated")),
            fast_commits: telemetry.counter(&format!("{prefix}.fast_commits")),
            fallbacks: telemetry.counter(&format!("{prefix}.fallbacks")),
            sequential_txs: telemetry.counter(&format!("{prefix}.sequential_txs")),
        }
    }

    /// Adds one block's counters into the cells (atomic, lock-free).
    pub fn absorb(&self, stats: &ExecStats) {
        self.waves.add(stats.waves);
        self.speculated.add(stats.speculated);
        self.fast_commits.add(stats.fast_commits);
        self.fallbacks.add(stats.fallbacks);
        self.sequential_txs.add(stats.sequential_txs);
    }

    /// The accumulated totals as a plain value.
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            waves: self.waves.get(),
            speculated: self.speculated.get(),
            fast_commits: self.fast_commits.get(),
            fallbacks: self.fallbacks.get(),
            sequential_txs: self.sequential_txs.get(),
        }
    }
}

/// What executing a candidate list produced (mode-independent shape).
#[derive(Default)]
pub(crate) struct ExecOutcome {
    pub included: Vec<Transaction>,
    pub receipts: Vec<Receipt>,
    pub gas_used: u64,
    pub skipped: usize,
    pub stats: ExecStats,
}

/// Undo-log entry of [`SpecStorage`]: `None` priors mean "no overlay entry
/// existed", so a revert restores the exact overlay shape — entries that
/// only ever held rolled-back writes vanish again, and the final maps are
/// precisely the transaction's surviving net effect.
enum SpecUndo {
    Balance(Address, Option<U256>),
    Nonce(Address, Option<u64>),
    Code(Address, Option<ContractCode>),
    Slot(Address, H256, Option<H256>),
    Created(Address),
}

/// A journaled, access-recording overlay over a frozen [`StateView`] —
/// the speculative counterpart of [`StateDb`], mirroring its mutation
/// semantics (account auto-creation, no-op storage writes skipped,
/// zero-slot removal expressed as an explicit zero entry) entry for entry.
///
/// Reads arrive through `&self` trait methods, so the access set sits in a
/// `RefCell`; each instance lives entirely inside one worker.
struct SpecStorage<'a> {
    base: &'a StateView,
    balances: HashMap<Address, U256>,
    nonces: HashMap<Address, u64>,
    codes: HashMap<Address, ContractCode>,
    slots: HashMap<(Address, H256), H256>,
    created: HashSet<Address>,
    undo: Vec<SpecUndo>,
    access: RefCell<AccessSet>,
}

impl<'a> SpecStorage<'a> {
    fn new(base: &'a StateView) -> Self {
        Self {
            base,
            balances: HashMap::new(),
            nonces: HashMap::new(),
            codes: HashMap::new(),
            slots: HashMap::new(),
            created: HashSet::new(),
            undo: Vec::new(),
            access: RefCell::new(AccessSet::new()),
        }
    }

    fn read(&self, key: AccessKey) {
        self.access.borrow_mut().read(key);
    }

    fn wrote(&self, key: AccessKey) {
        self.access.borrow_mut().wrote(key);
    }

    fn exists(&self, address: &Address) -> bool {
        self.created.contains(address) || self.base.account(address).is_some()
    }

    fn ensure(&mut self, address: &Address) {
        if !self.exists(address) {
            self.created.insert(*address);
            self.undo.push(SpecUndo::Created(*address));
        }
    }

    fn set_balance(&mut self, address: &Address, balance: U256) {
        self.ensure(address);
        self.wrote(AccessKey::Balance(*address));
        let prev = self.balances.insert(*address, balance);
        self.undo.push(SpecUndo::Balance(*address, prev));
    }

    fn access_snapshot(&self) -> AccessSet {
        self.access.borrow().clone()
    }

    fn into_commit(self, receipt: Receipt, fee: U256) -> SpecCommit {
        SpecCommit {
            receipt,
            fee,
            created: {
                let mut created: Vec<Address> = self.created.into_iter().collect();
                created.sort();
                created
            },
            balances: self.balances.into_iter().collect::<BTreeMap<_, _>>().into_iter().collect(),
            nonces: self.nonces.into_iter().collect::<BTreeMap<_, _>>().into_iter().collect(),
            codes: self.codes.into_iter().collect::<BTreeMap<_, _>>().into_iter().collect(),
            slots: self.slots.into_iter().collect::<BTreeMap<_, _>>().into_iter().collect(),
        }
    }
}

impl Storage for SpecStorage<'_> {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        self.read(AccessKey::Slot(*address, *key));
        match self.slots.get(&(*address, *key)) {
            Some(value) => *value,
            None => self.base.storage_get(address, key),
        }
    }

    fn storage_set(&mut self, address: &Address, key: H256, value: H256) {
        // Mirrors `StateDb::storage_set`: the no-op check *reads* the slot
        // (recorded — it makes the write's survival depend on prior state).
        let prev = self.storage_get(address, &key);
        if prev == value {
            return;
        }
        self.ensure(address);
        self.wrote(AccessKey::Slot(*address, key));
        let overlay_prev = self.slots.insert((*address, key), value);
        self.undo.push(SpecUndo::Slot(*address, key, overlay_prev));
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        self.read(AccessKey::Code(*address));
        match self.codes.get(address) {
            Some(code) => code.clone(),
            None => self.base.code_of(address),
        }
    }

    fn balance_get(&self, address: &Address) -> U256 {
        self.read(AccessKey::Balance(*address));
        match self.balances.get(address) {
            Some(balance) => *balance,
            None => self.base.balance_of(address),
        }
    }

    fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        if !TxState::debit(self, from, value) {
            return false;
        }
        TxState::credit(self, to, value);
        true
    }

    fn checkpoint(&self) -> usize {
        self.undo.len()
    }

    fn revert_checkpoint(&mut self, checkpoint: usize) {
        while self.undo.len() > checkpoint {
            match self.undo.pop().expect("length checked") {
                SpecUndo::Balance(address, Some(prev)) => {
                    self.balances.insert(address, prev);
                }
                SpecUndo::Balance(address, None) => {
                    self.balances.remove(&address);
                }
                SpecUndo::Nonce(address, Some(prev)) => {
                    self.nonces.insert(address, prev);
                }
                SpecUndo::Nonce(address, None) => {
                    self.nonces.remove(&address);
                }
                SpecUndo::Code(address, Some(prev)) => {
                    self.codes.insert(address, prev);
                }
                SpecUndo::Code(address, None) => {
                    self.codes.remove(&address);
                }
                SpecUndo::Slot(address, key, Some(prev)) => {
                    self.slots.insert((address, key), prev);
                }
                SpecUndo::Slot(address, key, None) => {
                    self.slots.remove(&(address, key));
                }
                SpecUndo::Created(address) => {
                    self.created.remove(&address);
                }
            }
        }
    }

    fn note_env_read(&self, key: sereth_vm::exec::EnvRead) {
        // TIMESTAMP / NUMBER bypass storage, so without this hook a
        // speculation would look env-independent. Within a block the env
        // is constant (nothing marks these keys dirty); the cross-block
        // pipeline marks them dirty when its *predicted* env missed.
        self.read(match key {
            sereth_vm::exec::EnvRead::Timestamp => AccessKey::Timestamp,
            sereth_vm::exec::EnvRead::Number => AccessKey::Number,
        });
    }
}

impl TxState for SpecStorage<'_> {
    fn nonce_of(&self, address: &Address) -> u64 {
        self.read(AccessKey::Nonce(*address));
        match self.nonces.get(address) {
            Some(nonce) => *nonce,
            None => self.base.nonce_of(address),
        }
    }

    fn set_nonce(&mut self, address: &Address, nonce: u64) {
        self.ensure(address);
        self.wrote(AccessKey::Nonce(*address));
        let prev = self.nonces.insert(*address, nonce);
        self.undo.push(SpecUndo::Nonce(*address, prev));
    }

    fn set_code(&mut self, address: &Address, code: ContractCode) {
        self.ensure(address);
        self.wrote(AccessKey::Code(*address));
        let prev = self.codes.insert(*address, code);
        self.undo.push(SpecUndo::Code(*address, prev));
    }

    fn credit(&mut self, address: &Address, amount: U256) {
        let next = Storage::balance_get(self, address) + amount;
        self.set_balance(address, next);
    }

    fn debit(&mut self, address: &Address, amount: U256) -> bool {
        let current = Storage::balance_get(self, address);
        match current.checked_sub(amount) {
            Some(next) => {
                self.set_balance(address, next);
                true
            }
            None => false,
        }
    }
}

/// A speculation's surviving net effect, ready to merge: absolute values
/// per touched key, the accounts whose creation survived, the deferred
/// miner fee, and the receipt (index fixed up at merge time).
struct SpecCommit {
    receipt: Receipt,
    fee: U256,
    created: Vec<Address>,
    balances: Vec<(Address, U256)>,
    nonces: Vec<(Address, u64)>,
    codes: Vec<(Address, ContractCode)>,
    slots: Vec<((Address, H256), H256)>,
}

/// One speculated transaction: the commit (or the admission error the
/// speculation predicts) plus the exact access set it observed — including
/// the reads that *led* to an error, so a stale error re-executes too.
struct SpecOutcome {
    result: Result<SpecCommit, TxApplyError>,
    access: AccessSet,
}

/// Executes `tx` speculatively against the frozen `base`.
fn speculate(base: &StateView, env: &BlockEnv, tx: &Transaction) -> SpecOutcome {
    let mut overlay = SpecStorage::new(base);
    match apply_tx_inner(&mut overlay, env, tx, 0, false) {
        Ok((receipt, fee)) => {
            let access = overlay.access_snapshot();
            SpecOutcome { result: Ok(overlay.into_commit(receipt, fee)), access }
        }
        Err(error) => {
            let access = overlay.access_snapshot();
            SpecOutcome { result: Err(error), access }
        }
    }
}

/// Applies a validated commit to the live state (canonical-order merge
/// step) and returns the receipt with its final block index.
fn apply_commit(state: &mut StateDb, commit: &SpecCommit, miner: &Address, index: u32) -> Receipt {
    for address in &commit.created {
        if state.account(address).is_none() {
            // Materialize the account even if every field is default —
            // exactly what the sequential journal would have left behind.
            state.set_nonce(address, 0);
        }
    }
    for (address, balance) in &commit.balances {
        state.set_balance(address, *balance);
    }
    for (address, nonce) in &commit.nonces {
        state.set_nonce(address, *nonce);
    }
    for (address, code) in &commit.codes {
        state.set_code(address, code.clone());
    }
    for ((address, key), value) in &commit.slots {
        state.storage_set(address, *key, *value);
    }
    state.credit(miner, commit.fee);
    let mut receipt = commit.receipt.clone();
    receipt.index = index;
    receipt
}

/// The statically-known footprint of a plain value transfer (no code at
/// the destination), or `None` when the footprint is dynamic (contract
/// call or creation) and only execution can discover it.
fn static_footprint(tx: &Transaction, base: &StateView) -> Option<AccessSet> {
    let to = tx.to()?; // creation: dynamic (installs code, runs nothing — but address depends on nonce)
    if !base.code_of(&to).is_empty() {
        return None;
    }
    let sender = tx.sender();
    let mut footprint = AccessSet::new();
    footprint.read(AccessKey::Nonce(sender));
    footprint.wrote(AccessKey::Nonce(sender));
    footprint.read(AccessKey::Balance(sender));
    footprint.wrote(AccessKey::Balance(sender));
    footprint.read(AccessKey::Code(to));
    footprint.read(AccessKey::Balance(to));
    footprint.wrote(AccessKey::Balance(to));
    Some(footprint)
}

/// Decides which window transactions are worth speculating (`true`) and
/// which serialize to merge-time execution (`false`): nonce chains and
/// statically predicted write collisions.
fn plan_wave(chunk: &[Transaction], base: &StateView) -> Vec<bool> {
    let mut senders: HashSet<Address> = HashSet::new();
    let mut predicted_writes: HashSet<AccessKey> = HashSet::new();
    chunk
        .iter()
        .map(|tx| {
            if !senders.insert(tx.sender()) {
                return false; // second tx of a nonce chain in this wave
            }
            match static_footprint(tx, base) {
                Some(footprint) => {
                    // Serialized or not, the transfer's writes will land
                    // before later window-mates merge — predict them.
                    let conflict = footprint.reads.iter().any(|key| predicted_writes.contains(key));
                    predicted_writes.extend(footprint.writes.iter().copied());
                    !conflict // predicted read-after-write: execute in order
                }
                // Dynamic footprint: speculate and let merge validation
                // catch the (unpredictable) conflicts.
                None => true,
            }
        })
        .collect()
}

/// Runs speculation for one wave: `plan[i]`-selected transactions execute
/// concurrently on `threads` workers against the shared `base`.
fn speculate_wave(
    chunk: &[Transaction],
    plan: &[bool],
    base: &StateView,
    env: &BlockEnv,
    threads: usize,
) -> Vec<Option<SpecOutcome>> {
    if threads <= 1 {
        return chunk
            .iter()
            .zip(plan)
            .map(|(tx, speculate_it)| speculate_it.then(|| speculate(base, env, tx)))
            .collect();
    }
    let results: Vec<Mutex<Option<SpecOutcome>>> = chunk.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunk.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunk.len() {
                    break;
                }
                if !plan[i] {
                    continue;
                }
                let outcome = speculate(base, env, &chunk[i]);
                *results[i].lock().expect("speculation result lock") = Some(outcome);
            });
        }
    });
    results.into_iter().map(|slot| slot.into_inner().expect("workers joined")).collect()
}

/// Speculated outcomes carried *across a block boundary* by the
/// cross-block pipelined miner: while block `N` seals and imports, the
/// next block's candidates are speculated against `N`'s predicted
/// post-state and parked here; when block `N + 1` actually builds, the
/// wave driver consumes them in place of fresh speculation.
///
/// Validation is the same dirty-key rule waves use, over a wider scope:
/// a prefed outcome is reusable iff its observed reads miss
/// [`PipelineSink::invalidate`]'s seed (the keys that differ between the
/// predicted and actual pre-state, plus env keys when the predicted
/// timestamp or number missed) *and* every write merged earlier in the
/// block. A miss falls back to live execution — byte-equivalence never
/// depends on the prediction.
pub struct PipelineSink {
    outcomes: HashMap<H256, SpecOutcome>,
    /// Keys dirty *relative to the prespeculation base*: the seed from
    /// prediction validation plus every write this block has applied.
    dirty: HashSet<AccessKey>,
    reused: u64,
    invalidated: u64,
}

impl PipelineSink {
    /// Speculates `candidates` against `base` (the predicted pre-state of
    /// the next block) under `env` (the predicted block env), on
    /// `threads` workers. Only each sender's first candidate speculates —
    /// later nonces of a chain would read the earlier commit's writes and
    /// always invalidate.
    pub fn prespeculate(
        base: &StateView,
        env: &BlockEnv,
        candidates: &[Transaction],
        threads: usize,
    ) -> Self {
        let mut senders: HashSet<Address> = HashSet::new();
        let plan: Vec<bool> = candidates.iter().map(|tx| senders.insert(tx.sender())).collect();
        let results = speculate_wave(candidates, &plan, base, env, threads.max(1));
        let outcomes = candidates
            .iter()
            .zip(results)
            .filter_map(|(tx, result)| result.map(|outcome| (tx.hash(), outcome)))
            .collect();
        Self { outcomes, dirty: HashSet::new(), reused: 0, invalidated: 0 }
    }

    /// Seeds the dirty set with keys whose predicted values missed — the
    /// pre-state diff between the predicted and actual parent state, and
    /// the env keys ([`AccessKey::Timestamp`] / [`AccessKey::Number`])
    /// when the predicted block env missed. Call before the build; an
    /// empty seed means the prediction held wholesale.
    pub fn invalidate(&mut self, keys: impl IntoIterator<Item = AccessKey>) {
        self.dirty.extend(keys);
    }

    /// Number of prespeculated outcomes parked (before the build) or
    /// still unconsumed (after).
    pub fn pending(&self) -> usize {
        self.outcomes.len()
    }

    /// Prefed outcomes merged without re-execution.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Prefed outcomes whose reads hit the dirty set and re-executed
    /// live.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    fn take(&mut self, hash: &H256) -> Option<SpecOutcome> {
        self.outcomes.remove(hash)
    }
}

/// What the wave driver asks of its consumer: the policy half of the
/// algorithm. [`run_waves`] owns planning, speculation, in-order merging,
/// dirty-key validation, and adaptive degradation; the sink owns admission
/// and what happens to applied/failed transactions. The block builder's
/// sink enforces block limits and counts skips; the replay-validation sink
/// admits everything and aborts on the first error.
pub(crate) trait WaveSink {
    /// Pre-execution admission; `false` means the transaction does not
    /// enter the block at this point (never executed, never merged).
    fn admit(&mut self, tx: &Transaction) -> bool;
    /// The receipt index the next included transaction receives.
    fn next_index(&self) -> u32;
    /// A transaction applied (speculatively merged or executed live).
    fn include(&mut self, tx: &Transaction, receipt: Receipt);
    /// The transaction at absolute candidate position `index` failed to
    /// apply. Returns `false` to abort the whole run (replay validation);
    /// `true` to keep going (the builder records a skip).
    fn reject(&mut self, index: usize, error: TxApplyError) -> bool;
}

/// Drives `candidates` through plan/speculate/merge waves against `state`,
/// feeding results into `sink`. Byte-equivalent to the sequential loop
/// over the same sink. Returns the executor counters; stops early when the
/// sink aborts. Each wave's speculation and merge stages are recorded
/// into `telemetry`'s [`Phase::Speculate`] / [`Phase::Merge`] histograms
/// (free when the hub is disabled). See the module docs for the
/// algorithm.
pub(crate) fn run_waves<S: WaveSink>(
    state: &mut StateDb,
    env: &BlockEnv,
    candidates: &[Transaction],
    threads: usize,
    sink: &mut S,
    telemetry: &Telemetry,
) -> ExecStats {
    run_waves_with(state, env, candidates, threads, sink, telemetry, None)
}

/// [`run_waves`] with an optional cross-block [`PipelineSink`]: prefed
/// outcomes replace fresh speculation for their transactions and merge
/// through the same dirty-key validation, scoped to the whole block (the
/// prespeculation base is the block's pre-state, so every earlier write
/// in the block can invalidate, not just this wave's). Everything else —
/// planning, admission order, fallback execution, degradation — is
/// identical, which is what keeps the pipelined build byte-equivalent.
pub(crate) fn run_waves_with<S: WaveSink>(
    state: &mut StateDb,
    env: &BlockEnv,
    candidates: &[Transaction],
    threads: usize,
    sink: &mut S,
    telemetry: &Telemetry,
    mut pipeline: Option<&mut PipelineSink>,
) -> ExecStats {
    let threads = threads.max(1);
    let window = (threads * 8).clamp(8, 64);
    let mut stats = ExecStats::default();

    let mut speculating = true;
    let mut probing = false; // the wave after re-enabling runs narrow
    let mut probe_backoff = 1usize; // sequential windows before re-probing
    let mut sequential_windows = 0usize;
    let mut cursor = 0usize;
    while cursor < candidates.len() {
        let wave_window = if speculating && probing { (window / 4).max(4) } else { window };
        let chunk_base = cursor;
        let end = (cursor + wave_window).min(candidates.len());
        let chunk = &candidates[cursor..end];
        cursor = end;

        if !speculating {
            // Adaptive degradation: this window runs exactly like the
            // sequential builder (no overlays, no views) so a block of
            // pure conflicts costs what sequential execution costs.
            for (offset, tx) in chunk.iter().enumerate() {
                if !sink.admit(tx) {
                    continue;
                }
                stats.sequential_txs += 1;
                let journal_mark = state.checkpoint();
                match apply_transaction(state, env, tx, sink.next_index()) {
                    Ok(receipt) => {
                        // Degraded windows never consume prefed outcomes,
                        // but their writes must still invalidate later
                        // ones (the block-scoped dirty set).
                        if let Some(p) = pipeline.as_deref_mut() {
                            p.dirty.extend(state.journal_writes_since(journal_mark));
                        }
                        sink.include(tx, receipt);
                    }
                    Err(error) => {
                        if !sink.reject(chunk_base + offset, error) {
                            return stats;
                        }
                    }
                }
            }
            sequential_windows += 1;
            if sequential_windows >= probe_backoff {
                speculating = true; // probe the next window (narrow)
                probing = true;
                sequential_windows = 0;
            }
            continue;
        }

        stats.waves += 1;
        let base = state.view();
        let mut plan = plan_wave(chunk, &base);
        if let Some(p) = pipeline.as_deref_mut() {
            // Prefed transactions skip fresh speculation; their parked
            // outcome is validated (block-scoped) at merge instead.
            for (i, tx) in chunk.iter().enumerate() {
                if p.outcomes.contains_key(&tx.hash()) {
                    plan[i] = false;
                }
            }
        }
        let mut results =
            telemetry.time(Phase::Speculate, || speculate_wave(chunk, &plan, &base, env, threads));
        stats.speculated += results.iter().filter(|r| r.is_some()).count() as u64;

        // Merge in canonical order. `dirty` holds every key written to the
        // live state since `base` was frozen (plus the miner's balance,
        // whose fee credits are applied here rather than speculated).
        let mut dirty: HashSet<AccessKey> = HashSet::new();
        let mut wave_conflicts = 0usize;
        let aborted = telemetry.time(Phase::Merge, || {
            for (offset, tx) in chunk.iter().enumerate() {
                if !sink.admit(tx) {
                    continue;
                }
                // A fresh wave speculation validates against this wave's
                // dirty set (its base saw everything merged before the
                // wave); a prefed cross-block outcome validates against
                // the pipeline's block-scoped set (its base predates the
                // whole block, seeded with the prediction's misses).
                let spec = match results[offset].take() {
                    Some(spec) => Some((spec, false)),
                    None => match pipeline.as_deref_mut() {
                        Some(p) => p.take(&tx.hash()).map(|spec| (spec, true)),
                        None => None,
                    },
                };
                let valid = spec.as_ref().is_some_and(|(spec, prefed)| {
                    let scope = if *prefed {
                        &pipeline.as_deref().expect("prefed implies pipeline").dirty
                    } else {
                        &dirty
                    };
                    !spec.access.reads_hit(scope)
                });
                match spec {
                    Some((spec, prefed)) if valid => {
                        if prefed {
                            pipeline.as_deref_mut().expect("prefed implies pipeline").reused += 1;
                        }
                        match spec.result {
                            Ok(commit) => {
                                stats.fast_commits += 1;
                                let receipt = apply_commit(state, &commit, &env.miner, sink.next_index());
                                dirty.extend(spec.access.writes.iter().copied());
                                dirty.insert(AccessKey::Balance(env.miner));
                                if let Some(p) = pipeline.as_deref_mut() {
                                    p.dirty.extend(spec.access.writes.iter().copied());
                                    p.dirty.insert(AccessKey::Balance(env.miner));
                                }
                                sink.include(tx, receipt);
                            }
                            // A still-valid predicted apply error merges
                            // nothing. Its observed reads survived the dirty
                            // check, so it IS the error the sequential replay
                            // would hit here — safe to hand to the sink as-is.
                            Err(error) => {
                                if !sink.reject(chunk_base + offset, error) {
                                    return true;
                                }
                            }
                        }
                    }
                    invalid_or_planned => {
                        // Mis-speculation (observed reads no longer match the
                        // pre-state this transaction actually sees) or planned
                        // sequential execution. Either way: run the plain
                        // sequential path against the live state and feed its
                        // journaled write set into the dirty tracker.
                        match invalid_or_planned {
                            Some((_, prefed)) => {
                                stats.fallbacks += 1;
                                wave_conflicts += 1;
                                if prefed {
                                    pipeline.as_deref_mut().expect("prefed implies pipeline").invalidated +=
                                        1;
                                }
                            }
                            None => stats.sequential_txs += 1,
                        }
                        let journal_mark = state.checkpoint();
                        match apply_transaction(state, env, tx, sink.next_index()) {
                            Ok(receipt) => {
                                dirty.extend(state.journal_writes_since(journal_mark));
                                if let Some(p) = pipeline.as_deref_mut() {
                                    p.dirty.extend(state.journal_writes_since(journal_mark));
                                }
                                sink.include(tx, receipt);
                            }
                            Err(error) => {
                                if !sink.reject(chunk_base + offset, error) {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
            false
        });
        if aborted {
            return stats;
        }

        if wave_conflicts * 2 > chunk.len() {
            speculating = false;
            probe_backoff = if probing { (probe_backoff * 2).min(32) } else { 1 };
        } else {
            probing = false;
            probe_backoff = 1;
        }
    }
    stats
}

/// The block builder's [`WaveSink`]: admission against block limits,
/// skips counted, never aborts.
struct BuildSink<'a> {
    out: ExecOutcome,
    limits: &'a BlockLimits,
}

impl WaveSink for BuildSink<'_> {
    fn admit(&mut self, tx: &Transaction) -> bool {
        admit(&mut self.out, tx, self.limits)
    }

    fn next_index(&self) -> u32 {
        self.out.included.len() as u32
    }

    fn include(&mut self, tx: &Transaction, receipt: Receipt) {
        include(&mut self.out, tx, receipt);
    }

    fn reject(&mut self, _index: usize, _error: TxApplyError) -> bool {
        self.out.skipped += 1;
        true
    }
}

/// Executes `candidates` in waves against `state`, byte-equivalent to the
/// sequential builder loop: [`run_waves`] under the builder's sink.
pub(crate) fn execute_candidates(
    state: &mut StateDb,
    env: &BlockEnv,
    candidates: &[Transaction],
    limits: &BlockLimits,
    threads: usize,
    telemetry: &Telemetry,
) -> ExecOutcome {
    let mut sink = BuildSink { out: ExecOutcome::default(), limits };
    let stats = run_waves(state, env, candidates, threads, &mut sink, telemetry);
    let mut out = sink.out;
    out.stats = stats;
    out
}

/// [`execute_candidates`] consuming a cross-block [`PipelineSink`]:
/// identical admission, ordering, and output — prefed outcomes only
/// replace fresh speculation work, never change what merges.
pub(crate) fn execute_candidates_pipelined(
    state: &mut StateDb,
    env: &BlockEnv,
    candidates: &[Transaction],
    limits: &BlockLimits,
    threads: usize,
    telemetry: &Telemetry,
    pipeline: &mut PipelineSink,
) -> ExecOutcome {
    let mut sink = BuildSink { out: ExecOutcome::default(), limits };
    let stats = run_waves_with(state, env, candidates, threads, &mut sink, telemetry, Some(pipeline));
    let mut out = sink.out;
    out.stats = stats;
    out
}

/// The builder's admission checks, shared by every execution path —
/// sequential, speculated wave, and degraded window — so the
/// byte-equivalence invariant cannot drift between copies: block
/// transaction cap and gas capacity. Returns `false` (counting a skip)
/// when the transaction cannot enter the block at this point.
pub(crate) fn admit(out: &mut ExecOutcome, tx: &Transaction, limits: &BlockLimits) -> bool {
    if let Some(max) = limits.max_txs {
        if out.included.len() >= max {
            out.skipped += 1;
            return false;
        }
    }
    if out.gas_used + tx.gas_limit() > limits.gas_limit {
        out.skipped += 1;
        return false;
    }
    true
}

/// Accumulates an applied transaction into the outcome (shared with the
/// sequential builder, like [`admit`]).
pub(crate) fn include(out: &mut ExecOutcome, tx: &Transaction, receipt: Receipt) {
    out.gas_used += receipt.gas_used;
    out.receipts.push(receipt);
    out.included.push(tx.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, build_block_with_mode, BlockLimits};
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::block::BlockHeader;
    use sereth_types::transaction::TxPayload;
    use sereth_vm::asm::assemble;

    fn transfer(key: &SecretKey, nonce: u64, to: Address, value: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(to),
                value: U256::from(value),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn call_tx(key: &SecretKey, nonce: u64, to: Address) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(to),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            key,
        )
    }

    /// Increments its own slot 0 — the canonical conflicting workload.
    fn counter_code() -> Bytes {
        Bytes::from(assemble("PUSH1 0x00\nSLOAD\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP").unwrap())
    }

    fn genesis_with_counter(keys: &[SecretKey], counter: Address) -> (BlockHeader, StateDb) {
        let mut builder = GenesisBuilder::new();
        for key in keys {
            builder = builder.fund(key.address(), U256::from(10_000_000u64));
        }
        let genesis = builder.build();
        let mut state = genesis.state;
        state.set_code(&counter, ContractCode::Bytecode(counter_code()));
        state.clear_journal();
        (genesis.block.header, state)
    }

    #[test]
    fn disjoint_transfers_commit_without_fallbacks() {
        let keys: Vec<SecretKey> = (0..8).map(SecretKey::from_label).collect();
        let (parent, state) = genesis_with_counter(&keys, Address::from_low_u64(0xc0de));
        let candidates: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| transfer(key, 0, Address::from_low_u64(0x9000 + i as u64), 5))
            .collect();
        let sequential = build_block(
            &parent,
            &state,
            candidates.clone(),
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
        );
        let parallel = build_block_with_mode(
            &parent,
            &state,
            &candidates,
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
            &ExecMode::Parallel { threads: 4 },
        );
        assert_eq!(parallel.block.hash(), sequential.block.hash());
        assert_eq!(parallel.receipts, sequential.receipts);
        assert_eq!(parallel.post_state.state_root(), sequential.post_state.state_root());
        assert_eq!(parallel.stats.fallbacks, 0, "disjoint transfers never mis-speculate");
        assert_eq!(parallel.stats.fast_commits, 8);
    }

    #[test]
    fn mis_predicted_write_set_triggers_fallback_without_changing_the_result() {
        // Two contract calls whose (dynamic) write sets collide on the
        // counter's slot 0: the planner cannot see the conflict, the first
        // commits, the second's observed read set hits the dirty key and
        // must fall back — and the block still equals the sequential one.
        let keys: Vec<SecretKey> = (0..2).map(SecretKey::from_label).collect();
        let counter = Address::from_low_u64(0xc0de);
        let (parent, state) = genesis_with_counter(&keys, counter);
        let candidates = vec![call_tx(&keys[0], 0, counter), call_tx(&keys[1], 0, counter)];
        let sequential = build_block(
            &parent,
            &state,
            candidates.clone(),
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
        );
        let parallel = build_block_with_mode(
            &parent,
            &state,
            &candidates,
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
            &ExecMode::Parallel { threads: 2 },
        );
        assert_eq!(parallel.block.hash(), sequential.block.hash());
        assert_eq!(parallel.post_state.state_root(), sequential.post_state.state_root());
        assert!(parallel.stats.fallbacks >= 1, "the collision must be observed: {:?}", parallel.stats);
        // The counter really was incremented twice.
        use sereth_vm::exec::Storage as _;
        assert_eq!(parallel.post_state.storage_get(&counter, &H256::ZERO), H256::from_low_u64(2));
    }

    #[test]
    fn nonce_chains_serialize_by_plan_not_by_fallback() {
        let key = SecretKey::from_label(1);
        let (parent, state) = genesis_with_counter(std::slice::from_ref(&key), Address::from_low_u64(0xc0de));
        let candidates: Vec<Transaction> =
            (0..6).map(|n| transfer(&key, n, Address::from_low_u64(0x9000), 1)).collect();
        let sequential = build_block(
            &parent,
            &state,
            candidates.clone(),
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
        );
        let parallel = build_block_with_mode(
            &parent,
            &state,
            &candidates,
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
            &ExecMode::Parallel { threads: 4 },
        );
        assert_eq!(parallel.block.hash(), sequential.block.hash());
        assert_eq!(parallel.block.transactions.len(), 6);
        assert_eq!(parallel.stats.fallbacks, 0, "the chain is planned sequential, not mis-speculated");
        assert!(parallel.stats.sequential_txs >= 5);
    }

    #[test]
    fn auto_mode_degrades_to_sequential_on_single_cpu() {
        // The policy: one CPU (or one thread) means speculation is pure
        // overhead, so `auto` picks the sequential loop; real parallelism
        // keeps the requested thread count.
        assert_eq!(ExecMode::auto_for(4, 1), ExecMode::Sequential);
        assert_eq!(ExecMode::auto_for(1, 8), ExecMode::Sequential);
        assert_eq!(ExecMode::auto_for(4, 8), ExecMode::Parallel { threads: 4 });

        // A block built under the single-CPU auto mode never waves: the
        // stats must report the plain sequential execution path.
        let keys: Vec<SecretKey> = (0..4).map(SecretKey::from_label).collect();
        let (parent, state) = genesis_with_counter(&keys, Address::from_low_u64(0xc0de));
        let candidates: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| transfer(key, 0, Address::from_low_u64(0x9000 + i as u64), 1))
            .collect();
        let built = build_block_with_mode(
            &parent,
            &state,
            &candidates,
            Address::from_low_u64(0xaa),
            15_000,
            &BlockLimits::default(),
            &ExecMode::auto_for(4, 1),
        );
        assert_eq!(built.stats.waves, 0, "single-CPU auto mode must not speculate");
        assert_eq!(built.stats.speculated, 0);
        assert_eq!(built.block.transactions.len(), 4);
    }

    #[test]
    fn held_prediction_reuses_every_prespeculated_outcome() {
        use crate::builder::build_block_pipelined;
        let keys: Vec<SecretKey> = (0..8).map(SecretKey::from_label).collect();
        let (parent, state) = genesis_with_counter(&keys, Address::from_low_u64(0xc0de));
        let candidates: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| transfer(key, 0, Address::from_low_u64(0x9000 + i as u64), 5))
            .collect();
        let miner = Address::from_low_u64(0xaa);
        let limits = BlockLimits::default();
        let sequential = build_block(&parent, &state, candidates.clone(), miner, 15_000, &limits);
        // Prespeculate against exactly the state and env the build will
        // use (a held prediction); no keys are dirty.
        let env =
            BlockEnv { number: parent.number + 1, timestamp_ms: 15_000, gas_limit: limits.gas_limit, miner };
        let mut pipeline = PipelineSink::prespeculate(&state.view(), &env, &candidates, 2);
        assert_eq!(pipeline.pending(), 8);
        let built = build_block_pipelined(
            &parent,
            &state,
            &candidates,
            miner,
            15_000,
            &limits,
            2,
            &mut pipeline,
            Telemetry::off(),
        );
        assert_eq!(built.block.hash(), sequential.block.hash());
        assert_eq!(built.receipts, sequential.receipts);
        assert_eq!(built.post_state.state_root(), sequential.post_state.state_root());
        assert_eq!(pipeline.reused(), 8, "every outcome carries over: {:?}", built.stats);
        assert_eq!(pipeline.invalidated(), 0);
        assert_eq!(built.stats.speculated, 0, "no fresh speculation was needed");
        assert_eq!(built.stats.fast_commits, 8);
    }

    #[test]
    fn mispredicted_state_invalidates_only_the_dirty_candidates() {
        use crate::builder::build_block_pipelined;
        let keys: Vec<SecretKey> = (0..8).map(SecretKey::from_label).collect();
        let (parent, predicted) = genesis_with_counter(&keys, Address::from_low_u64(0xc0de));
        let candidates: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| transfer(key, 0, Address::from_low_u64(0x9000 + i as u64), 5))
            .collect();
        let miner = Address::from_low_u64(0xaa);
        let limits = BlockLimits::default();
        let env =
            BlockEnv { number: parent.number + 1, timestamp_ms: 15_000, gas_limit: limits.gas_limit, miner };
        let mut pipeline = PipelineSink::prespeculate(&predicted.view(), &env, &candidates, 2);
        // The prediction missed: sender 0's balance changed under us
        // (a gossip block landed). Seed the diff; only that sender's
        // speculation dies.
        let mut actual = predicted.clone();
        actual.credit(&keys[0].address(), U256::from(1u64));
        actual.clear_journal();
        pipeline.invalidate(actual.view().diff_access_keys(&predicted.view()));
        let sequential = build_block(&parent, &actual, candidates.clone(), miner, 15_000, &limits);
        let built = build_block_pipelined(
            &parent,
            &actual,
            &candidates,
            miner,
            15_000,
            &limits,
            2,
            &mut pipeline,
            Telemetry::off(),
        );
        assert_eq!(built.block.hash(), sequential.block.hash());
        assert_eq!(built.post_state.state_root(), sequential.post_state.state_root());
        assert_eq!(pipeline.invalidated(), 1, "only the dirty sender replans: {:?}", built.stats);
        assert_eq!(pipeline.reused(), 7);
    }

    #[test]
    fn mispredicted_timestamp_invalidates_time_reading_outcomes() {
        use crate::builder::build_block_pipelined;
        // A contract that stores TIMESTAMP into slot 0 — its outcome is
        // wrong whenever the predicted timestamp missed, which only the
        // env-read tracking can see (the read bypasses storage).
        let keys: Vec<SecretKey> = (0..2).map(SecretKey::from_label).collect();
        let clock = Address::from_low_u64(0xc10c);
        let mut builder = GenesisBuilder::new();
        for key in &keys {
            builder = builder.fund(key.address(), U256::from(10_000_000u64));
        }
        let genesis = builder.build();
        let parent = genesis.block.header;
        let mut state = genesis.state;
        state.set_code(
            &clock,
            ContractCode::Bytecode(Bytes::from(assemble("TIMESTAMP\nPUSH1 0x00\nSSTORE\nSTOP").unwrap())),
        );
        state.clear_journal();
        // One clock call, one plain transfer.
        let candidates =
            vec![call_tx(&keys[0], 0, clock), transfer(&keys[1], 0, Address::from_low_u64(0x9000), 5)];
        let miner = Address::from_low_u64(0xaa);
        let limits = BlockLimits::default();
        // Predicted timestamp 15_000; the block actually seals at 16_000.
        let predicted_env =
            BlockEnv { number: parent.number + 1, timestamp_ms: 15_000, gas_limit: limits.gas_limit, miner };
        let mut pipeline = PipelineSink::prespeculate(&state.view(), &predicted_env, &candidates, 2);
        pipeline.invalidate([AccessKey::Timestamp]);
        let sequential = build_block(&parent, &state, candidates.clone(), miner, 16_000, &limits);
        let built = build_block_pipelined(
            &parent,
            &state,
            &candidates,
            miner,
            16_000,
            &limits,
            2,
            &mut pipeline,
            Telemetry::off(),
        );
        assert_eq!(built.block.hash(), sequential.block.hash());
        assert_eq!(built.post_state.state_root(), sequential.post_state.state_root());
        use sereth_vm::exec::Storage as _;
        assert_eq!(
            built.post_state.storage_get(&clock, &H256::ZERO),
            H256::from_low_u64(16_000),
            "the sealed timestamp, not the predicted one, must be stored"
        );
        assert_eq!(pipeline.invalidated(), 1, "the clock call replans");
        assert_eq!(pipeline.reused(), 1, "the transfer carries over");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ExecStats { waves: 1, speculated: 2, fast_commits: 3, fallbacks: 4, sequential_txs: 5 };
        let b = ExecStats { waves: 10, speculated: 20, fast_commits: 30, fallbacks: 40, sequential_txs: 50 };
        a.absorb(&b);
        assert_eq!(
            a,
            ExecStats { waves: 11, speculated: 22, fast_commits: 33, fallbacks: 44, sequential_txs: 55 }
        );
    }

    #[test]
    fn stats_cells_accumulate_share_and_read_without_locks() {
        let telemetry = Telemetry::enabled();
        let cells = ExecStatsCells::register(&telemetry, "exec");
        let shared = cells.clone(); // clones share the same registry cells
        cells.absorb(&ExecStats {
            waves: 1,
            speculated: 2,
            fast_commits: 3,
            fallbacks: 4,
            sequential_txs: 5,
        });
        shared.absorb(&ExecStats { waves: 1, ..ExecStats::default() });
        assert_eq!(cells.snapshot().waves, 2);
        assert_eq!(shared.snapshot().speculated, 2);
        // The same totals surface in the registry snapshot under the prefix.
        assert_eq!(telemetry.snapshot().counters["exec.sequential_txs"], 5);

        let disabled = ExecStatsCells::register(&Telemetry::disabled(), "exec");
        disabled.absorb(&ExecStats { waves: 9, ..ExecStats::default() });
        assert_eq!(disabled.snapshot(), ExecStats::default(), "disabled hubs record nothing");
    }
}
