//! The incrementally-maintained candidate indexes of the sharded
//! [`TxPool`](super::TxPool).
//!
//! The index is an *internal subscriber* to the pool's own seq-stamped
//! [`PoolEvent`](super::PoolEvent) stream — the same maintenance signal
//! the `sereth-raa` view service consumes externally. Ingestion threads
//! only touch their sender's shard and the event log; the index catches
//! up lazily (under its own lock) when a miner asks for an ordering, so
//! client submission never serializes behind the ordering pass.
//!
//! Two indexes are maintained:
//!
//! * **ready index** — per-sender nonce chains mirrored from the events
//!   and an `all` set ordering every entry by `(gas_price, arrival)` (its
//!   minimum doubles as the eviction path's "globally cheapest" in
//!   O(log n)). A fee-priority read is a lazy merge: walk `all`
//!   descending, keep a per-sender nonce cursor seeded from the caller's
//!   `base_nonce` on first touch (so stale and gapped entries are skipped
//!   exactly, not deferred to the next `prune_stale`), promote each
//!   emitted sender's next nonce into a side heap when the walk has
//!   already passed it, and always take the larger of (next walk entry,
//!   heap top) — `O(k log k)` for `k` returned candidates instead of the
//!   rescan's `O(k · senders)`.
//! * **market index** — per-contract arrival-ordered `set`/`buy` entries
//!   with their [`Fpv`] pre-parsed once at insert (exactly what
//!   `RaaService` does per event), so semantic/PWV miners stop re-decoding
//!   every entry's calldata per block.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use sereth_core::fpv::Fpv;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::transaction::Transaction;
use sereth_vm::abi::Selector;

use super::{MarketSpec, PoolEvent};

/// Which market call a [`MarketEntry`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketKind {
    /// A `set` — the managed write that advances the mark chain.
    Set,
    /// A `buy` — a dependent read whose offer words reference a mark.
    Buy,
}

/// One pre-parsed market transaction from the per-contract index.
#[derive(Debug, Clone)]
pub struct MarketEntry {
    /// The pooled transaction.
    pub tx: Transaction,
    /// Its global arrival sequence number.
    pub arrival_seq: u64,
    /// `set` or `buy`, by calldata selector.
    pub kind: MarketKind,
    /// The FPV words, when the calldata carried all three (`None` for a
    /// selector-matched but malformed payload — HMS filters those the
    /// same way whether or not they are indexed).
    pub fpv: Option<Fpv>,
}

impl MarketEntry {
    /// Classifies `tx` against a market's selectors: `Some` iff it calls
    /// a contract with the `set` or `buy` selector. The single
    /// classification rule shared by index maintenance, the pool's rescan
    /// fallback, and the miners' rescan baselines, so the paths cannot
    /// drift.
    pub fn classify(
        tx: &Transaction,
        arrival_seq: u64,
        set_selector: Selector,
        buy_selector: Selector,
    ) -> Option<Self> {
        tx.to()?;
        let input = tx.input();
        if input.len() < 4 {
            return None;
        }
        let kind = if input[..4] == set_selector {
            MarketKind::Set
        } else if input[..4] == buy_selector {
            MarketKind::Buy
        } else {
            return None;
        };
        Some(Self { tx: tx.clone(), arrival_seq, kind, fpv: Fpv::from_calldata(input) })
    }
}

/// One transaction as the ready index stores it.
#[derive(Debug, Clone)]
struct IndexedTx {
    tx: Transaction,
    arrival_seq: u64,
}

impl IndexedTx {
    /// `(gas_price, !arrival_seq)`: ordering ascending by this key and
    /// walking backwards yields price-descending, arrival-ascending — the
    /// fee-priority order with the miner's arrival tie-break.
    fn rank(&self) -> (u64, u64) {
        (self.tx.gas_price(), !self.arrival_seq)
    }
}

/// The candidate indexes (see module docs). Lives behind the pool's
/// `index` mutex; all mutation goes through [`CandidateIndex::apply_event`]
/// or [`CandidateIndex::rebuild`], driven by the event cursor.
#[derive(Debug, Default)]
pub(super) struct CandidateIndex {
    /// `true` once the index has subscribed to the event stream (lazily,
    /// on the first indexed read — unwatched pools pay nothing).
    pub subscribed: bool,
    /// Next event sequence number to apply.
    pub cursor: u64,
    senders: HashMap<Address, BTreeMap<u64, IndexedTx>>,
    /// Every entry, keyed `(price, !arrival, sender, nonce)`; `first()` is
    /// the eviction victim (cheapest, newest-arrival tie-break).
    all: BTreeSet<(u64, u64, Address, u64)>,
    by_hash: HashMap<H256, (Address, u64)>,
    markets: HashMap<Address, BTreeMap<u64, MarketEntry>>,
    market_by_hash: HashMap<H256, (Address, u64)>,
}

impl CandidateIndex {
    /// Drops all state and re-ingests a full pool snapshot (entries must
    /// be in arrival order).
    pub fn rebuild<'a>(
        &mut self,
        entries: impl IntoIterator<Item = &'a super::PoolEntry>,
        market: Option<&MarketSpec>,
    ) {
        self.senders.clear();
        self.all.clear();
        self.by_hash.clear();
        self.markets.clear();
        self.market_by_hash.clear();
        for entry in entries {
            self.insert(&entry.tx, entry.arrival_seq, market);
        }
    }

    /// Applies one pool event.
    pub fn apply_event(&mut self, event: &PoolEvent, market: Option<&MarketSpec>) {
        match event {
            PoolEvent::Inserted { tx, arrival_seq } => self.insert(tx, *arrival_seq, market),
            PoolEvent::Removed { hash, .. } | PoolEvent::Committed { hash, .. } => self.remove(hash),
        }
    }

    fn insert(&mut self, tx: &Transaction, arrival_seq: u64, market: Option<&MarketSpec>) {
        let sender = tx.sender();
        let nonce = tx.nonce();
        // The event stream emits `Removed` before a replacement's
        // `Inserted`, so an occupied slot here would be a missed event;
        // evicting it through the full removal path (head promotion
        // included) keeps the index self-healing either way.
        let stale_hash =
            self.senders.get(&sender).and_then(|chain| chain.get(&nonce)).map(|stale| stale.tx.hash());
        if let Some(stale_hash) = stale_hash {
            self.remove(&stale_hash);
        }
        let chain = self.senders.entry(sender).or_default();
        let indexed = IndexedTx { tx: tx.clone(), arrival_seq };
        let (price, rev) = indexed.rank();
        chain.insert(nonce, indexed);
        self.by_hash.insert(tx.hash(), (sender, nonce));
        self.all.insert((price, rev, sender, nonce));
        if let (Some(spec), Some(to)) = (market, tx.to()) {
            if let Some(entry) = MarketEntry::classify(tx, arrival_seq, spec.set_selector, spec.buy_selector)
            {
                self.markets.entry(to).or_default().insert(arrival_seq, entry);
                self.market_by_hash.insert(tx.hash(), (to, arrival_seq));
            }
        }
    }

    fn remove(&mut self, hash: &H256) {
        if let Some((sender, nonce)) = self.by_hash.remove(hash) {
            if let Some(chain) = self.senders.get_mut(&sender) {
                if let Some(entry) = chain.remove(&nonce) {
                    let (price, rev) = entry.rank();
                    self.all.remove(&(price, rev, sender, nonce));
                }
                if chain.is_empty() {
                    self.senders.remove(&sender);
                }
            }
        }
        if let Some((contract, seq)) = self.market_by_hash.remove(hash) {
            if let Some(entries) = self.markets.get_mut(&contract) {
                entries.remove(&seq);
                if entries.is_empty() {
                    self.markets.remove(&contract);
                }
            }
        }
    }

    /// The globally cheapest entry's `(gas_price, sender, nonce)` — the
    /// capacity-eviction victim (cheapest price, newest arrival on ties,
    /// exactly the old rescan's `min_by_key`).
    pub fn cheapest(&self) -> Option<(u64, Address, u64)> {
        self.all.first().map(|&(price, _, sender, nonce)| (price, sender, nonce))
    }

    /// All indexed `set`/`buy` entries of `contract`, arrival-ordered.
    pub fn market(&self, contract: &Address) -> Vec<MarketEntry> {
        self.markets.get(contract).map(|entries| entries.values().cloned().collect()).unwrap_or_default()
    }

    /// The fee-priority ready order (see module docs): at most `limit`
    /// transactions, price-descending with arrival tie-break, nonce-exact
    /// against the caller's `base_nonce` — stale entries (nonce below
    /// base) and gapped entries (nonce above the sender's next selectable
    /// nonce) are skipped in place, so the result equals the full rescan's
    /// for every pool shape and every limit, including pools whose
    /// `prune_stale` has not yet caught up with the latest import.
    ///
    /// Why the walk is exact: it merges two price-descending streams —
    /// the `all` set walked backwards and a heap of *promoted successors*
    /// (the next nonce of each emitted sender, pushed only when the walk
    /// has already passed its key, otherwise the walk itself will reach
    /// it). At every step each sender's next selectable entry (its cursor
    /// nonce) is either ahead of the walk or in the heap, so taking the
    /// larger of (heap top, next walk entry) and skipping cursor
    /// mismatches always emits the globally best selectable entry — the
    /// same greedy choice the rescan makes.
    pub fn ready_by_price(&self, base_nonce: &dyn Fn(&Address) -> u64, limit: usize) -> Vec<Transaction> {
        let mut out = Vec::new();
        let mut walk = self.all.iter().rev().peekable();
        // Promoted nonce-chain successors, keyed like `all`.
        let mut heap: BinaryHeap<(u64, u64, Address, u64)> = BinaryHeap::new();
        // Each sender's next selectable nonce, seeded from `base_nonce`
        // the first time the walk meets the sender.
        let mut cursors: HashMap<Address, u64> = HashMap::new();
        while out.len() < limit {
            let from_heap = match (heap.peek(), walk.peek()) {
                (Some(&(hp, hr, _, _)), Some(&&(wp, wr, _, _))) => (hp, hr) > (wp, wr),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (sender, nonce) = if from_heap {
                let (_, _, sender, nonce) = heap.pop().expect("peeked above");
                (sender, nonce)
            } else {
                let &(_, _, sender, nonce) = walk.next().expect("peeked above");
                let cursor = *cursors.entry(sender).or_insert_with(|| base_nonce(&sender));
                if nonce != cursor {
                    // Below: stale (already mined, or emitted earlier via
                    // the heap). Above: blocked behind a gap or a cheaper
                    // predecessor the walk has not reached yet — if that
                    // predecessor is emitted later, this entry re-enters
                    // through the successor heap.
                    continue;
                }
                (sender, nonce)
            };
            let chain = self.senders.get(&sender).expect("emitted sender has a chain");
            let entry = chain.get(&nonce).expect("emitted nonce is indexed");
            out.push(entry.tx.clone());
            if let Some(next_nonce) = nonce.checked_add(1) {
                cursors.insert(sender, next_nonce);
                if let Some(next) = chain.get(&next_nonce) {
                    let key = (next.rank().0, next.rank().1, sender, next_nonce);
                    // Promote only entries the walk already passed; the
                    // walk reaches the rest on its own.
                    let passed = match walk.peek() {
                        Some(&&ahead) => key > ahead,
                        None => true,
                    };
                    if passed {
                        heap.push(key);
                    }
                }
            }
        }
        out
    }
}
