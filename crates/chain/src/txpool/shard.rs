//! Internal storage units of the sharded [`TxPool`](super::TxPool): the
//! per-sender shard maps and the seq-stamped event log.

use std::collections::{BTreeMap, HashMap, VecDeque};

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;

use super::{PoolEntry, PoolEvent, PoolEventRecord};

/// One lock's worth of pool storage. Senders are routed to shards by
/// address hash, so a sender's whole nonce queue — and therefore every
/// replacement/duplicate decision about it — lives under a single lock.
/// A transaction hash commits to its sender, so `by_hash` can live in the
/// sender's shard too: duplicate checks never need a second lock.
#[derive(Debug, Clone, Default)]
pub(super) struct Shard {
    /// Per-sender nonce-ordered queues.
    pub by_sender: HashMap<Address, BTreeMap<u64, PoolEntry>>,
    /// Hash → (sender, nonce) for this shard's transactions.
    pub by_hash: HashMap<H256, (Address, u64)>,
}

/// The pool's global event stream: a bounded buffer of
/// [`PoolEventRecord`]s plus the two monotone counters every mutation
/// stamps (event seq, arrival seq). Guarded by its own short-hold mutex —
/// mutations in different shards serialize only through this append.
#[derive(Debug, Clone, Default)]
pub(super) struct EventLog {
    /// Buffered events, oldest first.
    pub buffer: VecDeque<PoolEventRecord>,
    /// Sequence number the next event will carry.
    pub next_seq: u64,
    /// Arrival sequence number the next inserted transaction will carry.
    pub arrival_counter: u64,
    /// Buffering starts only once someone subscribes (the external
    /// [`TxPool::subscribe`](super::TxPool::subscribe) or the pool's own
    /// candidate index); unwatched pools pay nothing beyond the counter.
    pub enabled: bool,
}

impl EventLog {
    /// Records the event built by `make` if anyone is buffering; always
    /// advances the sequence number. Taking a closure keeps unwatched
    /// pools from even constructing (and cloning into) the event.
    pub fn emit_with(&mut self, capacity: usize, make: impl FnOnce() -> PoolEvent) {
        if self.enabled && capacity > 0 {
            while self.buffer.len() >= capacity {
                self.buffer.pop_front();
            }
            self.buffer.push_back(PoolEventRecord { seq: self.next_seq, event: make() });
        }
        self.next_seq += 1;
    }
}
