//! The pending-transaction pool (TxPool), sharded and incrementally
//! indexed.
//!
//! "Hash-Mark-Set takes advantage of an underutilized communication channel
//! among the peers on a blockchain, the transaction pool" (paper §III-C).
//! The pool keeps per-sender nonce-ordered queues (miners must respect nonce
//! order, §II-C) and tracks arrival order, which defines the *real time
//! order* of the concurrent history (§II-B) that HMS snapshots.
//!
//! # Architecture
//!
//! Three independently locked layers, so that client submission from many
//! users never serializes behind a miner's ordering pass:
//!
//! * **shards** — [`PoolConfig::shards`] sender-keyed locks holding the
//!   nonce queues. An insert touches exactly one shard (a transaction
//!   hash commits to its sender, so even duplicate detection is local).
//! * **event log** — one short-hold mutex stamping every mutation with a
//!   dense sequence number and buffering it for subscribers (the
//!   `sereth-raa` view service externally, the candidate index
//!   internally). This is the only cross-shard serialization point of
//!   the write path, and its hold is a counter bump plus one push.
//! * **candidate index** — fee-priority ready chains and per-contract
//!   pre-parsed market entries (see the `index` module), maintained by draining
//!   the event stream lazily under its own lock. Ordering reads are
//!   `O(k)` in the number of returned candidates instead of `O(pool)`
//!   rescans; a cursor that falls out of the bounded event buffer
//!   triggers a counted full rebuild.
//!
//! Lock order (outer to inner): `index` → shards (ascending) → `events`.
//! Every path acquires along that order, never against it.

mod index;
mod shard;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_telemetry::{Counter, Phase, Telemetry};
use sereth_types::transaction::Transaction;
use sereth_types::SimTime;
use sereth_vm::abi::Selector;

pub use index::{MarketEntry, MarketKind};

use index::CandidateIndex;
use shard::{EventLog, Shard};

/// A pool mutation, as observed by subscribers (the `sereth-raa` view
/// service and the pool's own candidate index consume these to maintain
/// their caches incrementally instead of re-reading the whole pool).
// Inserted dominates the size (it carries the transaction) and also
// dominates the event count, so boxing it would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolEvent {
    /// A transaction entered the pool.
    Inserted {
        /// The pooled transaction.
        tx: Transaction,
        /// Its global arrival sequence number.
        arrival_seq: u64,
    },
    /// A transaction left the pool without committing: replaced by a
    /// higher-priced same-nonce transaction, evicted at capacity, pruned
    /// as nonce-stale, or removed explicitly.
    Removed {
        /// Hash of the departed transaction.
        hash: H256,
        /// Its callee, kept so subscribers indexing by contract can
        /// route the removal without a global hash index.
        to: Option<Address>,
    },
    /// A transaction left the pool because an imported block included it
    /// — "right after publication the pool no longer contains marked
    /// transactions" (paper §V-C).
    Committed {
        /// Hash of the committed transaction.
        hash: H256,
        /// Its callee (see [`PoolEvent::Removed::to`]).
        to: Option<Address>,
    },
}

/// A [`PoolEvent`] stamped with its position in the pool's event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolEventRecord {
    /// Monotone sequence number (dense, starting at 0).
    pub seq: u64,
    /// The event.
    pub event: PoolEvent,
}

/// A subscriber's cursor fell behind the bounded event buffer; the
/// subscriber must resynchronise from a full pool snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLag {
    /// The oldest sequence number still buffered.
    pub oldest_buffered: u64,
    /// The cursor to resume from after resynchronising.
    pub resume_cursor: u64,
}

impl core::fmt::Display for EventLag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "pool event subscriber lagged: oldest buffered seq is {}, resume from {}",
            self.oldest_buffered, self.resume_cursor
        )
    }
}

impl std::error::Error for EventLag {}

/// Why the pool declined a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The exact transaction is already pooled.
    Duplicate,
    /// Another transaction with the same sender and nonce is pooled at an
    /// equal-or-better price; Ethereum requires a price bump to replace.
    ReplacementUnderpriced,
    /// The pool is full and the transaction's price does not beat the
    /// cheapest pooled transaction.
    PoolFull,
    /// The transaction's nonce is already below the sender's account nonce.
    Stale,
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Duplicate => write!(f, "transaction already pooled"),
            Self::ReplacementUnderpriced => write!(f, "replacement transaction underpriced"),
            Self::PoolFull => write!(f, "pool is full"),
            Self::Stale => write!(f, "transaction nonce already consumed"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A pooled transaction together with its arrival bookkeeping.
#[derive(Debug, Clone)]
pub struct PoolEntry {
    /// The transaction itself.
    pub tx: Transaction,
    /// Global arrival sequence number (defines real-time order).
    pub arrival_seq: u64,
    /// Simulated arrival time.
    pub arrival_time: SimTime,
}

/// The selectors of a managed market, configured so the pool can
/// pre-parse `set`/`buy` calldata once at insert and serve semantic/PWV
/// miners from the per-contract index (see
/// [`TxPool::market_snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketSpec {
    /// The managed-write selector (`set`).
    pub set_selector: Selector,
    /// The dependent-read selector (`buy`).
    pub buy_selector: Selector,
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum number of pooled transactions. Exact under single-threaded
    /// use; under concurrent submission the bound can be transiently
    /// exceeded by up to one entry per in-flight insert (the admission
    /// check and the admit are not atomic across shards), and the
    /// at-capacity eviction path squeezes the excess back out.
    pub capacity: usize,
    /// Percentage price bump required to replace a same-nonce transaction.
    pub replace_bump_pct: u64,
    /// Number of [`PoolEvent`]s retained for subscribers; a cursor older
    /// than the buffer gets [`EventLag`] and must resynchronise.
    pub event_capacity: usize,
    /// Number of sender-keyed ingestion locks (clamped to at least 1).
    /// More shards, less submission contention; ordering output is
    /// invariant in the shard count.
    pub shards: usize,
    /// Market selectors to pre-parse into the per-contract index; `None`
    /// serves [`TxPool::market_snapshot`] by (counted) rescan instead.
    pub market: Option<MarketSpec>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { capacity: 4096, replace_bump_pct: 10, event_capacity: 16_384, shards: 16, market: None }
    }
}

/// Monotone counters describing how the pool is being driven — the
/// observable face of the sharded feed (see [`TxPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Ordering/market reads served from the incremental index.
    pub index_hits: u64,
    /// Full index rebuilds: the lazy first subscription, explicit
    /// [`TxPool::rebuild_index`] calls, and event-buffer overflows
    /// ([`EventLag`] on the internal cursor).
    pub index_rebuilds: u64,
    /// Ready reads that fell back to a full rescan because a sender held
    /// a stale nonce prefix (pool not yet pruned against the caller's
    /// state), plus explicit `*_rescan` oracle calls.
    pub rescans: u64,
    /// Market snapshots served by walking the pool because the requested
    /// selectors are not the configured [`PoolConfig::market`].
    pub market_rescans: u64,
    /// Pool events the index applied incrementally.
    pub events_applied: u64,
    /// Times an ingestion path found its shard lock held and had to wait.
    pub shard_contention: u64,
}

/// The registry cells behind [`PoolStats`], named `pool.*` in the
/// telemetry registry so a node-wide snapshot carries them for free.
#[derive(Debug, Clone)]
struct PoolCounters {
    index_hits: Counter,
    index_rebuilds: Counter,
    rescans: Counter,
    market_rescans: Counter,
    events_applied: Counter,
    shard_contention: Counter,
}

impl PoolCounters {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            index_hits: telemetry.counter("pool.index_hits"),
            index_rebuilds: telemetry.counter("pool.index_rebuilds"),
            rescans: telemetry.counter("pool.rescans"),
            market_rescans: telemetry.counter("pool.market_rescans"),
            events_applied: telemetry.counter("pool.events_applied"),
            shard_contention: telemetry.counter("pool.shard_contention"),
        }
    }
}

/// The pending transaction pool (see module docs for the architecture).
///
/// All methods take `&self`: the pool is internally synchronized and is
/// shared across submission threads and the miner via `Arc`.
pub struct TxPool {
    config: PoolConfig,
    /// Outermost lock (see module docs for the lock order).
    index: Mutex<CandidateIndex>,
    shards: Box<[Mutex<Shard>]>,
    events: Mutex<EventLog>,
    len: AtomicUsize,
    stats: PoolCounters,
    telemetry: Arc<Telemetry>,
}

impl Default for TxPool {
    fn default() -> Self {
        Self::with_config(PoolConfig::default())
    }
}

impl Clone for TxPool {
    /// Snapshot clone: entries, event buffer, and counters are copied
    /// under all locks; the clone's candidate index starts cold and
    /// rebuilds itself on its first ordering read.
    fn clone(&self) -> Self {
        let guards: Vec<MutexGuard<'_, Shard>> = self.shards.iter().map(|m| m.lock()).collect();
        let events = self.events.lock();
        // The clone gets a fresh hub: counters restart at zero rather
        // than sharing (or double-counting into) the original's cells.
        let telemetry = Arc::new(Telemetry::enabled());
        Self {
            config: self.config.clone(),
            index: Mutex::new(CandidateIndex::default()),
            shards: guards.iter().map(|g| Mutex::new((**g).clone())).collect(),
            events: Mutex::new(events.clone()),
            len: AtomicUsize::new(self.len.load(Ordering::Relaxed)),
            stats: PoolCounters::register(&telemetry),
            telemetry,
        }
    }
}

impl core::fmt::Debug for TxPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TxPool")
            .field("len", &self.len())
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .finish()
    }
}

impl TxPool {
    /// An empty pool with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with the given configuration (`config.shards` is
    /// clamped to at least 1) and its own (enabled) telemetry hub.
    pub fn with_config(config: PoolConfig) -> Self {
        Self::with_telemetry(config, Arc::new(Telemetry::enabled()))
    }

    /// An empty pool recording into a shared `telemetry` hub — what a
    /// node does so `pool.*` counters and admission latencies land in
    /// the node-wide registry. With a disabled hub, [`TxPool::stats`]
    /// reads as zero and inserts skip the clock.
    pub fn with_telemetry(config: PoolConfig, telemetry: Arc<Telemetry>) -> Self {
        let shard_count = config.shards.max(1);
        Self {
            config,
            index: Mutex::new(CandidateIndex::default()),
            shards: (0..shard_count).map(|_| Mutex::new(Shard::default())).collect(),
            events: Mutex::new(EventLog::default()),
            len: AtomicUsize::new(0),
            stats: PoolCounters::register(&telemetry),
            telemetry,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Number of pooled transactions.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            index_hits: self.stats.index_hits.get(),
            index_rebuilds: self.stats.index_rebuilds.get(),
            rescans: self.stats.rescans.get(),
            market_rescans: self.stats.market_rescans.get(),
            events_applied: self.stats.events_applied.get(),
            shard_contention: self.stats.shard_contention.get(),
        }
    }

    fn shard_of(&self, sender: &Address) -> usize {
        (sereth_crypto::hash::fnv1a_64(sender.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Locks one shard, counting the acquisition as contended when the
    /// lock was not immediately available (the "submission blocked"
    /// signal [`PoolStats::shard_contention`] reports).
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        match self.shards[index].try_lock() {
            Some(guard) => guard,
            None => {
                self.stats.shard_contention.inc();
                self.shards[index].lock()
            }
        }
    }

    /// Locks every shard in ascending order (the snapshot paths).
    fn lock_all_shards(&self) -> Vec<MutexGuard<'_, Shard>> {
        self.shards.iter().map(|m| m.lock()).collect()
    }

    /// `true` if the pool holds the given transaction hash.
    pub fn contains(&self, hash: &H256) -> bool {
        self.shards.iter().any(|m| m.lock().by_hash.contains_key(hash))
    }

    // ------------------------------------------------------------------
    // Event stream
    // ------------------------------------------------------------------

    /// The cursor a new event subscriber should start from (the sequence
    /// number the *next* event will carry).
    pub fn event_cursor(&self) -> u64 {
        self.events.lock().next_seq
    }

    /// Turns on event buffering and returns the cursor to read from.
    /// Until this is called (and no indexed ordering read has happened)
    /// the pool only advances its sequence number — mutations cost
    /// nothing extra and [`TxPool::events_since`] reports [`EventLag`]
    /// for any elapsed history, forcing a snapshot rebuild.
    pub fn subscribe(&self) -> u64 {
        let mut events = self.events.lock();
        events.enabled = true;
        events.next_seq
    }

    /// Every event recorded at or after `cursor`, in order.
    ///
    /// # Errors
    ///
    /// [`EventLag`] when `cursor` has already been evicted from the
    /// bounded buffer; the caller must rebuild from a full snapshot
    /// ([`TxPool::snapshot_with_cursor`]) and resume from the snapshot's
    /// cursor.
    pub fn events_since(&self, cursor: u64) -> Result<Vec<PoolEventRecord>, EventLag> {
        let events = self.events.lock();
        if cursor >= events.next_seq {
            return Ok(Vec::new());
        }
        let oldest = match events.buffer.front() {
            Some(record) => record.seq,
            None => events.next_seq,
        };
        if cursor < oldest {
            return Err(EventLag { oldest_buffered: oldest, resume_cursor: events.next_seq });
        }
        let skip = (cursor - oldest) as usize;
        Ok(events.buffer.iter().skip(skip).cloned().collect())
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Inserts `tx`, arriving at `now`. The whole admission decision —
    /// shard lock, dup/replacement/capacity checks, event emission — is
    /// timed as [`Phase::Admission`].
    ///
    /// # Errors
    ///
    /// See [`PoolError`] for the admission rules.
    pub fn insert(&self, tx: Transaction, now: SimTime) -> Result<(), PoolError> {
        self.telemetry.time(Phase::Admission, || self.insert_inner(tx, now))
    }

    fn insert_inner(&self, tx: Transaction, now: SimTime) -> Result<(), PoolError> {
        let sender = tx.sender();
        let nonce = tx.nonce();
        let hash = tx.hash();
        loop {
            {
                let mut shard = self.lock_shard(self.shard_of(&sender));
                if shard.by_hash.contains_key(&hash) {
                    return Err(PoolError::Duplicate);
                }
                if let Some(existing) = shard.by_sender.get(&sender).and_then(|queue| queue.get(&nonce)) {
                    let required =
                        existing.tx.gas_price().saturating_mul(100 + self.config.replace_bump_pct) / 100;
                    if tx.gas_price() < required.max(existing.tx.gas_price() + 1) {
                        return Err(PoolError::ReplacementUnderpriced);
                    }
                    let old_hash = existing.tx.hash();
                    let old_to = existing.tx.to();
                    shard.by_hash.remove(&old_hash);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.admit(&mut shard, tx, now, Some((old_hash, old_to)));
                    return Ok(());
                }
                if self.len.load(Ordering::Relaxed) < self.config.capacity {
                    self.admit(&mut shard, tx, now, None);
                    return Ok(());
                }
            }
            // At capacity: evict the globally cheapest entry if the
            // newcomer pays more (under the index lock, which we must not
            // acquire while holding our shard), then retry the fast path.
            self.make_room_for(&tx)?;
        }
    }

    /// Stamps and stores an admitted entry under an already-held shard
    /// lock. `replaced` carries the same-nonce predecessor, whose
    /// `Removed` event must precede the `Inserted` one.
    fn admit(
        &self,
        shard: &mut Shard,
        tx: Transaction,
        now: SimTime,
        replaced: Option<(H256, Option<Address>)>,
    ) {
        let sender = tx.sender();
        let nonce = tx.nonce();
        let arrival_seq;
        {
            let mut events = self.events.lock();
            if let Some((old_hash, old_to)) = replaced {
                events.emit_with(self.config.event_capacity, || PoolEvent::Removed {
                    hash: old_hash,
                    to: old_to,
                });
            }
            arrival_seq = events.arrival_counter;
            events.arrival_counter += 1;
            // The clone stays inside the closure: unwatched pools never
            // pay it (the whole point of `emit_with`).
            events.emit_with(self.config.event_capacity, || PoolEvent::Inserted {
                tx: tx.clone(),
                arrival_seq,
            });
        }
        let entry = PoolEntry { arrival_seq, arrival_time: now, tx };
        shard.by_hash.insert(entry.tx.hash(), (sender, nonce));
        shard.by_sender.entry(sender).or_default().insert(nonce, entry);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Evicts the globally cheapest pooled transaction if `tx` pays more.
    ///
    /// # Errors
    ///
    /// [`PoolError::PoolFull`] when nothing cheaper than `tx` is pooled.
    fn make_room_for(&self, tx: &Transaction) -> Result<(), PoolError> {
        let mut index = self.index.lock();
        self.refresh_index(&mut index);
        if self.len.load(Ordering::Relaxed) < self.config.capacity {
            return Ok(()); // a concurrent removal made room
        }
        let Some((price, sender, nonce)) = index.cheapest() else {
            return Err(PoolError::PoolFull);
        };
        if price >= tx.gas_price() {
            return Err(PoolError::PoolFull);
        }
        // Remove the victim through the normal shard path (lock order:
        // index → shard → events); the index learns of the removal from
        // the event stream on its next refresh. The victim's price is
        // re-checked under the shard lock: a concurrent replacement may
        // have bumped the slot the index still thinks is cheapest, and
        // the admission rule — evict only what the newcomer out-pays —
        // must hold against the entry actually stored, not the index's
        // snapshot of it. A mismatch just retries the outer insert loop.
        let mut shard = self.lock_shard(self.shard_of(&sender));
        let victim = shard
            .by_sender
            .get(&sender)
            .and_then(|queue| queue.get(&nonce))
            .filter(|entry| entry.tx.gas_price() < tx.gas_price())
            .map(|entry| entry.tx.hash());
        if let Some(hash) = victim {
            self.remove_from_shard(&mut shard, &sender, nonce, &hash, false);
        }
        Ok(())
    }

    /// Removes one entry from an already-locked shard, emitting the
    /// departure event.
    fn remove_from_shard(
        &self,
        shard: &mut Shard,
        sender: &Address,
        nonce: u64,
        hash: &H256,
        committed: bool,
    ) -> Option<Transaction> {
        shard.by_hash.remove(hash)?;
        let queue = shard.by_sender.get_mut(sender)?;
        let entry = queue.remove(&nonce);
        if queue.is_empty() {
            shard.by_sender.remove(sender);
        }
        let tx = entry.map(|e| e.tx);
        if let Some(tx) = &tx {
            self.len.fetch_sub(1, Ordering::Relaxed);
            let to = tx.to();
            let hash = *hash;
            let mut events = self.events.lock();
            events.emit_with(self.config.event_capacity, || {
                if committed {
                    PoolEvent::Committed { hash, to }
                } else {
                    PoolEvent::Removed { hash, to }
                }
            });
        }
        tx
    }

    /// Removes a transaction by hash, returning it if present.
    pub fn remove(&self, hash: &H256) -> Option<Transaction> {
        for mutex in self.shards.iter() {
            let mut shard = mutex.lock();
            if let Some(&(sender, nonce)) = shard.by_hash.get(hash) {
                return self.remove_from_shard(&mut shard, &sender, nonce, hash, false);
            }
        }
        None
    }

    /// Drops every pooled transaction that appears in `block_txs`, and any
    /// pooled transaction whose nonce is now stale for its sender. Called
    /// when a block is imported — this is why, right after publication, the
    /// pool "no longer contains marked transactions" (paper §V-C).
    pub fn remove_committed<'a>(&self, block_txs: impl IntoIterator<Item = &'a Transaction>) {
        for tx in block_txs {
            let sender = tx.sender();
            let mut shard = self.lock_shard(self.shard_of(&sender));
            let hash = tx.hash();
            if let Some(&(owner, nonce)) = shard.by_hash.get(&hash) {
                self.remove_from_shard(&mut shard, &owner, nonce, &hash, true);
            }
            // Same-sender same-nonce-or-older alternatives are now
            // unincludable.
            let stale: Vec<(u64, H256)> = shard
                .by_sender
                .get(&sender)
                .map(|queue| queue.range(..=tx.nonce()).map(|(n, e)| (*n, e.tx.hash())).collect())
                .unwrap_or_default();
            for (nonce, hash) in stale {
                self.remove_from_shard(&mut shard, &sender, nonce, &hash, false);
            }
        }
    }

    /// Drops every pooled transaction whose nonce is below its sender's
    /// current account nonce (e.g. after a reorg or a block built
    /// elsewhere). `nonce_of` supplies the account nonce per sender.
    pub fn prune_stale(&self, nonce_of: impl Fn(&Address) -> u64) {
        for mutex in self.shards.iter() {
            let mut shard = mutex.lock();
            let stale: Vec<(Address, u64, H256)> = shard
                .by_sender
                .iter()
                .flat_map(|(sender, queue)| {
                    let floor = nonce_of(sender);
                    queue.range(..floor).map(|(n, e)| (*sender, *n, e.tx.hash())).collect::<Vec<_>>()
                })
                .collect();
            for (sender, nonce, hash) in stale {
                self.remove_from_shard(&mut shard, &sender, nonce, &hash, false);
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Every pooled transaction in arrival order — the concurrent history
    /// snapshot that Hash-Mark-Set's `PROCESS` filters (paper Alg. 2).
    /// Clones every entry; prefer [`TxPool::with_entries_by_arrival`] on
    /// read paths.
    pub fn pending_by_arrival(&self) -> Vec<PoolEntry> {
        self.with_entries_by_arrival(|entries| entries.iter().map(|e| (*e).clone()).collect())
    }

    /// Runs `f` over every pooled entry in arrival order, borrowed in
    /// place: only the reference vector is allocated; the entries (and
    /// their calldata) never move. All shards are held for the duration,
    /// so the view is atomic — keep `f` short.
    pub fn with_entries_by_arrival<R>(&self, f: impl FnOnce(&[&PoolEntry]) -> R) -> R {
        let guards = self.lock_all_shards();
        let mut entries: Vec<&PoolEntry> =
            guards.iter().flat_map(|g| g.by_sender.values().flat_map(|queue| queue.values())).collect();
        entries.sort_by_key(|entry| entry.arrival_seq);
        f(&entries)
    }

    /// An atomic full snapshot plus the event cursor that immediately
    /// follows it — what a lagged subscriber rebuilds from: applying
    /// events from the returned cursor onward to the returned entries
    /// reproduces every later pool state.
    pub fn snapshot_with_cursor(&self) -> (Vec<PoolEntry>, u64) {
        let guards = self.lock_all_shards();
        let cursor = self.events.lock().next_seq;
        let mut entries: Vec<PoolEntry> = guards
            .iter()
            .flat_map(|g| g.by_sender.values().flat_map(|queue| queue.values().cloned()))
            .collect();
        entries.sort_by_key(|entry| entry.arrival_seq);
        (entries, cursor)
    }

    // ------------------------------------------------------------------
    // Indexed reads
    // ------------------------------------------------------------------

    /// Brings the candidate index up to the event stream's head. Called
    /// with the index lock held; acquires shards and/or the event log
    /// (inner locks) as needed.
    fn refresh_index(&self, index: &mut CandidateIndex) {
        if !index.subscribed {
            self.rebuild_index_locked(index);
            return;
        }
        match self.events_since(index.cursor) {
            Ok(records) => {
                if let Some(last) = records.last() {
                    index.cursor = last.seq + 1;
                }
                let applied = records.len() as u64;
                for record in &records {
                    index.apply_event(&record.event, self.config.market.as_ref());
                }
                self.stats.events_applied.add(applied);
            }
            Err(_lag) => self.rebuild_index_locked(index),
        }
    }

    /// Rebuilds the index from a full snapshot taken under all shard
    /// locks (so the captured cursor exactly matches the entries), and
    /// subscribes the pool's event stream for future incremental catch-up.
    fn rebuild_index_locked(&self, index: &mut CandidateIndex) {
        let guards = self.lock_all_shards();
        let cursor = {
            let mut events = self.events.lock();
            events.enabled = true;
            events.next_seq
        };
        let mut entries: Vec<&PoolEntry> =
            guards.iter().flat_map(|g| g.by_sender.values().flat_map(|queue| queue.values())).collect();
        entries.sort_by_key(|entry| entry.arrival_seq);
        index.rebuild(entries.iter().copied(), self.config.market.as_ref());
        index.cursor = cursor;
        index.subscribed = true;
        self.stats.index_rebuilds.inc();
    }

    /// Forces a full index rebuild (test hook for the equivalence
    /// properties; production code never needs it).
    pub fn rebuild_index(&self) {
        let mut index = self.index.lock();
        self.rebuild_index_locked(&mut index);
    }

    /// Executable transactions ordered the way a fee-maximising miner picks
    /// them: highest gas price first, arrival order breaking ties, while
    /// never emitting a sender's nonce `n + 1` before `n` (paper §II-C).
    ///
    /// `base_nonce` supplies each sender's current account nonce; senders
    /// whose next pooled nonce is ahead of their account nonce (a gap) are
    /// held back entirely.
    ///
    /// Served from the incremental index in `O(k log k)` for `k` returned
    /// candidates — counted in [`PoolStats::index_hits`].
    pub fn ready_by_price(&self, base_nonce: impl Fn(&Address) -> u64) -> Vec<Transaction> {
        self.ready_by_price_limited(base_nonce, usize::MAX)
    }

    /// [`TxPool::ready_by_price`] emitting at most `limit` candidates —
    /// the indexed read is then `O(limit)` regardless of pool size (what
    /// a miner with a known block capacity should use).
    ///
    /// # Exactness
    ///
    /// Equal to the rescan oracle for every pool shape, every
    /// `base_nonce`, and every `limit`. The indexed walk seeds each
    /// sender's nonce cursor from `base_nonce` on first touch, so stale
    /// entries (pooled nonce below the caller's account nonce — a
    /// submission racing an import before the next [`TxPool::prune_stale`]
    /// catches it, or a pipelined miner reading against a predicted
    /// post-state ahead of the pool's pruning) are skipped per-entry
    /// during the walk itself rather than deferred to the next import's
    /// prune. There is no fallback path: budgeted reads under churn stay
    /// index-served and byte-equal to [`TxPool::ready_by_price_rescan`],
    /// which the `txpool_index_props` suite pins across randomized
    /// stale/gap/limit grids.
    pub fn ready_by_price_limited(
        &self,
        base_nonce: impl Fn(&Address) -> u64,
        limit: usize,
    ) -> Vec<Transaction> {
        let out = {
            let mut index = self.index.lock();
            self.refresh_index(&mut index);
            index.ready_by_price(&|sender| base_nonce(sender), limit)
        };
        self.stats.index_hits.inc();
        out
    }

    /// The pre-index implementation: a repeated-selection walk over every
    /// sender queue, `O(candidates · senders)`. Kept verbatim as the
    /// byte-equality oracle for the indexed read (the `txpool_index_props`
    /// suite holds them equal) and as the benchmarks' baseline.
    pub fn ready_by_price_rescan(
        &self,
        base_nonce: impl Fn(&Address) -> u64,
        limit: usize,
    ) -> Vec<Transaction> {
        self.stats.rescans.inc();
        let guards = self.lock_all_shards();
        let queues: Vec<(&Address, &std::collections::BTreeMap<u64, PoolEntry>)> =
            guards.iter().flat_map(|g| g.by_sender.iter()).collect();
        let mut cursors: HashMap<Address, u64> =
            queues.iter().map(|(sender, _)| (**sender, base_nonce(sender))).collect();
        let mut out = Vec::new();
        while out.len() < limit {
            let mut best: Option<&PoolEntry> = None;
            for (sender, queue) in &queues {
                let next_nonce = cursors[*sender];
                if let Some(entry) = queue.get(&next_nonce) {
                    let better = match best {
                        None => true,
                        Some(current) => {
                            (entry.tx.gas_price(), current.arrival_seq)
                                > (current.tx.gas_price(), entry.arrival_seq)
                        }
                    };
                    if better {
                        best = Some(entry);
                    }
                }
            }
            match best {
                Some(entry) => {
                    out.push(entry.tx.clone());
                    let cursor = cursors.get_mut(&entry.tx.sender()).expect("cursor exists");
                    match cursor.checked_add(1) {
                        Some(next) => *cursor = next,
                        None => break,
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Every pooled `set`/`buy` transaction addressed to `contract`, in
    /// arrival order, with its FPV pre-parsed — what the semantic and PWV
    /// miners consume instead of re-decoding the whole pool per block.
    ///
    /// Served from the per-contract index when the selectors match the
    /// configured [`PoolConfig::market`]; otherwise (unconfigured pools,
    /// foreign selectors) computed by a counted rescan with the identical
    /// classification rule.
    pub fn market_snapshot(
        &self,
        contract: &Address,
        set_selector: Selector,
        buy_selector: Selector,
    ) -> Vec<MarketEntry> {
        if self.config.market == Some(MarketSpec { set_selector, buy_selector }) {
            let mut index = self.index.lock();
            self.refresh_index(&mut index);
            self.stats.index_hits.inc();
            return index.market(contract);
        }
        self.stats.market_rescans.inc();
        self.with_entries_by_arrival(|entries| {
            entries
                .iter()
                .filter(|e| e.tx.to() == Some(*contract))
                .filter_map(|e| MarketEntry::classify(&e.tx, e.arrival_seq, set_selector, buy_selector))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;

    fn tx(key: &SecretKey, nonce: u64, gas_price: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(1)),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            key,
        )
    }

    #[test]
    fn insert_and_len() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        pool.insert(tx(&key, 1, 10), 1).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let t = tx(&key, 0, 10);
        pool.insert(t.clone(), 0).unwrap();
        assert_eq!(pool.insert(t, 1), Err(PoolError::Duplicate));
    }

    #[test]
    fn replacement_requires_price_bump() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 100), 0).unwrap();
        // The identical transaction is a duplicate, not a replacement.
        assert_eq!(pool.insert(tx(&key, 0, 100), 1), Err(PoolError::Duplicate));
        // +5% is below the 10% bump: refused.
        assert_eq!(pool.insert(tx(&key, 0, 105), 2), Err(PoolError::ReplacementUnderpriced));
        // +10%: accepted, replacing the old one.
        pool.insert(tx(&key, 0, 110), 3).unwrap();
        assert_eq!(pool.len(), 1);
        let pending = pool.pending_by_arrival();
        assert_eq!(pending[0].tx.gas_price(), 110);
    }

    #[test]
    fn capacity_evicts_cheapest_when_newcomer_pays_more() {
        let pool = TxPool::with_config(PoolConfig { capacity: 2, ..PoolConfig::default() });
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        let c = SecretKey::from_label(3);
        pool.insert(tx(&a, 0, 5), 0).unwrap();
        pool.insert(tx(&b, 0, 50), 1).unwrap();
        // Cheaper than everything pooled: refused.
        assert_eq!(pool.insert(tx(&c, 0, 1), 2), Err(PoolError::PoolFull));
        // Richer than the cheapest: evicts it.
        pool.insert(tx(&c, 0, 20), 3).unwrap();
        assert_eq!(pool.len(), 2);
        let prices: Vec<u64> = pool.pending_by_arrival().iter().map(|e| e.tx.gas_price()).collect();
        assert!(prices.contains(&50) && prices.contains(&20));
    }

    #[test]
    fn capacity_eviction_prefers_newest_of_the_cheapest() {
        // Two entries at the same (cheapest) price: the newer arrival is
        // the victim, exactly as the pre-index min_by_key tie-break chose.
        let pool = TxPool::with_config(PoolConfig { capacity: 2, ..PoolConfig::default() });
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        let c = SecretKey::from_label(3);
        let older = tx(&a, 0, 5);
        let newer = tx(&b, 0, 5);
        pool.insert(older.clone(), 0).unwrap();
        pool.insert(newer.clone(), 1).unwrap();
        pool.insert(tx(&c, 0, 20), 2).unwrap();
        assert!(pool.contains(&older.hash()));
        assert!(!pool.contains(&newer.hash()));
    }

    #[test]
    fn pending_by_arrival_preserves_real_time_order() {
        let pool = TxPool::new();
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        pool.insert(tx(&b, 0, 1), 10).unwrap();
        pool.insert(tx(&a, 0, 99), 20).unwrap();
        pool.insert(tx(&b, 1, 1), 30).unwrap();
        let order: Vec<u64> = pool.pending_by_arrival().iter().map(|e| e.arrival_time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ready_by_price_orders_by_fee_with_nonce_constraint() {
        let pool = TxPool::new();
        let rich = SecretKey::from_label(1);
        let poor = SecretKey::from_label(2);
        // rich sends nonce 0 at low price, nonce 1 at high price; the high
        // price tx must still come after its predecessor.
        pool.insert(tx(&rich, 0, 10), 0).unwrap();
        pool.insert(tx(&rich, 1, 500), 1).unwrap();
        pool.insert(tx(&poor, 0, 100), 2).unwrap();
        let ready = pool.ready_by_price(|_| 0);
        let prices: Vec<u64> = ready.iter().map(Transaction::gas_price).collect();
        assert_eq!(prices, vec![100, 10, 500]);
        assert_eq!(pool.stats().index_hits, 1);
    }

    #[test]
    fn ready_by_price_holds_back_nonce_gaps() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 1, 100), 0).unwrap(); // gap: nonce 0 missing
        assert!(pool.ready_by_price(|_| 0).is_empty());
        pool.insert(tx(&key, 0, 1), 1).unwrap();
        assert_eq!(pool.ready_by_price(|_| 0).len(), 2);
    }

    #[test]
    fn ready_by_price_limited_is_a_prefix_of_the_full_order() {
        let pool = TxPool::new();
        for label in 1..=20u64 {
            let key = SecretKey::from_label(label);
            pool.insert(tx(&key, 0, label * 3 % 17 + 1), label).unwrap();
            pool.insert(tx(&key, 1, label * 5 % 13 + 1), 100 + label).unwrap();
        }
        let full = pool.ready_by_price(|_| 0);
        for limit in [0usize, 1, 7, 23, 40, 100] {
            let limited = pool.ready_by_price_limited(|_| 0, limit);
            assert_eq!(limited.len(), full.len().min(limit));
            assert_eq!(limited[..], full[..limited.len()]);
        }
    }

    #[test]
    fn indexed_ready_matches_rescan_after_churn() {
        let pool = TxPool::with_config(PoolConfig { shards: 4, ..PoolConfig::default() });
        let keys: Vec<SecretKey> = (1..=12).map(SecretKey::from_label).collect();
        for (i, key) in keys.iter().enumerate() {
            for nonce in 0..3 {
                pool.insert(tx(key, nonce, (i as u64 * 7 + nonce * 3) % 19 + 1), i as u64 * 10 + nonce)
                    .unwrap();
            }
        }
        // Churn: remove some, commit some, replace some.
        pool.remove(&tx(&keys[0], 1, 8).hash());
        pool.remove_committed([&tx(&keys[3], 0, 2)]);
        pool.insert(tx(&keys[5], 0, 50), 999).unwrap(); // replacement
        let indexed = pool.ready_by_price(|_| 0);
        let rescan = pool.ready_by_price_rescan(|_| 0, usize::MAX);
        assert_eq!(indexed, rescan);
    }

    #[test]
    fn stale_prefix_is_served_exactly_by_the_index() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        pool.insert(tx(&key, 1, 20), 1).unwrap();
        // Warm the index.
        assert_eq!(pool.ready_by_price(|_| 0).len(), 2);
        let before = pool.stats();
        // Account nonce moved past the pooled head without a prune: the
        // indexed walk skips the stale entry in place — no rescan.
        let ready = pool.ready_by_price(|_| 1);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].nonce(), 1);
        let after = pool.stats();
        assert_eq!(after.rescans, before.rescans);
        assert_eq!(after.index_hits, before.index_hits + 1);
        // Pruning leaves the answer unchanged.
        pool.prune_stale(|_| 1);
        let pruned = pool.ready_by_price(|_| 1);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pool.stats().rescans, after.rescans);
    }

    #[test]
    fn limited_read_ranks_by_the_effective_entry_not_the_stale_head() {
        // Sender A's head is a stale cheap nonce-0, but its effective
        // entry (nonce 1) outprices everyone. A head-ranked walk would
        // place A below B and emit B under limit 1; the exact walk must
        // emit A's nonce-1 first, like the rescan.
        let pool = TxPool::new();
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        pool.insert(tx(&a, 0, 1), 0).unwrap();
        pool.insert(tx(&a, 1, 100), 1).unwrap();
        pool.insert(tx(&b, 0, 50), 2).unwrap();
        let base = |sender: &Address| if *sender == a.address() { 1 } else { 0 };
        let limited = pool.ready_by_price_limited(base, 1);
        assert_eq!(limited.len(), 1);
        assert_eq!(limited[0].sender(), a.address());
        assert_eq!(limited[0].nonce(), 1);
        assert_eq!(limited, pool.ready_by_price_rescan(base, 1));
        let full = pool.ready_by_price(base);
        assert_eq!(full, pool.ready_by_price_rescan(base, usize::MAX));
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn remove_committed_clears_included_and_stale() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let committed = tx(&key, 1, 10);
        pool.insert(tx(&key, 0, 10), 0).unwrap(); // stale once nonce 1 commits
        pool.insert(committed.clone(), 1).unwrap();
        pool.insert(tx(&key, 2, 10), 2).unwrap(); // still valid
        pool.remove_committed([&committed]);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_by_arrival()[0].tx.nonce(), 2);
    }

    #[test]
    fn remove_unknown_hash_is_none() {
        let pool = TxPool::new();
        assert!(pool.remove(&H256::keccak(b"nothing")).is_none());
    }

    #[test]
    fn events_record_insert_remove_commit() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let cursor = pool.subscribe();
        let t0 = tx(&key, 0, 10);
        let t1 = tx(&key, 1, 10);
        pool.insert(t0.clone(), 0).unwrap();
        pool.insert(t1.clone(), 1).unwrap();
        pool.remove(&t1.hash());
        pool.remove_committed([&t0]);
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(
            events,
            vec![
                PoolEvent::Inserted { tx: t0.clone(), arrival_seq: 0 },
                PoolEvent::Inserted { tx: t1.clone(), arrival_seq: 1 },
                PoolEvent::Removed { hash: t1.hash(), to: t1.to() },
                PoolEvent::Committed { hash: t0.hash(), to: t0.to() },
            ]
        );
        // The cursor advanced past everything: nothing new.
        assert!(pool.events_since(pool.event_cursor()).unwrap().is_empty());
    }

    #[test]
    fn replacement_emits_removed_then_inserted() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let cheap = tx(&key, 0, 100);
        pool.subscribe();
        pool.insert(cheap.clone(), 0).unwrap();
        let cursor = pool.event_cursor();
        let rich = tx(&key, 0, 110);
        pool.insert(rich.clone(), 1).unwrap();
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], PoolEvent::Removed { hash, .. } if *hash == cheap.hash()));
        assert!(matches!(&events[1], PoolEvent::Inserted { tx, .. } if tx.hash() == rich.hash()));
    }

    #[test]
    fn stale_nonce_collateral_emits_removed() {
        let pool = TxPool::new();
        let key = SecretKey::from_label(1);
        let n0 = tx(&key, 0, 10);
        let committed = tx(&key, 1, 10);
        pool.subscribe();
        pool.insert(n0.clone(), 0).unwrap();
        pool.insert(committed.clone(), 1).unwrap();
        let cursor = pool.event_cursor();
        pool.remove_committed([&committed]);
        let events: Vec<PoolEvent> =
            pool.events_since(cursor).unwrap().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], PoolEvent::Committed { hash, .. } if *hash == committed.hash()));
        assert!(matches!(&events[1], PoolEvent::Removed { hash, .. } if *hash == n0.hash()));
    }

    #[test]
    fn lagged_cursor_reports_resync_point() {
        let pool = TxPool::with_config(PoolConfig { event_capacity: 2, ..PoolConfig::default() });
        pool.subscribe();
        let key = SecretKey::from_label(1);
        for nonce in 0..5 {
            pool.insert(tx(&key, nonce, 10), nonce).unwrap();
        }
        let err = pool.events_since(0).unwrap_err();
        assert_eq!(err.oldest_buffered, 3);
        assert_eq!(err.resume_cursor, 5);
        // The still-buffered suffix is readable.
        assert_eq!(pool.events_since(3).unwrap().len(), 2);
    }

    #[test]
    fn event_overflow_forces_a_counted_index_rebuild() {
        let pool = TxPool::with_config(PoolConfig { event_capacity: 4, ..PoolConfig::default() });
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        assert_eq!(pool.ready_by_price(|_| 0).len(), 1);
        let rebuilds_after_first = pool.stats().index_rebuilds;
        assert!(rebuilds_after_first >= 1, "lazy subscription rebuilds once");
        // Push the internal cursor out of the buffer.
        for nonce in 1..20 {
            pool.insert(tx(&key, nonce, 10), nonce).unwrap();
        }
        let ready = pool.ready_by_price(|_| 0);
        assert_eq!(ready.len(), 20);
        assert_eq!(pool.stats().index_rebuilds, rebuilds_after_first + 1);
        // And the rebuilt index still matches the oracle.
        assert_eq!(ready, pool.ready_by_price_rescan(|_| 0, usize::MAX));
    }

    #[test]
    fn ordering_is_invariant_in_the_shard_count() {
        let build = |shards: usize| {
            let pool = TxPool::with_config(PoolConfig { shards, ..PoolConfig::default() });
            for label in 1..=17u64 {
                let key = SecretKey::from_label(label);
                pool.insert(tx(&key, 0, label % 5 + 1), label).unwrap();
                pool.insert(tx(&key, 1, label % 7 + 1), 50 + label).unwrap();
            }
            pool.remove_committed([&tx(&SecretKey::from_label(3), 0, 4)]);
            pool
        };
        let one = build(1);
        let many = build(16);
        assert_eq!(one.ready_by_price(|_| 0), many.ready_by_price(|_| 0));
        let arrivals = |pool: &TxPool| -> Vec<(H256, u64)> {
            pool.pending_by_arrival().iter().map(|e| (e.tx.hash(), e.arrival_seq)).collect()
        };
        assert_eq!(arrivals(&one), arrivals(&many));
    }

    #[test]
    fn snapshot_with_cursor_matches_event_stream() {
        let pool = TxPool::new();
        pool.subscribe();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        let (entries, cursor) = pool.snapshot_with_cursor();
        assert_eq!(entries.len(), 1);
        assert_eq!(cursor, pool.event_cursor());
        pool.insert(tx(&key, 1, 10), 1).unwrap();
        // Applying the events from the snapshot cursor reproduces the pool.
        let later = pool.events_since(cursor).unwrap();
        assert_eq!(later.len(), 1);
        assert!(matches!(&later[0].event, PoolEvent::Inserted { arrival_seq: 1, .. }));
    }

    #[test]
    fn clone_is_a_faithful_snapshot_with_a_cold_index() {
        let pool = TxPool::new();
        pool.subscribe();
        let key = SecretKey::from_label(1);
        pool.insert(tx(&key, 0, 10), 0).unwrap();
        pool.insert(tx(&key, 1, 30), 1).unwrap();
        let snapshot = pool.clone();
        pool.insert(tx(&key, 2, 20), 2).unwrap();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot.event_cursor(), 2);
        assert_eq!(snapshot.ready_by_price(|_| 0), snapshot.ready_by_price_rescan(|_| 0, usize::MAX));
        assert_eq!(pool.len(), 3);
    }
}
