//! Block validation by transaction replay.
//!
//! "To accept a published block every peer must perform block validation,
//! the task of checking that the block is consistent with the state of the
//! network … The process of peers redundantly validating transactions in a
//! block is called transaction replay" (paper §II-D). Replay is also what
//! defeats RAA tampering of signed transactions: a block containing a
//! mutated transaction fails signature checks here and is rejected by every
//! honest peer (§III-D).
//!
//! Because *every* peer replays *every* block, validation — not block
//! building — dominates network-wide compute. [`ValidationMode::Parallel`]
//! replays the block's fixed transaction order on the same conflict-aware
//! wave executor the builder uses (`crate::parallel::run_waves`):
//! speculate over a frozen COW [`StateView`](crate::state::StateView),
//! merge in canonical order with dirty-key validation, fall back to
//! sequential re-execution on mis-speculation. The two modes are
//! **verdict-equivalent** — identical `Ok` artifacts and identical
//! [`ValidationError`] variants (including the [`BadTransaction`] index)
//! on tampered, reordered, gas-inflated, and wrong-root blocks — which the
//! `validation_props` property suite and the cross-mode tamper matrix
//! enforce.
//!
//! [`BadTransaction`]: ValidationError::BadTransaction

use sereth_telemetry::Telemetry;
use sereth_types::block::{Block, BlockHeader};
use sereth_types::receipt::Receipt;

use crate::executor::{apply_transaction, BlockEnv, TxApplyError};
use crate::parallel::{self, ExecStats, WaveSink};
use crate::state::StateDb;
use sereth_types::transaction::Transaction;

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `parent_hash` does not match the parent header.
    WrongParent,
    /// Block number is not parent number + 1.
    WrongNumber,
    /// Timestamp is not strictly after the parent's.
    NonMonotonicTimestamp,
    /// The header's transaction root does not commit to the body.
    TxRootMismatch,
    /// A transaction failed to apply during replay.
    BadTransaction {
        /// Index of the offending transaction.
        index: usize,
        /// The underlying error.
        error: TxApplyError,
    },
    /// Declared gas used differs from replay.
    GasUsedMismatch {
        /// Header value.
        declared: u64,
        /// Replay value.
        replayed: u64,
    },
    /// The receipts root does not match replay.
    ReceiptsRootMismatch,
    /// The state root does not match replay.
    StateRootMismatch,
    /// The block exceeds its own gas limit.
    GasLimitExceeded,
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongParent => write!(f, "parent hash mismatch"),
            Self::WrongNumber => write!(f, "block number not sequential"),
            Self::NonMonotonicTimestamp => write!(f, "timestamp not after parent"),
            Self::TxRootMismatch => write!(f, "transaction root mismatch"),
            Self::BadTransaction { index, error } => write!(f, "transaction {index} invalid: {error}"),
            Self::GasUsedMismatch { declared, replayed } => {
                write!(f, "gas used mismatch: declared {declared}, replayed {replayed}")
            }
            Self::ReceiptsRootMismatch => write!(f, "receipts root mismatch"),
            Self::StateRootMismatch => write!(f, "state root mismatch"),
            Self::GasLimitExceeded => write!(f, "block gas limit exceeded"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// How replay validation executes a block's transactions. Mirrors
/// [`crate::parallel::ExecMode`] on the read (replay) side of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// The classic one-transaction-at-a-time replay (the baseline and the
    /// default).
    #[default]
    Sequential,
    /// Conflict-aware speculative replay on the wave executor. Verdicts
    /// are identical to [`ValidationMode::Sequential`] for every block,
    /// honest or tampered.
    Parallel {
        /// Worker threads per wave (clamped to at least 1).
        threads: usize,
    },
}

impl ValidationMode {
    /// Picks [`ValidationMode::Parallel`] with `threads` workers on
    /// multi-core hosts and [`ValidationMode::Sequential`] when the
    /// machine exposes a single CPU, mirroring
    /// [`ExecMode::auto`](crate::parallel::ExecMode::auto).
    pub fn auto(threads: usize) -> Self {
        Self::auto_for(threads, parallel::detected_parallelism())
    }

    /// [`ValidationMode::auto`] with an explicit parallelism reading — the
    /// deterministic core the single-CPU regression test pins. Delegates
    /// to [`ExecMode::auto_for`](crate::parallel::ExecMode::auto_for) so
    /// the build and replay sides share one auto-selection policy.
    pub fn auto_for(threads: usize, available_parallelism: usize) -> Self {
        match crate::parallel::ExecMode::auto_for(threads, available_parallelism) {
            crate::parallel::ExecMode::Sequential => Self::Sequential,
            crate::parallel::ExecMode::Parallel { threads } => Self::Parallel { threads },
        }
    }
}

/// A successfully replayed block: its artifacts plus the executor
/// counters describing how the replay ran (all zeros except
/// `sequential_txs` in sequential mode).
#[derive(Debug, Clone)]
pub struct Validated {
    /// Receipts, in block order.
    pub receipts: Vec<Receipt>,
    /// State after the block.
    pub post_state: StateDb,
    /// How the replay executed (waves, speculations, fallbacks).
    pub stats: ExecStats,
}

/// The replay-validation [`WaveSink`]: every transaction is admitted (a
/// published block has no skips — its body *is* the inclusion decision),
/// and the first apply error aborts the run, capturing the failing
/// absolute index exactly as the sequential replay loop would.
#[derive(Default)]
struct ReplaySink {
    receipts: Vec<Receipt>,
    gas_used: u64,
    failure: Option<(usize, TxApplyError)>,
}

impl WaveSink for ReplaySink {
    fn admit(&mut self, _tx: &Transaction) -> bool {
        true
    }

    fn next_index(&self) -> u32 {
        self.receipts.len() as u32
    }

    fn include(&mut self, _tx: &Transaction, receipt: Receipt) {
        self.gas_used += receipt.gas_used;
        self.receipts.push(receipt);
    }

    fn reject(&mut self, index: usize, error: TxApplyError) -> bool {
        self.failure = Some((index, error));
        false
    }
}

/// Replays `block` on top of `parent_state` and checks every commitment.
///
/// Returns the receipts and post-state on success. Sequential replay; use
/// [`validate_block_with_mode`] to validate on the wave executor.
///
/// # Errors
///
/// See [`ValidationError`]; any error means the block must be rejected and
/// not propagated.
pub fn validate_block(
    parent: &BlockHeader,
    parent_state: &StateDb,
    block: &Block,
) -> Result<(Vec<Receipt>, StateDb), ValidationError> {
    validate_block_with_mode(parent, parent_state, block, &ValidationMode::Sequential)
        .map(|validated| (validated.receipts, validated.post_state))
}

/// [`validate_block`] with an explicit replay mode.
///
/// The two modes return byte-identical verdicts: the same [`Validated`]
/// artifacts on honest blocks and the same [`ValidationError`] variant —
/// including the [`ValidationError::BadTransaction`] index — on tampered
/// ones. Header and commitment checks are shared code; only the replay
/// loop differs, and the parallel loop is the builder's own wave executor
/// replaying the block's fixed order.
///
/// # Errors
///
/// See [`ValidationError`].
pub fn validate_block_with_mode(
    parent: &BlockHeader,
    parent_state: &StateDb,
    block: &Block,
    mode: &ValidationMode,
) -> Result<Validated, ValidationError> {
    let mut scratch = ExecStats::default();
    validate_block_accounted(parent, parent_state, block, mode, &mut scratch)
}

/// [`validate_block_with_mode`] accumulating the replay counters into
/// `stats_out` **whether or not the block is accepted**. A rejected block
/// still costs replay work — a wrong-root block replays in full before
/// the commitment check fires — and per-peer cost accounting
/// ([`crate::store::ChainStore::validation_stats`]) must see that spend,
/// or an adversary feeding invalid blocks would look free.
///
/// # Errors
///
/// See [`ValidationError`].
pub fn validate_block_accounted(
    parent: &BlockHeader,
    parent_state: &StateDb,
    block: &Block,
    mode: &ValidationMode,
    stats_out: &mut ExecStats,
) -> Result<Validated, ValidationError> {
    validate_block_traced(parent, parent_state, block, mode, stats_out, Telemetry::off())
}

/// [`validate_block_accounted`] recording into `telemetry`: a parallel
/// replay's speculate/merge stages land in their phase histograms (the
/// overall validate span is the *caller's* to record — the store times
/// its whole import-side validation as one `validate` phase sample).
/// Pass [`Telemetry::off()`] to replay untimed.
///
/// # Errors
///
/// See [`ValidationError`].
pub fn validate_block_traced(
    parent: &BlockHeader,
    parent_state: &StateDb,
    block: &Block,
    mode: &ValidationMode,
    stats_out: &mut ExecStats,
    telemetry: &Telemetry,
) -> Result<Validated, ValidationError> {
    if block.header.parent_hash != parent.hash() {
        return Err(ValidationError::WrongParent);
    }
    if block.header.number != parent.number + 1 {
        return Err(ValidationError::WrongNumber);
    }
    if block.header.timestamp_ms <= parent.timestamp_ms {
        return Err(ValidationError::NonMonotonicTimestamp);
    }
    if Block::compute_tx_root(&block.transactions) != block.header.tx_root {
        return Err(ValidationError::TxRootMismatch);
    }

    let mut state = parent_state.clone();
    state.clear_journal();
    let env = BlockEnv {
        number: block.header.number,
        timestamp_ms: block.header.timestamp_ms,
        gas_limit: block.header.gas_limit,
        miner: block.header.miner,
    };

    let mut stats = ExecStats::default();
    let replayed = match mode {
        ValidationMode::Sequential => {
            let mut receipts = Vec::with_capacity(block.transactions.len());
            let mut gas_used = 0u64;
            let mut failure = None;
            for (index, tx) in block.transactions.iter().enumerate() {
                stats.sequential_txs += 1;
                match apply_transaction(&mut state, &env, tx, index as u32) {
                    Ok(receipt) => {
                        gas_used += receipt.gas_used;
                        receipts.push(receipt);
                    }
                    Err(error) => {
                        failure = Some(ValidationError::BadTransaction { index, error });
                        break;
                    }
                }
            }
            match failure {
                Some(error) => Err(error),
                None => Ok((receipts, gas_used)),
            }
        }
        ValidationMode::Parallel { threads } => {
            let mut sink = ReplaySink::default();
            stats =
                parallel::run_waves(&mut state, &env, &block.transactions, *threads, &mut sink, telemetry);
            match sink.failure {
                Some((index, error)) => Err(ValidationError::BadTransaction { index, error }),
                None => Ok((sink.receipts, sink.gas_used)),
            }
        }
    };
    // The replay work is spent either way; account for it before the
    // verdict can bail out.
    stats_out.absorb(&stats);
    let (receipts, gas_used) = replayed?;

    if gas_used > block.header.gas_limit {
        return Err(ValidationError::GasLimitExceeded);
    }
    if gas_used != block.header.gas_used {
        return Err(ValidationError::GasUsedMismatch { declared: block.header.gas_used, replayed: gas_used });
    }
    if Block::compute_receipts_root(&receipts) != block.header.receipts_root {
        return Err(ValidationError::ReceiptsRootMismatch);
    }
    state.clear_journal();
    if state.state_root() != block.header.state_root {
        return Err(ValidationError::StateRootMismatch);
    }
    Ok(Validated { receipts, post_state: state, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, BlockLimits};
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::address::Address;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::{Transaction, TxPayload};
    use sereth_types::u256::U256;

    fn setup() -> (BlockHeader, StateDb, SecretKey) {
        let key = SecretKey::from_label(1);
        let genesis = GenesisBuilder::new().fund(key.address(), U256::from(10_000_000u64)).build();
        (genesis.block.header, genesis.state, key)
    }

    fn transfer(key: &SecretKey, nonce: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(7)),
                value: U256::from(1u64),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn valid_block(parent: &BlockHeader, state: &StateDb, key: &SecretKey) -> Block {
        build_block(
            parent,
            state,
            vec![transfer(key, 0), transfer(key, 1)],
            Address::from_low_u64(9),
            15_000,
            &BlockLimits::default(),
        )
        .block
    }

    #[test]
    fn honestly_built_blocks_validate() {
        let (parent, state, key) = setup();
        let block = valid_block(&parent, &state, &key);
        let (receipts, post) = validate_block(&parent, &state, &block).unwrap();
        assert_eq!(receipts.len(), 2);
        assert_eq!(post.state_root(), block.header.state_root);
    }

    #[test]
    fn rejects_wrong_parent() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.parent_hash = sereth_crypto::hash::H256::keccak(b"fake");
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::WrongParent);
    }

    #[test]
    fn rejects_wrong_number() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.number = 5;
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::WrongNumber);
    }

    #[test]
    fn rejects_stale_timestamp() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.timestamp_ms = 0;
        assert_eq!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::NonMonotonicTimestamp
        );
    }

    #[test]
    fn rejects_reordered_body() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.transactions.swap(0, 1);
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::TxRootMismatch);
    }

    #[test]
    fn rejects_raa_tampered_transaction() {
        // The paper's experiment: a malicious client rewrites the calldata
        // of a signed transaction. The block carries a consistent tx root
        // (the miner sealed the mutated tx) but replay detects the broken
        // signature.
        let (parent, state, key) = setup();
        let tampered = transfer(&key, 0).with_tampered_input(Bytes::from_static(b"augmented"));
        let mut block = valid_block(&parent, &state, &key);
        block.transactions[0] = tampered;
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        let err = validate_block(&parent, &state, &block).unwrap_err();
        assert_eq!(err, ValidationError::BadTransaction { index: 0, error: TxApplyError::BadSignature });
    }

    #[test]
    fn rejects_false_gas_claim() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.gas_used += 1;
        assert!(matches!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::GasUsedMismatch { .. }
        ));
    }

    #[test]
    fn rejects_false_state_root() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.state_root = sereth_crypto::hash::H256::keccak(b"wrong");
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::StateRootMismatch);
    }

    #[test]
    fn rejects_false_receipts_root() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.receipts_root = sereth_crypto::hash::H256::keccak(b"wrong");
        assert_eq!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::ReceiptsRootMismatch
        );
    }

    #[test]
    fn parallel_validation_matches_sequential_on_honest_blocks() {
        let (parent, state, key) = setup();
        let block = valid_block(&parent, &state, &key);
        let (receipts, post) = validate_block(&parent, &state, &block).unwrap();
        let validated =
            validate_block_with_mode(&parent, &state, &block, &ValidationMode::Parallel { threads: 4 })
                .unwrap();
        assert_eq!(validated.receipts, receipts);
        assert_eq!(validated.post_state.state_root(), post.state_root());
        assert!(validated.stats.waves >= 1, "parallel replay waves: {:?}", validated.stats);
    }

    #[test]
    fn parallel_validation_rejects_tampering_with_the_sequential_verdict() {
        let (parent, state, key) = setup();
        let tampered = transfer(&key, 0).with_tampered_input(Bytes::from_static(b"augmented"));
        let mut block = valid_block(&parent, &state, &key);
        block.transactions[0] = tampered;
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        let sequential = validate_block(&parent, &state, &block).unwrap_err();
        let parallel =
            validate_block_with_mode(&parent, &state, &block, &ValidationMode::Parallel { threads: 4 })
                .unwrap_err();
        assert_eq!(sequential, parallel, "cross-mode verdicts must be identical");
        assert_eq!(parallel, ValidationError::BadTransaction { index: 0, error: TxApplyError::BadSignature });
    }

    #[test]
    fn validation_auto_mode_on_single_cpu_replays_sequentially() {
        assert_eq!(ValidationMode::auto_for(4, 1), ValidationMode::Sequential);
        assert_eq!(ValidationMode::auto_for(1, 16), ValidationMode::Sequential);
        assert_eq!(ValidationMode::auto_for(4, 8), ValidationMode::Parallel { threads: 4 });

        let (parent, state, key) = setup();
        let block = valid_block(&parent, &state, &key);
        let validated =
            validate_block_with_mode(&parent, &state, &block, &ValidationMode::auto_for(4, 1)).unwrap();
        assert_eq!(validated.stats.waves, 0, "single-CPU auto validation must not speculate");
        assert_eq!(validated.stats.speculated, 0);
        assert_eq!(validated.stats.sequential_txs, block.transactions.len() as u64);
    }

    #[test]
    fn validation_and_build_are_deterministic() {
        let (parent, state, key) = setup();
        let a = valid_block(&parent, &state, &key);
        let b = valid_block(&parent, &state, &key);
        assert_eq!(a.hash(), b.hash(), "same inputs, same block");
    }
}
