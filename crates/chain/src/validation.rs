//! Block validation by transaction replay.
//!
//! "To accept a published block every peer must perform block validation,
//! the task of checking that the block is consistent with the state of the
//! network … The process of peers redundantly validating transactions in a
//! block is called transaction replay" (paper §II-D). Replay is also what
//! defeats RAA tampering of signed transactions: a block containing a
//! mutated transaction fails signature checks here and is rejected by every
//! honest peer (§III-D).

use sereth_types::block::{Block, BlockHeader};
use sereth_types::receipt::Receipt;

use crate::executor::{apply_transaction, BlockEnv, TxApplyError};
use crate::state::StateDb;

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `parent_hash` does not match the parent header.
    WrongParent,
    /// Block number is not parent number + 1.
    WrongNumber,
    /// Timestamp is not strictly after the parent's.
    NonMonotonicTimestamp,
    /// The header's transaction root does not commit to the body.
    TxRootMismatch,
    /// A transaction failed to apply during replay.
    BadTransaction {
        /// Index of the offending transaction.
        index: usize,
        /// The underlying error.
        error: TxApplyError,
    },
    /// Declared gas used differs from replay.
    GasUsedMismatch {
        /// Header value.
        declared: u64,
        /// Replay value.
        replayed: u64,
    },
    /// The receipts root does not match replay.
    ReceiptsRootMismatch,
    /// The state root does not match replay.
    StateRootMismatch,
    /// The block exceeds its own gas limit.
    GasLimitExceeded,
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongParent => write!(f, "parent hash mismatch"),
            Self::WrongNumber => write!(f, "block number not sequential"),
            Self::NonMonotonicTimestamp => write!(f, "timestamp not after parent"),
            Self::TxRootMismatch => write!(f, "transaction root mismatch"),
            Self::BadTransaction { index, error } => write!(f, "transaction {index} invalid: {error}"),
            Self::GasUsedMismatch { declared, replayed } => {
                write!(f, "gas used mismatch: declared {declared}, replayed {replayed}")
            }
            Self::ReceiptsRootMismatch => write!(f, "receipts root mismatch"),
            Self::StateRootMismatch => write!(f, "state root mismatch"),
            Self::GasLimitExceeded => write!(f, "block gas limit exceeded"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Replays `block` on top of `parent_state` and checks every commitment.
///
/// Returns the receipts and post-state on success.
///
/// # Errors
///
/// See [`ValidationError`]; any error means the block must be rejected and
/// not propagated.
pub fn validate_block(
    parent: &BlockHeader,
    parent_state: &StateDb,
    block: &Block,
) -> Result<(Vec<Receipt>, StateDb), ValidationError> {
    if block.header.parent_hash != parent.hash() {
        return Err(ValidationError::WrongParent);
    }
    if block.header.number != parent.number + 1 {
        return Err(ValidationError::WrongNumber);
    }
    if block.header.timestamp_ms <= parent.timestamp_ms {
        return Err(ValidationError::NonMonotonicTimestamp);
    }
    if Block::compute_tx_root(&block.transactions) != block.header.tx_root {
        return Err(ValidationError::TxRootMismatch);
    }

    let mut state = parent_state.clone();
    state.clear_journal();
    let env = BlockEnv {
        number: block.header.number,
        timestamp_ms: block.header.timestamp_ms,
        gas_limit: block.header.gas_limit,
        miner: block.header.miner,
    };

    let mut receipts = Vec::with_capacity(block.transactions.len());
    let mut gas_used = 0u64;
    for (index, tx) in block.transactions.iter().enumerate() {
        match apply_transaction(&mut state, &env, tx, index as u32) {
            Ok(receipt) => {
                gas_used += receipt.gas_used;
                receipts.push(receipt);
            }
            Err(error) => return Err(ValidationError::BadTransaction { index, error }),
        }
    }

    if gas_used > block.header.gas_limit {
        return Err(ValidationError::GasLimitExceeded);
    }
    if gas_used != block.header.gas_used {
        return Err(ValidationError::GasUsedMismatch { declared: block.header.gas_used, replayed: gas_used });
    }
    if Block::compute_receipts_root(&receipts) != block.header.receipts_root {
        return Err(ValidationError::ReceiptsRootMismatch);
    }
    state.clear_journal();
    if state.state_root() != block.header.state_root {
        return Err(ValidationError::StateRootMismatch);
    }
    Ok((receipts, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, BlockLimits};
    use crate::genesis::GenesisBuilder;
    use bytes::Bytes;
    use sereth_crypto::address::Address;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::{Transaction, TxPayload};
    use sereth_types::u256::U256;

    fn setup() -> (BlockHeader, StateDb, SecretKey) {
        let key = SecretKey::from_label(1);
        let genesis = GenesisBuilder::new().fund(key.address(), U256::from(10_000_000u64)).build();
        (genesis.block.header, genesis.state, key)
    }

    fn transfer(key: &SecretKey, nonce: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(7)),
                value: U256::from(1u64),
                input: Bytes::new(),
            },
            key,
        )
    }

    fn valid_block(parent: &BlockHeader, state: &StateDb, key: &SecretKey) -> Block {
        build_block(
            parent,
            state,
            vec![transfer(key, 0), transfer(key, 1)],
            Address::from_low_u64(9),
            15_000,
            &BlockLimits::default(),
        )
        .block
    }

    #[test]
    fn honestly_built_blocks_validate() {
        let (parent, state, key) = setup();
        let block = valid_block(&parent, &state, &key);
        let (receipts, post) = validate_block(&parent, &state, &block).unwrap();
        assert_eq!(receipts.len(), 2);
        assert_eq!(post.state_root(), block.header.state_root);
    }

    #[test]
    fn rejects_wrong_parent() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.parent_hash = sereth_crypto::hash::H256::keccak(b"fake");
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::WrongParent);
    }

    #[test]
    fn rejects_wrong_number() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.number = 5;
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::WrongNumber);
    }

    #[test]
    fn rejects_stale_timestamp() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.timestamp_ms = 0;
        assert_eq!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::NonMonotonicTimestamp
        );
    }

    #[test]
    fn rejects_reordered_body() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.transactions.swap(0, 1);
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::TxRootMismatch);
    }

    #[test]
    fn rejects_raa_tampered_transaction() {
        // The paper's experiment: a malicious client rewrites the calldata
        // of a signed transaction. The block carries a consistent tx root
        // (the miner sealed the mutated tx) but replay detects the broken
        // signature.
        let (parent, state, key) = setup();
        let tampered = transfer(&key, 0).with_tampered_input(Bytes::from_static(b"augmented"));
        let mut block = valid_block(&parent, &state, &key);
        block.transactions[0] = tampered;
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        let err = validate_block(&parent, &state, &block).unwrap_err();
        assert_eq!(err, ValidationError::BadTransaction { index: 0, error: TxApplyError::BadSignature });
    }

    #[test]
    fn rejects_false_gas_claim() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.gas_used += 1;
        assert!(matches!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::GasUsedMismatch { .. }
        ));
    }

    #[test]
    fn rejects_false_state_root() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.state_root = sereth_crypto::hash::H256::keccak(b"wrong");
        assert_eq!(validate_block(&parent, &state, &block).unwrap_err(), ValidationError::StateRootMismatch);
    }

    #[test]
    fn rejects_false_receipts_root() {
        let (parent, state, key) = setup();
        let mut block = valid_block(&parent, &state, &key);
        block.header.receipts_root = sereth_crypto::hash::H256::keccak(b"wrong");
        assert_eq!(
            validate_block(&parent, &state, &block).unwrap_err(),
            ValidationError::ReceiptsRootMismatch
        );
    }

    #[test]
    fn validation_and_build_are_deterministic() {
        let (parent, state, key) = setup();
        let a = valid_block(&parent, &state, &key);
        let b = valid_block(&parent, &state, &key);
        assert_eq!(a.hash(), b.hash(), "same inputs, same block");
    }
}
