//! Exporters: Prometheus exposition text, JSON, and the
//! `TELEMETRY_<key>.json` artifact writer (same drop-location contract
//! as the bench crate's `BENCH_<key>.json`).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::registry::HISTOGRAM_BUCKET_BOUNDS;
use crate::snapshot::TelemetrySnapshot;

/// Turns `pool.index_hits` into a Prometheus-legal `pool_index_hits`.
fn prometheus_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TelemetrySnapshot {
    /// Renders the snapshot as Prometheus exposition text: counters and
    /// gauges as `sereth_<name>`, histograms as the conventional
    /// `_bucket{le=...}` / `_sum` / `_count` triple (in nanoseconds,
    /// hence the `_ns` suffix).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = format!("sereth_{}", prometheus_name(name));
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, value) in &self.gauges {
            let metric = format!("sereth_{}", prometheus_name(name));
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, histogram) in &self.histograms {
            let metric = format!("sereth_{}_ns", prometheus_name(name));
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (i, count) in histogram.bucket_counts.iter().enumerate() {
                cumulative += count;
                match HISTOGRAM_BUCKET_BOUNDS.get(i) {
                    Some(bound) => {
                        let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{metric}_sum {}", histogram.sum_ns);
            let _ = writeln!(out, "{metric}_count {}", histogram.count());
        }
        out
    }

    /// Renders the snapshot as a self-contained JSON object: counters,
    /// gauges, histograms (with derived count, mean, and p50/p95/p99),
    /// and the block-trace timeline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in &self.gauges {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, histogram) in &self.histograms {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {:.1}, \
                 \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}, \"buckets\": [",
                json_escape(name),
                histogram.count(),
                histogram.sum_ns,
                histogram.mean_ns(),
                histogram.p50_ns(),
                histogram.p95_ns(),
                histogram.p99_ns(),
            );
            // Sparse bucket listing: [upper_bound_ns, count] pairs for
            // non-empty buckets only (-1 bounds the overflow bucket).
            let mut first_bucket = true;
            for (i, &count) in histogram.bucket_counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let bound: i64 = HISTOGRAM_BUCKET_BOUNDS.get(i).map(|&bound| bound as i64).unwrap_or(-1);
                let sep = if first_bucket { "" } else { ", " };
                let _ = write!(out, "{sep}[{bound}, {count}]");
                first_bucket = false;
            }
            out.push_str("]}");
            first = false;
        }
        out.push_str("\n  },\n  \"blocks\": [");
        first = true;
        for trace in &self.blocks {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"number\": {}, \"role\": \"{}\", \"phases\": {{",
                trace.number,
                json_escape(trace.role)
            );
            let mut first_phase = true;
            for (phase, ns) in &trace.phase_ns {
                let sep = if first_phase { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {ns}", phase.name());
                first_phase = false;
            }
            out.push_str("}}");
            first = false;
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON rendering to `TELEMETRY_<key>.json` in
    /// `$BENCH_ARTIFACT_DIR` (or the current directory), returning the
    /// path — the same drop-location contract as `BENCH_<key>.json`,
    /// so CI uploads them side by side.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_artifact(&self, key: &str) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_ARTIFACT_DIR").map(PathBuf::from).unwrap_or_default();
        let path = dir.join(format!("TELEMETRY_{key}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{BlockTrace, Phase, Telemetry};

    fn sample_snapshot() -> TelemetrySnapshot {
        let telemetry = Telemetry::enabled();
        telemetry.counter("pool.index_hits").add(3);
        telemetry.gauge("pool.len").set(17);
        telemetry.phase(Phase::Seal).record_ns(1_500);
        telemetry.phase(Phase::Seal).record_ns(2_000_000_000_000);
        telemetry.trace_block(BlockTrace {
            number: 1,
            role: "build",
            phase_ns: vec![(Phase::OrderCandidates, 10), (Phase::Seal, 1_500)],
        });
        telemetry.snapshot()
    }

    #[test]
    fn prometheus_export_has_counter_gauge_and_histogram_series() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE sereth_pool_index_hits counter"));
        assert!(text.contains("sereth_pool_index_hits 3"));
        assert!(text.contains("sereth_pool_len 17"));
        assert!(text.contains("sereth_phase_seal_ns_bucket{le=\"2000\"} 1"));
        assert!(text.contains("sereth_phase_seal_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sereth_phase_seal_ns_count 2"));
    }

    #[test]
    fn json_export_is_structured_and_size_free() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"pool.index_hits\": 3"));
        assert!(json.contains("\"phase.seal\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"role\": \"build\""));
        assert!(json.contains("\"order_candidates\": 10"));
        // The bench-trend parser treats any `"size"` key as a bench
        // point; telemetry JSON must never introduce one.
        assert!(!json.contains("\"size\""));
    }

    #[test]
    fn artifact_lands_in_the_configured_directory() {
        let dir = std::env::temp_dir().join("sereth_telemetry_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Env mutation is process-global: restore afterwards.
        let old = std::env::var_os("BENCH_ARTIFACT_DIR");
        std::env::set_var("BENCH_ARTIFACT_DIR", &dir);
        let path = sample_snapshot().write_artifact("test").unwrap();
        match old {
            Some(value) => std::env::set_var("BENCH_ARTIFACT_DIR", value),
            None => std::env::remove_var("BENCH_ARTIFACT_DIR"),
        }
        assert_eq!(path, dir.join("TELEMETRY_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"counters\""));
    }
}
