//! Owned snapshots of a registry — mergeable across nodes, queryable
//! for quantiles, and the input to both exporters.

use std::collections::BTreeMap;

use crate::registry::HISTOGRAM_BUCKET_BOUNDS;
use crate::span::BlockTrace;

/// An owned view of one histogram: per-bucket counts (the last slot is
/// the overflow bucket above [`HISTOGRAM_BUCKET_BOUNDS`]) plus the sum
/// of all samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per bucket; `bucket_counts[i]` holds samples `<=
    /// HISTOGRAM_BUCKET_BOUNDS[i]`, the final slot everything above.
    pub bucket_counts: Vec<u64>,
    /// Sum of all recorded samples, nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total samples — derived from the buckets, so it always equals
    /// their sum even against concurrent recording.
    pub fn count(&self) -> u64 {
        self.bucket_counts.iter().sum()
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / count as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds, linearly
    /// interpolated inside the containing bucket; overflow-bucket hits
    /// report the last finite bound. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.bucket_counts.iter().enumerate() {
            cumulative += bucket;
            if (cumulative as f64) >= rank {
                let Some(&upper) = HISTOGRAM_BUCKET_BOUNDS.get(i) else {
                    return *HISTOGRAM_BUCKET_BOUNDS.last().expect("bounds nonempty") as f64;
                };
                let lower = if i == 0 { 0 } else { HISTOGRAM_BUCKET_BOUNDS[i - 1] };
                let into = rank - (cumulative - bucket) as f64;
                let fraction = if bucket == 0 { 1.0 } else { into / bucket as f64 };
                return lower as f64 + fraction * (upper - lower) as f64;
            }
        }
        *HISTOGRAM_BUCKET_BOUNDS.last().expect("bounds nonempty") as f64
    }

    /// Median, nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile, nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile, nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Adds `other`'s samples into `self` (bucket-wise).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bucket_counts.len() < other.bucket_counts.len() {
            self.bucket_counts.resize(other.bucket_counts.len(), 0);
        }
        for (mine, theirs) in self.bucket_counts.iter_mut().zip(&other.bucket_counts) {
            *mine += theirs;
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }
}

/// Everything a [`crate::Telemetry`] knows, as one owned value: counter
/// and gauge readings, histogram distributions, and the recent
/// block-lifecycle traces.
///
/// This is the single accumulation primitive the stack shares — node
/// exec stats, RAA shard sums, and sim per-node metrics all reduce to
/// snapshotting a registry and [`TelemetrySnapshot::merge`]-ing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Latency histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recent per-block phase timelines (bounded ring; newest last).
    pub blocks: Vec<BlockTrace>,
}

impl TelemetrySnapshot {
    /// Folds `other` into `self`: counters add, gauges keep the
    /// maximum (a merged gauge has no single "latest" writer),
    /// histograms merge bucket-wise, block traces append.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(histogram);
        }
        self.blocks.extend(other.blocks.iter().cloned());
    }

    /// Sum of several snapshots (convenience over [`merge`]).
    ///
    /// [`merge`]: TelemetrySnapshot::merge
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a TelemetrySnapshot>) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::default();
        for part in parts {
            out.merge(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_with(samples: &[u64]) -> HistogramSnapshot {
        let registry = crate::Registry::new(true);
        let histogram = registry.histogram("h");
        for &ns in samples {
            histogram.record_ns(ns);
        }
        histogram.snapshot()
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        // 100 samples at ~1µs, 1 sample at ~1s: p50 stays in the first
        // bucket, p99+ must not.
        let mut samples = vec![500u64; 100];
        samples.push(1_000_000_000);
        let snapshot = histogram_with(&samples);
        assert_eq!(snapshot.count(), 101);
        assert!(snapshot.p50_ns() <= 1_000.0);
        assert!(snapshot.p95_ns() <= 1_000.0);
        assert!(snapshot.quantile_ns(1.0) > 500_000_000.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snapshot = HistogramSnapshot::default();
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.p50_ns(), 0.0);
        assert_eq!(snapshot.mean_ns(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_buckets_and_maxes_gauges() {
        let mut a = TelemetrySnapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), 7);
        a.histograms.insert("h".into(), histogram_with(&[1_000]));
        let mut b = TelemetrySnapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("only_b".into(), 1);
        b.gauges.insert("g".into(), 4);
        b.histograms.insert("h".into(), histogram_with(&[2_000, 3_000]));
        a.merge(&b);
        assert_eq!(a.counters["c"], 5);
        assert_eq!(a.counters["only_b"], 1);
        assert_eq!(a.gauges["g"], 7);
        assert_eq!(a.histograms["h"].count(), 3);
        let symmetric = TelemetrySnapshot::merged([&b]);
        assert_eq!(symmetric.counters["c"], 3);
    }
}
