//! The block-lifecycle span API: named phases, a timing helper, and a
//! bounded ring of per-block phase timelines.

use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::{Counter, Gauge, Histogram, Registry};
use crate::snapshot::TelemetrySnapshot;

/// How many recent [`BlockTrace`]s a [`Telemetry`] retains.
pub const BLOCK_TRACE_CAP: usize = 64;

/// The telemetry switch. On by default — the whole layer is designed
/// to be cheap enough to leave running; flipping `enabled` off reduces
/// every record to a cached-branch no-op (and the stats views backed
/// by the registry then read as zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record metrics, spans, and block traces.
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { enabled: true }
    }
}

/// One stage of the block lifecycle, in pipeline order. Each phase owns
/// a latency histogram named `phase.<name>` in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A transaction arriving at the node: dedup, signature/nonce
    /// verification, pool hand-off.
    ReceiveTx,
    /// The pool admitting (or refusing) one transaction.
    Admission,
    /// The miner ordering candidates out of the pool.
    OrderCandidates,
    /// One wave of speculative parallel execution.
    Speculate,
    /// In-order merge + conflict validation of one wave's results.
    Merge,
    /// Assembling and sealing the block (roots, header).
    Seal,
    /// Importing a block into the store (fork choice, bookkeeping).
    Import,
    /// Replay-validating an imported block's execution.
    Validate,
}

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; 8] = [
        Phase::ReceiveTx,
        Phase::Admission,
        Phase::OrderCandidates,
        Phase::Speculate,
        Phase::Merge,
        Phase::Seal,
        Phase::Import,
        Phase::Validate,
    ];

    /// The phase's registry/export name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ReceiveTx => "receive_tx",
            Phase::Admission => "admission",
            Phase::OrderCandidates => "order_candidates",
            Phase::Speculate => "speculate",
            Phase::Merge => "merge",
            Phase::Seal => "seal",
            Phase::Import => "import",
            Phase::Validate => "validate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One block's lifecycle timeline: which phases ran and how long each
/// took, as measured where the block was built, imported, or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTrace {
    /// Block number.
    pub number: u64,
    /// What this node was doing with the block: `"build"` on the miner
    /// path, `"import"` on the store path.
    pub role: &'static str,
    /// `(phase, nanoseconds)` in the order the phases ran.
    pub phase_ns: Vec<(Phase, u64)>,
}

/// The per-node telemetry hub: a [`Registry`] plus the phase
/// histograms and the block-trace ring. Shared by `Arc` across every
/// subsystem of one node.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    registry: Registry,
    phases: [Histogram; Phase::ALL.len()],
    blocks: Mutex<VecDeque<BlockTrace>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A telemetry hub with the given switch.
    pub fn new(config: TelemetryConfig) -> Self {
        let registry = Registry::new(config.enabled);
        let phases = std::array::from_fn(|i| registry.histogram(&format!("phase.{}", Phase::ALL[i].name())));
        Self { enabled: config.enabled, registry, phases, blocks: Mutex::new(VecDeque::new()) }
    }

    /// An enabled hub.
    pub fn enabled() -> Self {
        Self::new(TelemetryConfig { enabled: true })
    }

    /// A disabled hub.
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig { enabled: false })
    }

    /// The shared process-wide disabled hub — the default for call
    /// sites that run without a node (standalone builders, validators,
    /// oracle paths) so they pay only the cached branch.
    pub fn off() -> &'static Telemetry {
        static OFF: OnceLock<Telemetry> = OnceLock::new();
        OFF.get_or_init(Telemetry::disabled)
    }

    /// `true` when this hub records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The counter registered under `name` (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// The gauge registered under `name` (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// The histogram registered under `name` (see
    /// [`Registry::histogram`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// The latency histogram of `phase`.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// Runs `f`, recording its wall time into `phase`'s histogram.
    /// Disabled: calls `f` behind one branch — no clock reads.
    #[inline]
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        self.time_ns(phase, f).0
    }

    /// [`Telemetry::time`] that also returns the measured nanoseconds
    /// (0 when disabled) — what block-trace assembly uses.
    #[inline]
    pub fn time_ns<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> (T, u64) {
        if !self.enabled {
            return (f(), 0);
        }
        let start = Instant::now();
        let out = f();
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.phases[phase.index()].record_ns(ns);
        (out, ns)
    }

    /// Appends one block's phase timeline to the bounded ring (oldest
    /// evicted past [`BLOCK_TRACE_CAP`]). No-op when disabled.
    pub fn trace_block(&self, trace: BlockTrace) {
        if !self.enabled {
            return;
        }
        let mut blocks = self.blocks.lock();
        if blocks.len() == BLOCK_TRACE_CAP {
            blocks.pop_front();
        }
        blocks.push_back(trace);
    }

    /// The retained block traces, oldest first.
    pub fn block_traces(&self) -> Vec<BlockTrace> {
        self.blocks.lock().iter().cloned().collect()
    }

    /// An owned snapshot: every registered metric plus the block-trace
    /// ring. Reads only atomics and the short trace lock — never a
    /// node or subsystem lock.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = self.registry.snapshot();
        snapshot.blocks = self.block_traces();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_enumerate_in_lifecycle_order_with_unique_names() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names[0], "receive_tx");
        assert_eq!(names[7], "validate");
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }

    #[test]
    fn time_records_into_the_phase_histogram() {
        let telemetry = Telemetry::enabled();
        let (value, ns) = telemetry.time_ns(Phase::Seal, || 41 + 1);
        assert_eq!(value, 42);
        let snapshot = telemetry.phase(Phase::Seal).snapshot();
        assert_eq!(snapshot.count(), 1);
        assert!(snapshot.sum_ns >= ns.min(1));
    }

    #[test]
    fn disabled_hub_times_nothing_and_snapshots_empty() {
        let telemetry = Telemetry::disabled();
        let (value, ns) = telemetry.time_ns(Phase::Import, || 7);
        assert_eq!((value, ns), (7, 0));
        telemetry.counter("c").inc();
        telemetry.trace_block(BlockTrace { number: 1, role: "build", phase_ns: vec![] });
        let snapshot = telemetry.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.blocks.is_empty());
        assert!(!telemetry.is_enabled());
        assert!(!Telemetry::off().is_enabled());
    }

    #[test]
    fn block_trace_ring_is_bounded() {
        let telemetry = Telemetry::enabled();
        for number in 0..(BLOCK_TRACE_CAP as u64 + 10) {
            telemetry.trace_block(BlockTrace { number, role: "build", phase_ns: vec![] });
        }
        let traces = telemetry.block_traces();
        assert_eq!(traces.len(), BLOCK_TRACE_CAP);
        assert_eq!(traces.first().unwrap().number, 10);
        assert_eq!(traces.last().unwrap().number, BLOCK_TRACE_CAP as u64 + 9);
    }

    #[test]
    fn snapshot_carries_phase_histograms_and_traces() {
        let telemetry = Telemetry::enabled();
        telemetry.time(Phase::Speculate, || std::hint::black_box(0));
        telemetry.trace_block(BlockTrace {
            number: 3,
            role: "import",
            phase_ns: vec![(Phase::Validate, 1_000)],
        });
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.histograms["phase.speculate"].count(), 1);
        assert_eq!(snapshot.blocks.len(), 1);
        assert_eq!(snapshot.blocks[0].role, "import");
    }
}
