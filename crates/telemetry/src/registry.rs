//! The lock-free metrics registry: atomic counters, gauges, and
//! fixed-bucket latency histograms, keyed by name.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`'d atomic cells. They cache the registry's on/off switch, so a
//! disabled handle's record path is one branch — no atomics touched.
//! The registry's name maps are behind `RwLock`s, but those are only
//! taken to *create or look up* a handle; recording never locks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// Upper bounds (inclusive, nanoseconds) of the histogram buckets: an
/// exponential ladder from 1µs to ~33.5s. Samples above the last bound
/// land in one extra overflow bucket, so a [`HistogramSnapshot`] carries
/// `HISTOGRAM_BUCKET_BOUNDS.len() + 1` counts.
pub const HISTOGRAM_BUCKET_BOUNDS: [u64; 26] = {
    let mut bounds = [0u64; 26];
    let mut i = 0;
    while i < 26 {
        bounds[i] = 1_000u64 << i;
        i += 1;
    }
    bounds
};

/// Number of bucket slots including the overflow bucket.
pub(crate) const NUM_BUCKETS: usize = HISTOGRAM_BUCKET_BOUNDS.len() + 1;

/// Index of the bucket a sample of `ns` nanoseconds falls into.
fn bucket_index(ns: u64) -> usize {
    // The bounds are `1000 << i`, so the index is computable without a
    // scan — but a short scan over 26 u64s is branch-predictable and
    // avoids off-by-one traps; record cost is dominated by the two
    // `fetch_add`s either way.
    HISTOGRAM_BUCKET_BOUNDS.iter().position(|&bound| ns <= bound).unwrap_or(NUM_BUCKETS - 1)
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    on: bool,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter that records nothing and always reads 0 — what a
    /// disabled registry hands out.
    fn off() -> Self {
        Self { on: false, cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value gauge. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    on: bool,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn off() -> Self {
        Self { on: false, cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        if self.on {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The shared cell behind a [`Histogram`].
#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum_ns: AtomicU64::new(0) }
    }
}

impl HistogramCell {
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bucket_counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket latency histogram over nanosecond samples. The total
/// count is *derived* from the bucket counts (never stored separately),
/// so a concurrent snapshot can never report a count that disagrees
/// with its buckets. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Histogram {
    on: bool,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    fn off() -> Self {
        Self { on: false, cell: Arc::new(HistogramCell::default()) }
    }

    /// `true` when records actually land (cached registry switch) —
    /// callers use this to skip clock reads entirely when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if self.on {
            self.cell.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
            self.cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// An owned snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

/// The name-keyed registry. One per [`crate::Telemetry`]; subsystems
/// call [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] once at construction and keep the handles.
///
/// Handle creation is get-or-create: the same name always resolves to
/// the same cell, so two subsystems naming the same counter share it.
#[derive(Debug)]
pub struct Registry {
    on: bool,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCell>>>,
}

impl Registry {
    /// A registry with the given switch. Disabled registries hand out
    /// inert handles and stay empty — their snapshot has no entries.
    pub fn new(enabled: bool) -> Self {
        Self {
            on: enabled,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// `true` when this registry records.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        if !self.on {
            return Counter::off();
        }
        Counter { on: true, cell: get_or_create(&self.counters, name, || Arc::new(AtomicU64::new(0))) }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.on {
            return Gauge::off();
        }
        Gauge { on: true, cell: get_or_create(&self.gauges, name, || Arc::new(AtomicU64::new(0))) }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.on {
            return Histogram::off();
        }
        Histogram {
            on: true,
            cell: get_or_create(&self.histograms, name, || Arc::new(HistogramCell::default())),
        }
    }

    /// An owned snapshot of every registered metric. Block traces live
    /// on [`crate::Telemetry`], which layers them in.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.snapshot()))
                .collect(),
            blocks: Vec::new(),
        }
    }
}

fn get_or_create<T: Clone>(map: &RwLock<BTreeMap<String, T>>, name: &str, make: impl FnOnce() -> T) -> T {
    if let Some(existing) = map.read().get(name) {
        return existing.clone();
    }
    map.write().entry(name.to_string()).or_insert_with(make).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_exponential_from_one_microsecond() {
        assert_eq!(HISTOGRAM_BUCKET_BOUNDS[0], 1_000);
        assert_eq!(HISTOGRAM_BUCKET_BOUNDS[1], 2_000);
        for window in HISTOGRAM_BUCKET_BOUNDS.windows(2) {
            assert_eq!(window[1], window[0] * 2);
        }
    }

    #[test]
    fn bucket_index_respects_inclusive_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn same_name_shares_the_cell() {
        let registry = Registry::new(true);
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(registry.counter("x").get(), 7);
    }

    #[test]
    fn disabled_registry_records_nothing_and_stays_empty() {
        let registry = Registry::new(false);
        let counter = registry.counter("x");
        counter.add(10);
        registry.gauge("g").set(5);
        let histogram = registry.histogram("h");
        histogram.record_ns(1_234);
        assert_eq!(counter.get(), 0);
        assert!(!histogram.is_enabled());
        let snapshot = registry.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.histograms.is_empty());
    }

    #[test]
    fn histogram_count_is_sum_of_buckets() {
        let registry = Registry::new(true);
        let histogram = registry.histogram("h");
        for ns in [10, 1_000, 5_000, 1_000_000, u64::MAX] {
            histogram.record_ns(ns);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 5);
        assert_eq!(snapshot.count(), snapshot.bucket_counts.iter().sum::<u64>());
        // Overflow landed in the last slot.
        assert_eq!(snapshot.bucket_counts[NUM_BUCKETS - 1], 1);
    }
}
