//! Unified telemetry: a lock-free metrics registry, block-lifecycle
//! phase tracing, and exportable snapshots.
//!
//! Every subsystem of the stack (pool, executor, store, RAA service,
//! node) records into one [`Registry`] of atomic counters, gauges, and
//! fixed-bucket latency histograms. A lightweight span API
//! ([`Telemetry::time`]) stamps the block lifecycle as structured phase
//! timings (`receive_tx → admission → order_candidates → speculate /
//! merge → seal → import → validate`), cheap enough to stay on by
//! default and near-zero cost when disabled through
//! [`TelemetryConfig`].
//!
//! # Reading it back
//!
//! [`Telemetry::snapshot`] produces a [`TelemetrySnapshot`] — a plain
//! owned value that merges across nodes
//! ([`TelemetrySnapshot::merge`]), renders as Prometheus exposition
//! text ([`TelemetrySnapshot::to_prometheus`]), renders as JSON
//! ([`TelemetrySnapshot::to_json`]), and writes `TELEMETRY_<key>.json`
//! artifacts next to the `BENCH_*.json` files
//! ([`TelemetrySnapshot::write_artifact`]).
//!
//! # Cost model
//!
//! * Recording: one relaxed `fetch_add` per counter bump; two
//!   `Instant::now` calls plus two relaxed `fetch_add`s per timed span.
//! * Disabled: every handle caches the off switch, so a record is a
//!   single predictable branch — no atomics, no clock reads, and the
//!   registry maps stay empty.
//! * Snapshots: never block recorders (handles are plain atomics; the
//!   registry's name maps are only locked to *create* handles, which
//!   hot paths do once at construction).
//!
//! Snapshot consistency is *per-cell*: counters are monotone and a
//! histogram's derived count always equals the sum of its bucket
//! counts (the count is not stored separately, so it cannot tear).
//!
//! # Examples
//!
//! ```
//! use sereth_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! let imported = telemetry.counter("node.blocks_imported");
//! imported.inc();
//! imported.add(2);
//!
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counters.get("node.blocks_imported"), Some(&3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKET_BOUNDS};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};
pub use span::{BlockTrace, Phase, Telemetry, TelemetryConfig, BLOCK_TRACE_CAP};
