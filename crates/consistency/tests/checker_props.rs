//! Property tests for the unified ladder checker.
//!
//! Two bounds, mirroring `mutations.rs`:
//!
//! * **no false alarms** — histories produced by honestly running the
//!   market state machine (with an honest read log) carry zero
//!   violations and hold at *every* rung of the isolation ladder;
//! * **no blind spots, right rung** — each seeded anomaly class (G0
//!   dirty-write cycle, G1a read of never-committed or later-committed
//!   state, lost update) is caught and pinned to the *weakest* isolation
//!   level that forbids it, leaving the rungs below intact.

use proptest::prelude::*;
use sereth_consistency::record::{History, MarketOp, MarketSpec, ReadRecord, TxRecord};
use sereth_consistency::{Anomaly, AnomalyChecker, Checker, FullChecker, IsolationLevel, Report};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::compute_mark;
use sereth_crypto::{Address, H256};

/// One abstract step of a generated history.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// A set chaining correctly on the tail, with this new price.
    FreshSet(u64),
    /// A set carrying a mark that never committed (fails, no-op).
    StaleSet,
    /// A buy offering exactly the open interval.
    FreshBuy,
    /// A buy offering an *older committed* interval (fails, no-op) —
    /// a lagged-but-honest read, not a dirty one.
    LaggedBuy,
    /// A client observation of the committed tail, logged honestly.
    Observe,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..1_000).prop_map(Step::FreshSet),
        Just(Step::StaleSet),
        Just(Step::FreshBuy),
        Just(Step::LaggedBuy),
        Just(Step::Observe),
    ]
}

const OWNER: u64 = 1;
const BUYERS: [u64; 3] = [10, 11, 12];

fn record(i: usize, sender: u64, nonce: u64, op: MarketOp, effective: bool) -> TxRecord {
    TxRecord {
        tx_hash: H256::keccak(format!("tx-{i}").as_bytes()),
        sender: Address::from_low_u64(sender),
        nonce,
        block_number: 1 + (i as u64) / 8,
        index_in_block: (i % 8) as u32,
        op,
        effective,
    }
}

/// Runs the market state machine over `steps`, emitting a valid history
/// with an honest read log: every logged observation is of a mark that
/// had committed by the serving height.
fn build_history(spec: &MarketSpec, steps: &[Step]) -> History {
    let mut tail = spec.genesis_mark;
    let mut value = spec.initial_value;
    // Every committed (mark, value) with the block it committed in —
    // the pool honest observations draw from. Genesis counts.
    let mut committed: Vec<(H256, H256, u64)> = vec![(tail, value, 0)];
    let mut nonces: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut records = Vec::new();
    let mut reads = Vec::new();

    for (i, step) in steps.iter().enumerate() {
        let block_number = 1 + (i as u64) / 8;
        let (sender_label, op, effective) = match step {
            Step::FreshSet(price) => {
                let fpv = Fpv::new(Flag::Success, tail, H256::from_low_u64(*price));
                tail = compute_mark(&fpv.prev_mark, &fpv.value);
                value = fpv.value;
                committed.push((tail, value, block_number));
                (OWNER, MarketOp::Set(fpv), true)
            }
            Step::StaleSet => {
                let never = H256::keccak(format!("stale-{i}").as_bytes());
                (OWNER, MarketOp::Set(Fpv::new(Flag::Success, never, H256::from_low_u64(7))), false)
            }
            Step::FreshBuy => {
                let buyer = BUYERS[i % BUYERS.len()];
                (buyer, MarketOp::Buy(Fpv::new(Flag::Success, tail, value)), true)
            }
            Step::LaggedBuy => {
                let buyer = BUYERS[i % BUYERS.len()];
                let (old_mark, old_value, _) = committed[i % committed.len()];
                let stale = old_mark != tail;
                (buyer, MarketOp::Buy(Fpv::new(Flag::Success, old_mark, old_value)), !stale)
            }
            Step::Observe => {
                let (mark, observed_value, committed_at) = *committed.last().expect("genesis");
                reads.push(ReadRecord {
                    reader: Address::from_low_u64(BUYERS[i % BUYERS.len()]),
                    at_height: committed_at.max(block_number),
                    observed_mark: mark,
                    observed_value,
                });
                continue;
            }
        };
        let nonce = nonces.entry(sender_label).or_insert(0);
        records.push(record(i, sender_label, *nonce, op, effective));
        *nonce += 1;
    }
    History::from_records(records).with_reads(reads)
}

/// The ladder invariant every report must satisfy: once a rung breaks,
/// every stronger rung above it is broken too.
fn assert_monotone(report: &Report) {
    for pair in IsolationLevel::ALL.windows(2) {
        assert!(
            report.holds_at(pair[0]) || !report.holds_at(pair[1]),
            "{} broken but {} holds",
            pair[0],
            pair[1]
        );
    }
}

proptest! {
    /// Honest histories carry zero violations and hold at every rung.
    #[test]
    fn clean_histories_hold_at_every_rung(
        steps in proptest::collection::vec(step_strategy(), 1..60)
    ) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let report = FullChecker { spec }.check(&history);
        prop_assert!(report.violations.is_empty(), "false alarm: {:?}", report.violations);
        for level in IsolationLevel::ALL {
            prop_assert!(report.holds_at(level));
        }
    }

    /// A buy offering a mark that never committed (the offer was built
    /// from an aborted speculative read) is caught wherever it lands,
    /// pinned to read-committed, and leaves read-uncommitted intact.
    #[test]
    fn injected_aborted_read_pins_to_read_committed(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        position in 0usize..40,
    ) {
        let spec = MarketSpec::example();
        let mut history = build_history(&spec, &steps);
        let mut records = history.records().to_vec();
        let at = position.min(records.len());
        let never = H256::keccak(b"speculated-then-aborted");
        records.insert(
            at,
            record(900, 0x999, 0, MarketOp::Buy(Fpv::new(Flag::Success, never, spec.initial_value)), false),
        );
        history = History::from_records(records).with_reads(history.reads().to_vec());
        let report = AnomalyChecker { spec }.check(&history);
        prop_assert!(report.holds_at(IsolationLevel::ReadUncommitted), "G0 is about writes, not reads");
        prop_assert!(!report.holds_at(IsolationLevel::ReadCommitted));
        prop_assert!(report.violations.iter().all(|violation| matches!(
            violation.anomaly,
            Anomaly::DirtyReadCommitted { committed_later: false, .. }
        )), "only the seeded anomaly fires: {:?}", report.violations);
        assert_monotone(&report);
    }
}

#[test]
fn g0_dirty_write_cycle_pins_to_read_uncommitted() {
    let spec = MarketSpec::example();
    // The first committed set chains on a mark only *produced* by the
    // second — a write-on-uncommitted-write cycle no real import could
    // serialize. Forbidden already at the ladder's weakest rung.
    let value_late = H256::from_low_u64(60);
    let mark_late = compute_mark(&spec.genesis_mark, &value_late);
    let early = Fpv::new(Flag::Success, mark_late, H256::from_low_u64(70));
    let late = Fpv::new(Flag::Head, spec.genesis_mark, value_late);
    let history = History::from_records(vec![
        record(0, OWNER, 0, MarketOp::Set(early), true),
        record(1, 2, 0, MarketOp::Set(late), true),
    ]);
    let report = AnomalyChecker { spec }.check(&history);
    assert!(
        report.violations.iter().any(|violation| matches!(violation.anomaly, Anomaly::DirtyWrite { .. })
            && violation.forbidden_at == IsolationLevel::ReadUncommitted),
        "{:?}",
        report.violations
    );
    for level in IsolationLevel::ALL {
        assert!(!report.holds_at(level), "a G0 cycle breaks every rung, including {level}");
    }
    assert_monotone(&report);
}

#[test]
fn speculative_offer_committed_later_pins_to_read_committed() {
    let spec = MarketSpec::example();
    // The buy offers the set's interval *before* that set commits: a
    // dirty read the paper's client makes deliberately. Legal at
    // read-uncommitted, forbidden from read-committed up.
    let value = H256::from_low_u64(60);
    let mark = compute_mark(&spec.genesis_mark, &value);
    let history = History::from_records(vec![
        record(0, BUYERS[0], 0, MarketOp::Buy(Fpv::new(Flag::Success, mark, value)), true),
        record(1, OWNER, 0, MarketOp::Set(Fpv::new(Flag::Head, spec.genesis_mark, value)), true),
    ]);
    let report = AnomalyChecker { spec }.check(&history);
    let seeded: Vec<_> = report
        .violations
        .iter()
        .filter(|violation| {
            matches!(violation.anomaly, Anomaly::DirtyReadCommitted { committed_later: true, .. })
        })
        .collect();
    assert_eq!(seeded.len(), 1, "{:?}", report.violations);
    assert_eq!(seeded[0].forbidden_at, IsolationLevel::ReadCommitted);
    assert!(report.holds_at(IsolationLevel::ReadUncommitted), "the weak rung permits it");
    assert!(!report.holds_at(IsolationLevel::ReadCommitted));
    assert_monotone(&report);
}

#[test]
fn dirty_observation_pins_to_read_committed() {
    let spec = MarketSpec::example();
    // The logged read saw the set's mark while the serving node's
    // committed head was still below the block that carried it.
    let value = H256::from_low_u64(60);
    let mark = compute_mark(&spec.genesis_mark, &value);
    let mut set = record(8, OWNER, 0, MarketOp::Set(Fpv::new(Flag::Head, spec.genesis_mark, value)), true);
    set.block_number = 2;
    let history = History::from_records(vec![set]).with_reads(vec![ReadRecord {
        reader: Address::from_low_u64(BUYERS[0]),
        at_height: 1,
        observed_mark: mark,
        observed_value: value,
    }]);
    let report = AnomalyChecker { spec }.check(&history);
    let seeded: Vec<_> = report
        .violations
        .iter()
        .filter(|violation| {
            matches!(violation.anomaly, Anomaly::DirtyReadObserved { committed_later: true, .. })
        })
        .collect();
    assert_eq!(seeded.len(), 1, "{:?}", report.violations);
    assert_eq!(seeded[0].forbidden_at, IsolationLevel::ReadCommitted);
    assert!(report.holds_at(IsolationLevel::ReadUncommitted));
    assert!(!report.holds_at(IsolationLevel::ReadCommitted));
    assert_monotone(&report);
}

#[test]
fn lost_update_pins_to_sequential() {
    let spec = MarketSpec::example();
    // Two effective sets chain on the *same* prior mark: the second
    // overwrote the first without observing it. The committed chain's
    // CAS makes this impossible for real imports, so only the top rung
    // forbids it — and only the top rung must break.
    let history = History::from_records(vec![
        record(
            0,
            OWNER,
            0,
            MarketOp::Set(Fpv::new(Flag::Head, spec.genesis_mark, H256::from_low_u64(60))),
            true,
        ),
        record(1, 2, 0, MarketOp::Set(Fpv::new(Flag::Head, spec.genesis_mark, H256::from_low_u64(70))), true),
    ]);
    let report = AnomalyChecker { spec }.check(&history);
    let seeded: Vec<_> = report
        .violations
        .iter()
        .filter(|violation| matches!(violation.anomaly, Anomaly::LostUpdate { .. }))
        .collect();
    assert_eq!(seeded.len(), 1, "{:?}", report.violations);
    assert_eq!(seeded[0].forbidden_at, IsolationLevel::Sequential);
    assert!(report.holds_at(IsolationLevel::ReadUncommitted));
    assert!(report.holds_at(IsolationLevel::ReadCommitted), "lost updates are legal below sequential");
    assert!(!report.holds_at(IsolationLevel::Sequential));
    assert_monotone(&report);
}
