//! Mutation-based property tests for the history checkers.
//!
//! The generator builds *valid* histories by actually running the market
//! state machine, so the positive property ("valid histories pass") and
//! the negative properties ("every mutation of a valid history is caught")
//! bound the checkers from both sides: no false alarms, no blind spots.

use proptest::prelude::*;
use sereth_consistency::record::{History, MarketOp, MarketSpec, TxRecord};
use sereth_consistency::{seqcon, sss};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::compute_mark;
use sereth_crypto::{Address, H256};

/// One abstract step of a generated history.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// A set chaining correctly on the tail, with this new price.
    FreshSet(u64),
    /// A set carrying a stale mark (the paper's failed transaction).
    StaleSet,
    /// A buy offering exactly the open interval.
    FreshBuy,
    /// A buy offering a stale interval.
    StaleBuy,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..1_000).prop_map(Step::FreshSet),
        Just(Step::StaleSet),
        Just(Step::FreshBuy),
        Just(Step::StaleBuy),
    ]
}

const OWNER: u64 = 1;
const BUYERS: [u64; 3] = [10, 11, 12];

/// Runs the market state machine over `steps`, emitting a valid history.
fn build_history(spec: &MarketSpec, steps: &[Step]) -> History {
    let mut tail = spec.genesis_mark;
    let mut value = spec.initial_value;
    let mut nonces: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut records = Vec::new();

    for (i, step) in steps.iter().enumerate() {
        let stale_mark = H256::keccak(format!("stale-{i}").as_bytes());
        let (sender_label, op, effective) = match step {
            Step::FreshSet(price) => {
                let fpv = Fpv::new(Flag::Success, tail, H256::from_low_u64(*price));
                tail = compute_mark(&fpv.prev_mark, &fpv.value);
                value = fpv.value;
                (OWNER, MarketOp::Set(fpv), true)
            }
            Step::StaleSet => {
                (OWNER, MarketOp::Set(Fpv::new(Flag::Success, stale_mark, H256::from_low_u64(7))), false)
            }
            Step::FreshBuy => {
                let buyer = BUYERS[i % BUYERS.len()];
                (buyer, MarketOp::Buy(Fpv::new(Flag::Success, tail, value)), true)
            }
            Step::StaleBuy => {
                let buyer = BUYERS[i % BUYERS.len()];
                (buyer, MarketOp::Buy(Fpv::new(Flag::Success, stale_mark, value)), false)
            }
        };
        let nonce = nonces.entry(sender_label).or_insert(0);
        records.push(TxRecord {
            tx_hash: H256::keccak(format!("tx-{i}").as_bytes()),
            sender: Address::from_low_u64(sender_label),
            nonce: *nonce,
            block_number: 1 + (i as u64) / 8,
            index_in_block: (i % 8) as u32,
            op,
            effective,
        });
        *nonce += 1;
    }
    History::from_records(records)
}

fn checked(spec: &MarketSpec, history: &History) -> (usize, usize) {
    let seq = seqcon::check(history).len();
    let sss_report = sss::check(spec, history);
    (seq, sss_report.violations.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_histories_pass_both_checkers(steps in proptest::collection::vec(step_strategy(), 0..60)) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let (seq, sss_violations) = checked(&spec, &history);
        prop_assert_eq!(seq, 0);
        prop_assert_eq!(sss_violations, 0);
    }

    #[test]
    fn interval_counts_match_the_generator(steps in proptest::collection::vec(step_strategy(), 0..60)) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let report = sss::check(&spec, &history);
        let fresh_sets = steps.iter().filter(|s| matches!(s, Step::FreshSet(_))).count();
        let fresh_buys = steps.iter().filter(|s| matches!(s, Step::FreshBuy)).count();
        prop_assert_eq!(report.intervals, fresh_sets);
        prop_assert_eq!(report.buys_per_interval.iter().sum::<usize>(), fresh_buys);
    }

    #[test]
    fn flipping_any_effect_bit_is_caught(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        pick in any::<proptest::sample::Index>(),
    ) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let mut records = history.records().to_vec();
        let index = pick.index(records.len());
        records[index].effective = !records[index].effective;
        let mutated = History::from_records(records);
        let report = sss::check(&spec, &mutated);
        prop_assert!(
            !report.holds(),
            "flipped record {} ({:?}) went unnoticed",
            index,
            steps[index]
        );
    }

    #[test]
    fn corrupting_an_effective_set_mark_is_caught(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        pick in any::<proptest::sample::Index>(),
    ) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let mut records = history.records().to_vec();
        let set_positions: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.effective && matches!(r.op, MarketOp::Set(_)))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!set_positions.is_empty());
        let target = set_positions[pick.index(set_positions.len())];
        if let MarketOp::Set(fpv) = &mut records[target].op {
            fpv.prev_mark = H256::keccak(b"corrupted");
        }
        let mutated = History::from_records(records);
        prop_assert!(!sss::check(&spec, &mutated).holds());
    }

    #[test]
    fn reordering_two_effective_sets_is_caught(
        steps in proptest::collection::vec(step_strategy(), 2..60),
        pick in any::<proptest::sample::Index>(),
    ) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let mut records = history.records().to_vec();
        let set_positions: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.effective && matches!(r.op, MarketOp::Set(_)))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(set_positions.len() >= 2);
        let first = set_positions[pick.index(set_positions.len() - 1)];
        let second = set_positions[set_positions.iter().position(|&p| p == first).unwrap() + 1];
        // Swap the two set *operations* while leaving everything else in
        // place — strictness of the serialization must notice.
        let tmp = records[first].op.clone();
        records[first].op = records[second].op.clone();
        records[second].op = tmp;
        let mutated = History::from_records(records);
        prop_assert!(!sss::check(&spec, &mutated).holds());
    }

    #[test]
    fn inverting_one_senders_nonces_is_caught(
        steps in proptest::collection::vec(step_strategy(), 2..60),
        pick in any::<proptest::sample::Index>(),
    ) {
        let spec = MarketSpec::example();
        let history = build_history(&spec, &steps);
        let mut records = history.records().to_vec();
        // Find a sender with at least two records.
        let mut by_sender: std::collections::HashMap<_, Vec<usize>> = Default::default();
        for (i, r) in records.iter().enumerate() {
            by_sender.entry(r.sender).or_default().push(i);
        }
        let multi: Vec<&Vec<usize>> = by_sender.values().filter(|v| v.len() >= 2).collect();
        prop_assume!(!multi.is_empty());
        let positions = multi[pick.index(multi.len())];
        let (a, b) = (positions[0], positions[1]);
        let tmp = records[a].nonce;
        records[a].nonce = records[b].nonce;
        records[b].nonce = tmp;
        let mutated = History::from_records(records);
        prop_assert!(!seqcon::check(&mutated).is_empty(), "nonce inversion went unnoticed");
    }
}
