//! History extraction from real blocks: selector filtering, receipt
//! joining, and end-to-end checker behaviour on hand-built chains.

use bytes::Bytes;
use sereth_consistency::record::{History, MarketOp, MarketSpec};
use sereth_consistency::{seqcon, sss};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::sig::SecretKey;
use sereth_crypto::{Address, H256};
use sereth_types::receipt::{Log, Receipt, TxStatus};
use sereth_types::{Block, BlockHeader, Transaction, TxPayload};

fn spec() -> MarketSpec {
    MarketSpec {
        contract: Address::from_low_u64(0xc0ffee),
        set_selector: [1, 2, 3, 4],
        buy_selector: [5, 6, 7, 8],
        set_ok_topic: H256::from_low_u64(0x5e7),
        buy_ok_topic: H256::from_low_u64(0xb01),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(50),
    }
}

fn tx(key: &SecretKey, nonce: u64, to: Address, input: Bytes) -> Transaction {
    Transaction::sign(
        TxPayload { nonce, gas_price: 1, gas_limit: 100_000, to: Some(to), value: Default::default(), input },
        key,
    )
}

fn receipt_for(tx: &Transaction, index: u32, contract: Address, ok_topic: Option<H256>) -> Receipt {
    let logs = ok_topic
        .map(|topic| vec![Log { address: contract, topics: vec![topic], data: Bytes::new() }])
        .unwrap_or_default();
    Receipt { tx_hash: tx.hash(), index, status: TxStatus::Success, gas_used: 30_000, logs }
}

fn block(number: u64, transactions: Vec<Transaction>) -> Block {
    Block {
        header: BlockHeader {
            parent_hash: H256::from_low_u64(number.wrapping_sub(1)),
            number,
            timestamp_ms: number * 15_000,
            miner: Address::from_low_u64(0xc0b0),
            state_root: H256::ZERO,
            tx_root: H256::ZERO,
            receipts_root: H256::ZERO,
            gas_used: 0,
            gas_limit: 8_000_000,
        },
        transactions,
    }
}

#[test]
fn extraction_filters_foreign_traffic_and_joins_receipts() {
    let spec = spec();
    let owner = SecretKey::from_label(1);
    let stranger = SecretKey::from_label(2);

    let m0 = spec.genesis_mark;
    let set = tx(
        &owner,
        0,
        spec.contract,
        Fpv::new(Flag::Head, m0, H256::from_low_u64(60)).to_calldata(spec.set_selector),
    );
    // Foreign traffic: wrong contract, wrong selector, plain transfer.
    let wrong_contract = tx(
        &stranger,
        0,
        Address::from_low_u64(0xdead),
        Fpv::new(Flag::Head, m0, H256::from_low_u64(1)).to_calldata(spec.set_selector),
    );
    let wrong_selector = tx(
        &stranger,
        1,
        spec.contract,
        Fpv::new(Flag::Head, m0, H256::from_low_u64(1)).to_calldata([9, 9, 9, 9]),
    );
    let transfer = tx(&stranger, 2, spec.contract, Bytes::new());

    let receipts = vec![
        receipt_for(&set, 0, spec.contract, Some(spec.set_ok_topic)),
        receipt_for(&wrong_contract, 1, spec.contract, None),
        receipt_for(&wrong_selector, 2, spec.contract, None),
        receipt_for(&transfer, 3, spec.contract, None),
    ];
    let b = block(1, vec![set.clone(), wrong_contract, wrong_selector, transfer]);
    let history = History::from_blocks(&spec, [(&b, receipts.as_slice())]);

    assert_eq!(history.len(), 1, "only the market call survives filtering");
    let record = &history.records()[0];
    assert_eq!(record.tx_hash, set.hash());
    assert!(record.effective, "the SetOk receipt was joined");
    assert!(matches!(record.op, MarketOp::Set(_)));
    assert_eq!(record.block_number, 1);
    assert_eq!(record.index_in_block, 0);
}

#[test]
fn extraction_spans_blocks_in_commit_order_and_audits_pass() {
    let spec = spec();
    let owner = SecretKey::from_label(1);
    let buyer = SecretKey::from_label(3);

    let m0 = spec.genesis_mark;
    let v1 = H256::from_low_u64(60);
    let m1 = compute_mark(&m0, &v1);

    let set = tx(&owner, 0, spec.contract, Fpv::new(Flag::Head, m0, v1).to_calldata(spec.set_selector));
    let fresh_buy =
        tx(&buyer, 0, spec.contract, Fpv::new(Flag::Success, m1, v1).to_calldata(spec.buy_selector));
    let stale_buy = tx(
        &buyer,
        1,
        spec.contract,
        Fpv::new(Flag::Success, m0, spec.initial_value).to_calldata(spec.buy_selector),
    );

    let b1 = block(1, vec![set.clone()]);
    let r1 = vec![receipt_for(&set, 0, spec.contract, Some(spec.set_ok_topic))];
    let b2 = block(2, vec![fresh_buy.clone(), stale_buy.clone()]);
    let r2 = vec![
        receipt_for(&fresh_buy, 0, spec.contract, Some(spec.buy_ok_topic)),
        receipt_for(&stale_buy, 1, spec.contract, None),
    ];

    let history = History::from_blocks(&spec, [(&b1, r1.as_slice()), (&b2, r2.as_slice())]);
    assert_eq!(history.len(), 3);
    assert_eq!(history.tallies(), (1, 0, 1, 1));

    assert!(seqcon::check(&history).is_empty());
    let report = sss::check(&spec, &history);
    assert!(report.holds(), "{:?}", report.violations);
    assert_eq!(report.intervals, 1);
    assert_eq!(report.buys_per_interval, vec![0, 1]);
}

#[test]
fn replayed_effective_set_is_caught() {
    // The same (prev_mark, value) committed effective twice: the second
    // occurrence cannot chain (the tail advanced past it) — strictness
    // catches replays even when the payload is byte-identical.
    let spec = spec();
    let owner = SecretKey::from_label(1);
    let m0 = spec.genesis_mark;
    let v1 = H256::from_low_u64(60);

    let first = tx(&owner, 0, spec.contract, Fpv::new(Flag::Head, m0, v1).to_calldata(spec.set_selector));
    let replay = tx(&owner, 1, spec.contract, Fpv::new(Flag::Head, m0, v1).to_calldata(spec.set_selector));
    let b = block(1, vec![first.clone(), replay.clone()]);
    let receipts = vec![
        receipt_for(&first, 0, spec.contract, Some(spec.set_ok_topic)),
        receipt_for(&replay, 1, spec.contract, Some(spec.set_ok_topic)),
    ];
    let history = History::from_blocks(&spec, [(&b, receipts.as_slice())]);
    let report = sss::check(&spec, &history);
    assert_eq!(report.violations.len(), 1);
    assert!(matches!(report.violations[0], sereth_consistency::SssViolation::SetChainBroken { .. }));
}

#[test]
fn truncated_calldata_is_skipped_not_crashed() {
    let spec = spec();
    let owner = SecretKey::from_label(1);
    // A market-addressed transaction whose calldata is the selector plus
    // one malformed word — not a decodable FPV.
    let short = tx(&owner, 0, spec.contract, Bytes::from(vec![1, 2, 3, 4, 0xff]));
    let b = block(1, vec![short.clone()]);
    let receipts = vec![receipt_for(&short, 0, spec.contract, None)];
    let history = History::from_blocks(&spec, [(&b, receipts.as_slice())]);
    assert!(history.is_empty(), "undecodable calldata is foreign traffic");
}
