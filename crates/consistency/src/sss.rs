//! Selective Strict Serialization (SSS) for HMS histories.
//!
//! Spear et al. ("Ordering-Based Semantics for Software Transactional
//! Memory", OPODIS 2008) define SSS as a condition where *some*
//! transactions are strictly serialized while the rest are only *marked
//! to* the serialized history. Paper §VI observes the correspondence with
//! HMS — sets have "a fixed ordering" while "multiple buys can occur in a
//! price interval and … within the interval any order of buys is valid" —
//! and leaves proving it as future work. This module is the executable
//! version of that condition for committed chains:
//!
//! * **Strict serialization of sets.** Replaying the commit order, every
//!   *effective* set must chain exactly onto the current tail of the mark
//!   chain (`prev_mark == tail`), advancing the tail to
//!   `keccak(prev_mark ‖ value)`. Every *ineffective* set must have been
//!   genuinely stale (`prev_mark != tail` at its position).
//!
//! * **Marking of buys.** Every *effective* buy's offer must match the
//!   open interval exactly — `(prev_mark, value) == (tail, current
//!   value)` — which pins it between two specific sets. Every
//!   *ineffective* buy must mismatch. No constraint relates two buys in
//!   the same interval: that freedom is the "selective" in SSS, and it is
//!   what lets the semantic miner reorder buys within an interval without
//!   violating correctness.
//!
//! The checker is an independent oracle: it recomputes the market's state
//! machine from calldata alone and compares against the effects the chain
//! recorded.

use sereth_core::mark::compute_mark;
use sereth_crypto::hash::H256;

use crate::record::{History, MarketOp, MarketSpec};

/// A way a committed history can fail Selective Strict Serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SssViolation {
    /// An effective set did not chain onto the serialization's tail.
    SetChainBroken {
        /// The offending transaction.
        tx: H256,
        /// The tail mark the serialization had reached.
        expected_prev: H256,
        /// The mark the set actually chained on.
        found_prev: H256,
    },
    /// A set the chain recorded as a no-op actually matched the tail —
    /// it should have taken effect.
    SetWronglyFailed {
        /// The offending transaction.
        tx: H256,
    },
    /// An effective buy whose offer does not match the interval it
    /// committed in (wrong mark, wrong value, or both).
    BuyOutsideInterval {
        /// The offending transaction.
        tx: H256,
        /// The interval's mark at the buy's commit position.
        interval_mark: H256,
        /// The interval's value.
        interval_value: H256,
        /// The offer's mark.
        offer_mark: H256,
        /// The offer's value.
        offer_value: H256,
    },
    /// A buy the chain recorded as a no-op actually matched the open
    /// interval — it should have succeeded.
    BuyWronglyFailed {
        /// The offending transaction.
        tx: H256,
    },
}

impl core::fmt::Display for SssViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::SetChainBroken { tx, .. } => write!(f, "set {tx:?} broke the strict serialization"),
            Self::SetWronglyFailed { tx } => write!(f, "set {tx:?} matched the tail but was a no-op"),
            Self::BuyOutsideInterval { tx, .. } => {
                write!(f, "buy {tx:?} took effect outside its marked interval")
            }
            Self::BuyWronglyFailed { tx } => {
                write!(f, "buy {tx:?} matched the open interval but was a no-op")
            }
        }
    }
}

/// The outcome of an SSS check.
#[derive(Debug, Clone, Default)]
pub struct SssReport {
    /// Everything that broke; empty means the history satisfies SSS.
    pub violations: Vec<SssViolation>,
    /// Number of intervals the serialization opened (effective sets).
    pub intervals: usize,
    /// Effective buys, by the interval index they landed in (interval 0
    /// is the genesis interval, before any committed set).
    pub buys_per_interval: Vec<usize>,
}

impl SssReport {
    /// `true` when the history satisfies SSS.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks Selective Strict Serialization of `history` against the market's
/// genesis state in `spec`.
pub fn check(spec: &MarketSpec, history: &History) -> SssReport {
    let mut report = SssReport { buys_per_interval: vec![0], ..SssReport::default() };
    let mut tail_mark = spec.genesis_mark;
    let mut current_value = spec.initial_value;

    for record in history.records() {
        match &record.op {
            MarketOp::Set(fpv) => {
                let matches_tail = fpv.prev_mark == tail_mark;
                match (record.effective, matches_tail) {
                    (true, true) => {
                        tail_mark = compute_mark(&fpv.prev_mark, &fpv.value);
                        current_value = fpv.value;
                        report.intervals += 1;
                        report.buys_per_interval.push(0);
                    }
                    (true, false) => report.violations.push(SssViolation::SetChainBroken {
                        tx: record.tx_hash,
                        expected_prev: tail_mark,
                        found_prev: fpv.prev_mark,
                    }),
                    (false, true) => {
                        report.violations.push(SssViolation::SetWronglyFailed { tx: record.tx_hash });
                    }
                    (false, false) => {}
                }
            }
            MarketOp::Buy(offer) => {
                let matches_interval = offer.prev_mark == tail_mark && offer.value == current_value;
                match (record.effective, matches_interval) {
                    (true, true) => {
                        *report.buys_per_interval.last_mut().expect("never empty") += 1;
                    }
                    (true, false) => report.violations.push(SssViolation::BuyOutsideInterval {
                        tx: record.tx_hash,
                        interval_mark: tail_mark,
                        interval_value: current_value,
                        offer_mark: offer.prev_mark,
                        offer_value: offer.value,
                    }),
                    (false, true) => {
                        report.violations.push(SssViolation::BuyWronglyFailed { tx: record.tx_hash });
                    }
                    (false, false) => {}
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxRecord;
    use sereth_core::fpv::{Flag, Fpv};
    use sereth_crypto::address::Address;

    fn spec() -> MarketSpec {
        MarketSpec::example()
    }

    fn record(n: u64, op: MarketOp, effective: bool) -> TxRecord {
        TxRecord {
            tx_hash: H256::from_low_u64(n),
            sender: Address::from_low_u64(1),
            nonce: n,
            block_number: 1 + n / 8,
            index_in_block: (n % 8) as u32,
            op,
            effective,
        }
    }

    fn set(prev: H256, value: u64) -> MarketOp {
        MarketOp::Set(Fpv::new(Flag::Success, prev, H256::from_low_u64(value)))
    }

    fn buy(prev: H256, value: u64) -> MarketOp {
        MarketOp::Buy(Fpv::new(Flag::Success, prev, H256::from_low_u64(value)))
    }

    #[test]
    fn a_clean_serialization_holds() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        let m2 = compute_mark(&m1, &H256::from_low_u64(70));
        let history = History::from_records(vec![
            // Genesis-interval buy at the opening price.
            record(0, buy(m0, 50), true),
            record(1, set(m0, 60), true),
            record(2, buy(m1, 60), true),
            record(3, buy(m1, 60), true),
            record(4, set(m1, 70), true),
            record(5, buy(m2, 70), true),
            // A stale buy (old interval) that correctly no-opped.
            record(6, buy(m1, 60), false),
        ]);
        let report = check(&spec, &history);
        assert!(report.holds(), "violations: {:?}", report.violations);
        assert_eq!(report.intervals, 2);
        assert_eq!(report.buys_per_interval, vec![1, 2, 1]);
    }

    #[test]
    fn effective_set_off_the_tail_is_a_violation() {
        let spec = spec();
        let wrong = H256::keccak(b"not the tail");
        let history = History::from_records(vec![record(0, set(wrong, 60), true)]);
        let report = check(&spec, &history);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], SssViolation::SetChainBroken { .. }));
    }

    #[test]
    fn matching_set_recorded_as_noop_is_a_violation() {
        let spec = spec();
        let history = History::from_records(vec![record(0, set(spec.genesis_mark, 60), false)]);
        let report = check(&spec, &history);
        assert!(matches!(report.violations[0], SssViolation::SetWronglyFailed { .. }));
    }

    #[test]
    fn effective_buy_with_stale_offer_is_a_violation() {
        let spec = spec();
        let m1 = compute_mark(&spec.genesis_mark, &H256::from_low_u64(60));
        let history = History::from_records(vec![
            record(0, set(spec.genesis_mark, 60), true),
            // Offer pinned to the *genesis* interval commits after the set.
            record(1, buy(spec.genesis_mark, 50), true),
        ]);
        let report = check(&spec, &history);
        assert_eq!(report.violations.len(), 1);
        let SssViolation::BuyOutsideInterval { interval_mark, .. } = &report.violations[0] else {
            panic!("wrong violation kind: {:?}", report.violations[0]);
        };
        assert_eq!(*interval_mark, m1);
    }

    #[test]
    fn buy_with_right_mark_but_wrong_value_is_outside_its_interval() {
        let spec = spec();
        // Offer carries the tail mark but a different price than the one
        // that mark committed — the frontrunning shape HMS blocks (§V-B).
        let history = History::from_records(vec![record(0, buy(spec.genesis_mark, 999), true)]);
        let report = check(&spec, &history);
        assert!(matches!(report.violations[0], SssViolation::BuyOutsideInterval { .. }));
    }

    #[test]
    fn matching_buy_recorded_as_noop_is_a_violation() {
        let spec = spec();
        let history = History::from_records(vec![record(0, buy(spec.genesis_mark, 50), false)]);
        let report = check(&spec, &history);
        assert!(matches!(report.violations[0], SssViolation::BuyWronglyFailed { .. }));
    }

    #[test]
    fn stale_noops_are_fine_and_unlimited() {
        let spec = spec();
        let wrong = H256::keccak(b"elsewhere");
        let history = History::from_records(vec![
            record(0, set(wrong, 1), false),
            record(1, buy(wrong, 1), false),
            record(2, buy(wrong, 50), false),
        ]);
        assert!(check(&spec, &history).holds());
    }

    #[test]
    fn empty_history_holds_trivially() {
        let report = check(&spec(), &History::default());
        assert!(report.holds());
        assert_eq!(report.intervals, 0);
        assert_eq!(report.buys_per_interval, vec![0]);
    }
}
