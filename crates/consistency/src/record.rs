//! Committed-history extraction: turning blocks + receipts into the
//! market-operation records the checkers consume.

use sereth_core::fpv::Fpv;
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::block::Block;
use sereth_types::receipt::Receipt;

/// Everything the checkers need to know about one deployed Sereth market.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarketSpec {
    /// The market contract's address.
    pub contract: Address,
    /// Selector of the `set` function.
    pub set_selector: [u8; 4],
    /// Selector of the `buy` function.
    pub buy_selector: [u8; 4],
    /// Log topic the contract emits for an effective `set`.
    pub set_ok_topic: H256,
    /// Log topic the contract emits for an effective `buy`.
    pub buy_ok_topic: H256,
    /// The mark the contract holds at genesis.
    pub genesis_mark: H256,
    /// The value (price) the contract holds at genesis.
    pub initial_value: H256,
}

impl MarketSpec {
    /// A spec with placeholder selectors/topics, for documentation
    /// examples and checker unit tests that build [`TxRecord`]s directly
    /// (the record-level checkers never consult selectors or topics).
    pub fn example() -> Self {
        Self {
            contract: Address::from_low_u64(0xc0ffee),
            set_selector: [1, 2, 3, 4],
            buy_selector: [5, 6, 7, 8],
            set_ok_topic: H256::from_low_u64(1),
            buy_ok_topic: H256::from_low_u64(2),
            genesis_mark: genesis_mark(),
            initial_value: H256::from_low_u64(50),
        }
    }
}

/// The market-relevant interpretation of one committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketOp {
    /// A `set` invocation with the decoded FPV.
    Set(Fpv),
    /// A `buy` invocation with the decoded FPV (an *offer*).
    Buy(Fpv),
}

/// One committed market transaction, in block order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRecord {
    /// Transaction hash.
    pub tx_hash: H256,
    /// Sender address (the paper's "thread").
    pub sender: Address,
    /// Sender nonce — the program-order index within the thread.
    pub nonce: u64,
    /// Block the transaction committed in.
    pub block_number: u64,
    /// Position within that block.
    pub index_in_block: u32,
    /// What the transaction asked the market to do.
    pub op: MarketOp,
    /// `true` if the chain says the operation changed state (the
    /// contract emitted its success event). Ineffective transactions
    /// still occupy block space — the paper's "failed" transactions
    /// (§II-D, §III-A).
    pub effective: bool,
}

/// One read-only client observation of the market — a `query_view` /
/// `committed_amv` answer as logged by a node or the simulator. Reads
/// never commit, so they live beside the committed [`TxRecord`]s; the
/// dirty-read (G1a) pass of the unified checker consumes them to decide
/// whether each observation was of committed or of speculative state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// The reading client's address.
    pub reader: Address,
    /// Committed head height of the node that served the read, at the
    /// moment it answered.
    pub at_height: u64,
    /// The mark the client observed.
    pub observed_mark: H256,
    /// The value the client observed.
    pub observed_value: H256,
}

/// A committed history: market operations in commit (block) order, plus
/// the read-only observations clients made along the way (empty unless
/// logged — [`History::from_blocks`] sees only what committed).
#[derive(Debug, Clone, Default)]
pub struct History {
    records: Vec<TxRecord>,
    reads: Vec<ReadRecord>,
}

impl History {
    /// Builds a history from records already in commit order.
    pub fn from_records(records: Vec<TxRecord>) -> Self {
        Self { records, reads: Vec::new() }
    }

    /// Attaches a read-observation log (builder style). Order within the
    /// log is irrelevant — each read is judged against the committed
    /// chain as of its own `at_height`.
    pub fn with_reads(mut self, reads: Vec<ReadRecord>) -> Self {
        self.reads = reads;
        self
    }

    /// The logged read observations.
    pub fn reads(&self) -> &[ReadRecord] {
        &self.reads
    }

    /// Extracts the market history from a canonical chain.
    ///
    /// Transactions not addressed to `spec.contract`, or whose selector is
    /// neither `set` nor `buy`, or whose calldata does not decode as an
    /// FPV, are skipped — they are foreign traffic the checkers have
    /// nothing to say about.
    pub fn from_blocks<'a>(
        spec: &MarketSpec,
        blocks: impl IntoIterator<Item = (&'a Block, &'a [Receipt])>,
    ) -> Self {
        let mut records = Vec::new();
        for (block, receipts) in blocks {
            for (index, tx) in block.transactions.iter().enumerate() {
                if tx.to() != Some(spec.contract) {
                    continue;
                }
                let input = tx.input();
                if input.len() < 4 {
                    continue;
                }
                let selector: [u8; 4] = input[..4].try_into().expect("length checked");
                let (op, ok_topic) = if selector == spec.set_selector {
                    let Some(fpv) = Fpv::from_calldata(input) else { continue };
                    (MarketOp::Set(fpv), spec.set_ok_topic)
                } else if selector == spec.buy_selector {
                    let Some(fpv) = Fpv::from_calldata(input) else { continue };
                    (MarketOp::Buy(fpv), spec.buy_ok_topic)
                } else {
                    continue;
                };
                let effective = receipts
                    .iter()
                    .find(|receipt| receipt.tx_hash == tx.hash())
                    .is_some_and(|receipt| receipt.has_event(ok_topic));
                records.push(TxRecord {
                    tx_hash: tx.hash(),
                    sender: tx.sender(),
                    nonce: tx.nonce(),
                    block_number: block.header.number,
                    index_in_block: index as u32,
                    op,
                    effective,
                });
            }
        }
        Self { records, reads: Vec::new() }
    }

    /// The records in commit order.
    pub fn records(&self) -> &[TxRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no market transactions committed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Counts `(effective sets, no-op sets, effective buys, no-op buys)`.
    pub fn tallies(&self) -> (usize, usize, usize, usize) {
        let mut sets_ok = 0;
        let mut sets_noop = 0;
        let mut buys_ok = 0;
        let mut buys_noop = 0;
        for record in &self.records {
            match (&record.op, record.effective) {
                (MarketOp::Set(_), true) => sets_ok += 1,
                (MarketOp::Set(_), false) => sets_noop += 1,
                (MarketOp::Buy(_), true) => buys_ok += 1,
                (MarketOp::Buy(_), false) => buys_noop += 1,
            }
        }
        (sets_ok, sets_noop, buys_ok, buys_noop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::fpv::Flag;

    fn record(nonce: u64, effective: bool) -> TxRecord {
        TxRecord {
            tx_hash: H256::from_low_u64(nonce + 100),
            sender: Address::from_low_u64(1),
            nonce,
            block_number: 1,
            index_in_block: nonce as u32,
            op: MarketOp::Set(Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(5))),
            effective,
        }
    }

    #[test]
    fn tallies_count_by_kind_and_effect() {
        let mut records = vec![record(0, true), record(1, false)];
        records.push(TxRecord {
            op: MarketOp::Buy(Fpv::new(Flag::Success, genesis_mark(), H256::from_low_u64(5))),
            effective: true,
            ..record(2, true)
        });
        let history = History::from_records(records);
        assert_eq!(history.tallies(), (1, 1, 1, 0));
        assert_eq!(history.len(), 3);
        assert!(!history.is_empty());
    }

    #[test]
    fn empty_history_reports_empty() {
        let history = History::default();
        assert!(history.is_empty());
        assert_eq!(history.tallies(), (0, 0, 0, 0));
    }
}
