//! The unified checker surface: every consistency pass behind one
//! [`Checker`] trait, every violation tagged with the *weakest*
//! [`IsolationLevel`] that forbids it.
//!
//! The module-level passes ([`crate::seqcon::check`],
//! [`crate::sss::check`]) keep their original signatures and remain the
//! underlying engines; this module folds them — together with the new
//! anomaly passes below — into a common [`Report`] so callers can ask
//! one question: *which rungs of the ladder does this history satisfy?*
//!
//! # The anomaly taxonomy (Adya/ANSI, specialized to the market)
//!
//! * **G0 dirty-write cycle** — an effective `set` chains onto a mark
//!   that a *later*-committed `set` produced: the write-write dependency
//!   order contradicts the commit order. Forbidden at **every** rung
//!   (even READ UNCOMMITTED proscribes dirty writes).
//! * **G1a dirty/aborted read** — an observation (a logged client read,
//!   or the offer a committed `buy` carries) of a mark that was not part
//!   of the committed chain when it was read: either it committed only
//!   later (dirty read) or never at all (read of an aborted /
//!   never-sealed write). Forbidden from **READ COMMITTED** up — at READ
//!   UNCOMMITTED this is precisely the speculation the paper sells.
//! * **Lost update** — two effective `set`s chain onto the *same* mark:
//!   the second overwrote the interval the first created without ever
//!   reading it. Allowed through READ COMMITTED (classically: P4 is not
//!   proscribed below repeatable read), forbidden at **SEQUENTIAL**.
//! * **Program-order / serialization breaks** — the existing seqcon and
//!   SSS conditions; both are facets of the single-serialization-point
//!   guarantee, so they are forbidden at **SEQUENTIAL**.

use std::collections::HashMap;

use sereth_core::mark::compute_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::IsolationLevel;

use crate::record::{History, MarketOp, MarketSpec};
use crate::seqcon::{self, SeqConViolation};
use crate::sss::{self, SssViolation};

/// One detected anomaly, in market terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// G0: an effective set chained onto a mark a later-committed set
    /// produced — the dirty-write cycle.
    DirtyWrite {
        /// The set that committed first yet depends on the later write.
        tx: H256,
        /// The later-committed set whose mark it chained onto.
        depends_on: H256,
    },
    /// G1a (committed witness): a buy's offer carries a mark that was
    /// not committed when the offer must have been built.
    DirtyReadCommitted {
        /// The buy carrying the dirty offer.
        tx: H256,
        /// The offer's mark.
        offer_mark: H256,
        /// `true` if that mark committed later; `false` if it never
        /// committed at all (a read of a never-sealed write).
        committed_later: bool,
    },
    /// G1a (logged witness): a client read observed a mark that was not
    /// in the committed chain at the height the read was served at.
    DirtyReadObserved {
        /// The reading client.
        reader: Address,
        /// Head height of the serving node at read time.
        at_height: u64,
        /// The speculative mark it observed.
        observed_mark: H256,
        /// `true` if the mark committed in a later block; `false` if it
        /// never committed.
        committed_later: bool,
    },
    /// Two effective sets chained onto the same mark; the second never
    /// read the first's update.
    LostUpdate {
        /// The overwriting (second) set.
        tx: H256,
        /// The set whose update it lost.
        first_writer: H256,
        /// The mark both chained onto.
        prev_mark: H256,
    },
    /// A sender's program (nonce) order broke — from the seqcon pass.
    ProgramOrder(SeqConViolation),
    /// The strict serialization of sets / marking of buys broke — from
    /// the SSS pass.
    Serialization(SssViolation),
}

impl Anomaly {
    /// The weakest isolation level that forbids this anomaly; every
    /// stronger level forbids it too.
    pub fn forbidden_at(&self) -> IsolationLevel {
        match self {
            Self::DirtyWrite { .. } => IsolationLevel::ReadUncommitted,
            Self::DirtyReadCommitted { .. } | Self::DirtyReadObserved { .. } => IsolationLevel::ReadCommitted,
            Self::LostUpdate { .. } | Self::ProgramOrder(_) | Self::Serialization(_) => {
                IsolationLevel::Sequential
            }
        }
    }

    /// Stable kebab-case class name (tables, counters, artifacts).
    pub fn class(&self) -> &'static str {
        match self {
            Self::DirtyWrite { .. } => "dirty-write",
            Self::DirtyReadCommitted { .. } | Self::DirtyReadObserved { .. } => "dirty-read",
            Self::LostUpdate { .. } => "lost-update",
            Self::ProgramOrder(_) => "program-order",
            Self::Serialization(_) => "serialization",
        }
    }
}

impl core::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DirtyWrite { tx, depends_on } => {
                write!(f, "set {tx:?} chained onto the later-committed write {depends_on:?}")
            }
            Self::DirtyReadCommitted { tx, committed_later: true, .. } => {
                write!(f, "buy {tx:?} offered a mark that was uncommitted when read")
            }
            Self::DirtyReadCommitted { tx, committed_later: false, .. } => {
                write!(f, "buy {tx:?} offered a mark that never committed")
            }
            Self::DirtyReadObserved { reader, at_height, committed_later, .. } => write!(
                f,
                "client {reader:?} observed {} state at height {at_height}",
                if *committed_later { "then-uncommitted" } else { "never-committed" }
            ),
            Self::LostUpdate { tx, first_writer, .. } => {
                write!(f, "set {tx:?} overwrote {first_writer:?} without reading it")
            }
            Self::ProgramOrder(violation) => violation.fmt(f),
            Self::Serialization(violation) => violation.fmt(f),
        }
    }
}

/// An [`Anomaly`] together with its minimal forbidding level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The weakest ladder rung that forbids this anomaly.
    pub forbidden_at: IsolationLevel,
    /// What happened.
    pub anomaly: Anomaly,
}

impl Violation {
    /// Wraps an anomaly, deriving its minimal forbidding level.
    pub fn of(anomaly: Anomaly) -> Self {
        Self { forbidden_at: anomaly.forbidden_at(), anomaly }
    }
}

/// Verdict for one rung of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelVerdict {
    /// The rung.
    pub level: IsolationLevel,
    /// `true` when no violation is forbidden at this rung.
    pub holds: bool,
    /// How many violations this rung forbids (monotone non-decreasing
    /// up the ladder: a stronger rung forbids everything below it does).
    pub violations: usize,
}

/// Counts a report carries alongside its violations — the denominators
/// that make the violation counts interpretable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tallies {
    /// Committed market transactions examined.
    pub records: usize,
    /// Logged read observations examined.
    pub reads: usize,
    /// Effective sets.
    pub sets_ok: usize,
    /// No-op sets.
    pub sets_noop: usize,
    /// Effective buys.
    pub buys_ok: usize,
    /// No-op buys.
    pub buys_noop: usize,
    /// Intervals the serialization opened (from the SSS pass).
    pub intervals: usize,
    /// Effective buys per interval (from the SSS pass; index 0 is the
    /// genesis interval).
    pub buys_per_interval: Vec<usize>,
    /// Dirty-write (G0) violations.
    pub dirty_writes: usize,
    /// Dirty-read (G1a) violations, committed and logged witnesses.
    pub dirty_reads: usize,
    /// Lost-update violations.
    pub lost_updates: usize,
    /// Program-order (seqcon) violations.
    pub program_order: usize,
    /// Serialization (SSS) violations.
    pub serialization: usize,
}

/// The common result shape every [`Checker`] returns.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every violation found, each tagged with its minimal forbidding
    /// level.
    pub violations: Vec<Violation>,
    /// Per-rung verdicts, weakest first.
    pub level_verdicts: Vec<LevelVerdict>,
    /// The denominators.
    pub tallies: Tallies,
}

impl Report {
    /// `true` when the history satisfies `level`: no violation's minimal
    /// forbidding level is at or below it.
    pub fn holds_at(&self, level: IsolationLevel) -> bool {
        self.violations.iter().all(|violation| violation.forbidden_at > level)
    }

    /// Violations `level` forbids.
    pub fn violations_at(&self, level: IsolationLevel) -> usize {
        self.violations.iter().filter(|violation| violation.forbidden_at <= level).count()
    }

    /// Recomputes the per-level verdicts and per-class counts from the
    /// violation list. Every constructor path ends here.
    fn finalize(mut self) -> Self {
        self.level_verdicts = IsolationLevel::ALL
            .into_iter()
            .map(|level| LevelVerdict {
                level,
                holds: self.holds_at(level),
                violations: self.violations_at(level),
            })
            .collect();
        self.tallies.dirty_writes = 0;
        self.tallies.dirty_reads = 0;
        self.tallies.lost_updates = 0;
        self.tallies.program_order = 0;
        self.tallies.serialization = 0;
        for violation in &self.violations {
            match &violation.anomaly {
                Anomaly::DirtyWrite { .. } => self.tallies.dirty_writes += 1,
                Anomaly::DirtyReadCommitted { .. } | Anomaly::DirtyReadObserved { .. } => {
                    self.tallies.dirty_reads += 1
                }
                Anomaly::LostUpdate { .. } => self.tallies.lost_updates += 1,
                Anomaly::ProgramOrder(_) => self.tallies.program_order += 1,
                Anomaly::Serialization(_) => self.tallies.serialization += 1,
            }
        }
        self
    }

    /// Folds another pass's report over the same history into this one:
    /// violations concatenate; overlapping denominators (computed
    /// identically by each pass) merge field-wise.
    fn merged(mut self, other: Report) -> Report {
        self.violations.extend(other.violations);
        let t = &mut self.tallies;
        let o = other.tallies;
        t.records = t.records.max(o.records);
        t.reads = t.reads.max(o.reads);
        t.sets_ok = t.sets_ok.max(o.sets_ok);
        t.sets_noop = t.sets_noop.max(o.sets_noop);
        t.buys_ok = t.buys_ok.max(o.buys_ok);
        t.buys_noop = t.buys_noop.max(o.buys_noop);
        t.intervals = t.intervals.max(o.intervals);
        if o.buys_per_interval.len() > t.buys_per_interval.len() {
            t.buys_per_interval = o.buys_per_interval;
        }
        self.finalize()
    }
}

fn base_tallies(history: &History) -> Tallies {
    let (sets_ok, sets_noop, buys_ok, buys_noop) = history.tallies();
    Tallies {
        records: history.len(),
        reads: history.reads().len(),
        sets_ok,
        sets_noop,
        buys_ok,
        buys_noop,
        ..Tallies::default()
    }
}

/// One consistency pass (or a composition of passes) over a committed
/// history, reporting in the common [`Report`] shape.
pub trait Checker {
    /// Short stable name for verdict tables.
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn check(&self, history: &History) -> Report;
}

/// The sequential-consistency pass behind the unified surface (engine:
/// [`crate::seqcon::check`], unchanged).
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqConChecker;

impl Checker for SeqConChecker {
    fn name(&self) -> &'static str {
        "seqcon"
    }

    fn check(&self, history: &History) -> Report {
        let violations = seqcon::check(history)
            .into_iter()
            .map(|violation| Violation::of(Anomaly::ProgramOrder(violation)))
            .collect();
        Report { violations, level_verdicts: Vec::new(), tallies: base_tallies(history) }.finalize()
    }
}

/// The Selective-Strict-Serialization pass behind the unified surface
/// (engine: [`crate::sss::check`], unchanged).
#[derive(Debug, Clone)]
pub struct SssChecker {
    /// The market to replay against.
    pub spec: MarketSpec,
}

impl Checker for SssChecker {
    fn name(&self) -> &'static str {
        "sss"
    }

    fn check(&self, history: &History) -> Report {
        let sss_report = sss::check(&self.spec, history);
        let mut tallies = base_tallies(history);
        tallies.intervals = sss_report.intervals;
        tallies.buys_per_interval = sss_report.buys_per_interval;
        let violations = sss_report
            .violations
            .into_iter()
            .map(|violation| Violation::of(Anomaly::Serialization(violation)))
            .collect();
        Report { violations, level_verdicts: Vec::new(), tallies }.finalize()
    }
}

/// The new anomaly passes: G0 dirty-write cycles, G1a dirty/aborted
/// reads (from committed buy offers *and* from the logged read
/// observations), and lost updates.
#[derive(Debug, Clone)]
pub struct AnomalyChecker {
    /// The market to replay against (genesis mark anchors the chain).
    pub spec: MarketSpec,
}

impl Checker for AnomalyChecker {
    fn name(&self) -> &'static str {
        "anomaly"
    }

    fn check(&self, history: &History) -> Report {
        let mut violations = Vec::new();
        // Marks the committed history produced: mark → (commit position,
        // block number, producing tx). First producer wins — a duplicate
        // producer is itself a violation the passes below surface.
        let mut produced: HashMap<H256, (usize, u64, H256)> = HashMap::new();
        for (position, record) in history.records().iter().enumerate() {
            if let MarketOp::Set(fpv) = &record.op {
                if record.effective {
                    let mark = compute_mark(&fpv.prev_mark, &fpv.value);
                    produced.entry(mark).or_insert((position, record.block_number, record.tx_hash));
                }
            }
        }

        // Pass 1 — writes: G0 cycles and lost updates among effective sets.
        let mut first_writer_on: HashMap<H256, H256> = HashMap::new();
        for (position, record) in history.records().iter().enumerate() {
            let MarketOp::Set(fpv) = &record.op else { continue };
            if !record.effective {
                continue;
            }
            if let Some(&(producer_position, _, producer_tx)) = produced.get(&fpv.prev_mark) {
                if producer_position > position {
                    violations.push(Violation::of(Anomaly::DirtyWrite {
                        tx: record.tx_hash,
                        depends_on: producer_tx,
                    }));
                }
            }
            if let Some(&first_writer) = first_writer_on.get(&fpv.prev_mark) {
                violations.push(Violation::of(Anomaly::LostUpdate {
                    tx: record.tx_hash,
                    first_writer,
                    prev_mark: fpv.prev_mark,
                }));
            } else {
                first_writer_on.insert(fpv.prev_mark, record.tx_hash);
            }
        }

        // Pass 2 — committed read witnesses: a buy's offer was built from
        // *some* read; if the offered mark only committed after the buy
        // itself (or never), that read saw uncommitted state.
        for (position, record) in history.records().iter().enumerate() {
            let MarketOp::Buy(offer) = &record.op else { continue };
            if offer.prev_mark == self.spec.genesis_mark {
                continue;
            }
            match produced.get(&offer.prev_mark) {
                Some(&(producer_position, _, _)) if producer_position > position => {
                    violations.push(Violation::of(Anomaly::DirtyReadCommitted {
                        tx: record.tx_hash,
                        offer_mark: offer.prev_mark,
                        committed_later: true,
                    }));
                }
                Some(_) => {}
                None => violations.push(Violation::of(Anomaly::DirtyReadCommitted {
                    tx: record.tx_hash,
                    offer_mark: offer.prev_mark,
                    committed_later: false,
                })),
            }
        }

        // Pass 3 — logged read witnesses: each observation judged against
        // the chain as of the height it was served at.
        for read in history.reads() {
            if read.observed_mark == self.spec.genesis_mark {
                continue;
            }
            match produced.get(&read.observed_mark) {
                Some(&(_, block_number, _)) if block_number <= read.at_height => {}
                Some(_) => violations.push(Violation::of(Anomaly::DirtyReadObserved {
                    reader: read.reader,
                    at_height: read.at_height,
                    observed_mark: read.observed_mark,
                    committed_later: true,
                })),
                None => violations.push(Violation::of(Anomaly::DirtyReadObserved {
                    reader: read.reader,
                    at_height: read.at_height,
                    observed_mark: read.observed_mark,
                    committed_later: false,
                })),
            }
        }

        Report { violations, level_verdicts: Vec::new(), tallies: base_tallies(history) }.finalize()
    }
}

/// All passes at once — the checker the audit example, the sim, and the
/// ISO-FRONTIER bench run.
#[derive(Debug, Clone)]
pub struct FullChecker {
    /// The market to replay against.
    pub spec: MarketSpec,
}

impl Checker for FullChecker {
    fn name(&self) -> &'static str {
        "full"
    }

    fn check(&self, history: &History) -> Report {
        SeqConChecker
            .check(history)
            .merged(SssChecker { spec: self.spec.clone() }.check(history))
            .merged(AnomalyChecker { spec: self.spec.clone() }.check(history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxRecord;
    use sereth_core::fpv::{Flag, Fpv};
    use sereth_crypto::address::Address;

    fn spec() -> MarketSpec {
        MarketSpec::example()
    }

    fn record(n: u64, op: MarketOp, effective: bool) -> TxRecord {
        TxRecord {
            tx_hash: H256::from_low_u64(n + 1),
            sender: Address::from_low_u64(1 + n % 3),
            nonce: n / 3,
            block_number: 1 + n / 4,
            index_in_block: (n % 4) as u32,
            op,
            effective,
        }
    }

    fn set(prev: H256, value: u64) -> MarketOp {
        MarketOp::Set(Fpv::new(Flag::Success, prev, H256::from_low_u64(value)))
    }

    fn buy(prev: H256, value: u64) -> MarketOp {
        MarketOp::Buy(Fpv::new(Flag::Success, prev, H256::from_low_u64(value)))
    }

    fn clean_history(spec: &MarketSpec) -> History {
        let m0 = spec.genesis_mark;
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        History::from_records(vec![
            record(0, buy(m0, 50), true),
            record(1, set(m0, 60), true),
            record(2, buy(m1, 60), true),
        ])
    }

    #[test]
    fn clean_history_holds_at_every_rung() {
        let spec = spec();
        let report = FullChecker { spec: spec.clone() }.check(&clean_history(&spec));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        for verdict in &report.level_verdicts {
            assert!(verdict.holds, "{verdict:?}");
            assert_eq!(verdict.violations, 0);
        }
        assert_eq!(report.tallies.records, 3);
        assert_eq!(report.tallies.intervals, 1);
        assert_eq!(report.tallies.buys_per_interval, vec![1, 1]);
    }

    #[test]
    fn dirty_write_cycle_is_forbidden_even_at_read_uncommitted() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        // The set chaining onto m1 commits BEFORE the set that produces m1.
        let history = History::from_records(vec![record(0, set(m1, 70), true), record(1, set(m0, 60), true)]);
        let report = FullChecker { spec }.check(&history);
        assert_eq!(report.tallies.dirty_writes, 1);
        let g0 = report
            .violations
            .iter()
            .find(|v| matches!(v.anomaly, Anomaly::DirtyWrite { .. }))
            .expect("G0 detected");
        assert_eq!(g0.forbidden_at, IsolationLevel::ReadUncommitted);
        assert!(!report.holds_at(IsolationLevel::ReadUncommitted));
    }

    #[test]
    fn never_committed_offer_is_a_dirty_read_at_read_committed() {
        let spec = spec();
        let phantom = H256::keccak(b"a mark nobody committed");
        let history = History::from_records(vec![record(0, buy(phantom, 60), false)]);
        let report = FullChecker { spec }.check(&history);
        assert_eq!(report.tallies.dirty_reads, 1);
        let g1a = &report.violations[0];
        assert!(matches!(g1a.anomaly, Anomaly::DirtyReadCommitted { committed_later: false, .. }));
        assert_eq!(g1a.forbidden_at, IsolationLevel::ReadCommitted);
        // READ UNCOMMITTED explicitly allows it.
        assert!(report.holds_at(IsolationLevel::ReadUncommitted));
        assert!(!report.holds_at(IsolationLevel::ReadCommitted));
        assert!(!report.holds_at(IsolationLevel::Sequential));
    }

    #[test]
    fn speculative_logged_read_is_dirty_until_its_write_commits() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        // The set committing in block 1 produces m1; a read served at
        // height 0 already observed m1 — a dirty read. The same read at
        // height 1 is committed state.
        let history = History::from_records(vec![record(0, set(m0, 60), true)]);
        let dirty = crate::record::ReadRecord {
            reader: Address::from_low_u64(9),
            at_height: 0,
            observed_mark: m1,
            observed_value: H256::from_low_u64(60),
        };
        let clean = crate::record::ReadRecord { at_height: 1, ..dirty.clone() };
        let checker = AnomalyChecker { spec };
        let report = checker.check(&history.clone().with_reads(vec![dirty]));
        assert_eq!(report.tallies.dirty_reads, 1);
        assert!(matches!(
            report.violations[0].anomaly,
            Anomaly::DirtyReadObserved { committed_later: true, .. }
        ));
        assert!(checker.check(&history.with_reads(vec![clean])).violations.is_empty());
    }

    #[test]
    fn lost_update_is_forbidden_only_at_sequential() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let history = History::from_records(vec![
            record(0, set(m0, 60), true),
            record(3, set(m0, 70), true), // same prev_mark: the first update is lost
        ]);
        let report = AnomalyChecker { spec }.check(&history);
        assert_eq!(report.tallies.lost_updates, 1);
        let lost = report
            .violations
            .iter()
            .find(|v| matches!(v.anomaly, Anomaly::LostUpdate { .. }))
            .expect("lost update detected");
        assert_eq!(lost.forbidden_at, IsolationLevel::Sequential);
        assert!(report.holds_at(IsolationLevel::ReadUncommitted));
        assert!(report.holds_at(IsolationLevel::ReadCommitted));
        assert!(!report.holds_at(IsolationLevel::Sequential));
    }

    #[test]
    fn unified_passes_agree_with_the_module_fns() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let history = History::from_records(vec![
            record(0, set(H256::keccak(b"off-chain"), 60), true), // SSS break
            record(1, set(m0, 60), false),                        // SSS wrongly-failed
            record(3, buy(m0, 50), true),
            record(2, buy(m0, 50), true), // same sender, replayed position below
        ]);
        let unified = FullChecker { spec: spec.clone() }.check(&history);
        assert_eq!(
            unified.violations.iter().filter(|v| matches!(v.anomaly, Anomaly::Serialization(_))).count(),
            sss::check(&spec, &history).violations.len()
        );
        assert_eq!(
            unified.violations.iter().filter(|v| matches!(v.anomaly, Anomaly::ProgramOrder(_))).count(),
            seqcon::check(&history).len()
        );
    }

    #[test]
    fn verdict_counts_are_monotone_up_the_ladder() {
        let spec = spec();
        let m0 = spec.genesis_mark;
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        let history = History::from_records(vec![
            record(0, set(m1, 70), true), // G0
            record(1, set(m0, 60), true),
            record(2, buy(H256::keccak(b"phantom"), 5), false), // G1a
            record(3, set(m0, 80), true),                       // lost update
        ]);
        let report = FullChecker { spec }.check(&history);
        let counts: Vec<usize> = report.level_verdicts.iter().map(|v| v.violations).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone: {counts:?}");
        assert!(counts[0] >= 1, "G0 counted at the weakest rung: {counts:?}");
        assert_eq!(counts[2], report.violations.len(), "the top rung forbids everything");
    }
}
