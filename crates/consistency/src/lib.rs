//! Correctness-condition checkers for committed Sereth histories.
//!
//! The paper argues two correctness claims that this crate turns into
//! machine-checkable predicates over *committed chains*:
//!
//! * **Sequential consistency** (§IV): "miners are required to preserve
//!   the nonce order when committing a transaction from a given thread to
//!   a block … the blockchain is inherently sequentially consistent."
//!   [`seqcon::check`] verifies that every sender's transactions appear in
//!   block order consistent with their program (nonce) order.
//!
//! * **Selective Strict Serialization** (§VI): the paper closes its
//!   related-work discussion of Spear et al.'s SSS with "further work
//!   might show that SSS is a correctness condition suitable for HMS."
//!   This crate *is* that further work, executed: [`sss::check`] verifies
//!   that the **sets are strictly serialized** — each effective set chains
//!   exactly onto the tail of the committed mark chain — while the
//!   **buys are marked to the serialized history** — each effective buy's
//!   `(prev_mark, value)` pins it inside exactly one inter-set interval,
//!   and every no-op buy was genuinely stale. Within an interval, buys may
//!   interleave arbitrarily; across intervals they may not.
//!
//! Both conditions (and the Adya-style anomaly passes added for the
//! isolation ladder — G0 dirty-write cycles, G1a dirty/aborted reads,
//! lost updates) are also available behind one unified surface: the
//! [`Checker`] trait in [`checker`] returns a common [`Report`] whose
//! every violation is tagged with the weakest [`IsolationLevel`] that
//! forbids it, so `report.holds_at(level)` answers "does this history
//! satisfy that rung of the ladder?". The module-level `check` functions
//! above remain the underlying engines — nothing is deprecated; the
//! unified checkers delegate to them.
//!
//! The checkers work from calldata and receipts alone — they re-derive
//! what the contract *must* have done and compare against what the chain
//! *says* happened, so they are an independent oracle: a violation means
//! either the chain, the contract, or the miner broke the condition.
//!
//! # Examples
//!
//! ```
//! use sereth_consistency::record::{History, MarketOp, MarketSpec, TxRecord};
//! use sereth_consistency::{seqcon, sss};
//! use sereth_core::fpv::{Flag, Fpv};
//! use sereth_core::mark::{compute_mark, genesis_mark};
//! use sereth_crypto::{Address, H256};
//!
//! let spec = MarketSpec::example();
//! let value = H256::from_low_u64(60);
//! let history = History::from_records(vec![TxRecord {
//!     tx_hash: H256::from_low_u64(1),
//!     sender: Address::from_low_u64(1),
//!     nonce: 0,
//!     block_number: 1,
//!     index_in_block: 0,
//!     op: MarketOp::Set(Fpv::new(Flag::Head, genesis_mark(), value)),
//!     effective: true,
//! }]);
//! assert!(seqcon::check(&history).is_empty());
//! assert!(sss::check(&spec, &history).violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod record;
pub mod seqcon;
pub mod sss;

pub use checker::{
    Anomaly, AnomalyChecker, Checker, FullChecker, LevelVerdict, Report, SeqConChecker, SssChecker, Tallies,
    Violation,
};
pub use record::{History, MarketOp, MarketSpec, ReadRecord, TxRecord};
pub use seqcon::SeqConViolation;
pub use sereth_types::IsolationLevel;
pub use sss::{SssReport, SssViolation};
