//! Sequential consistency of committed histories (paper §IV).
//!
//! "Blockchain transactions from the same address are executed in the
//! order they are sent, while the order of transactions from different
//! addresses is not defined" (§II-C) — i.e. the committed history must be
//! equivalent to a legal sequential history that preserves each thread's
//! program order. On a chain, program order is the sender's nonce
//! sequence, so the check is: for every sender, nonces are strictly
//! increasing along the block order. Cross-sender order is free.

use std::collections::HashMap;

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;

use crate::record::History;

/// A committed history that is not sequentially consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqConViolation {
    /// Two transactions of one sender committed against program order.
    ProgramOrderInverted {
        /// The sender whose order broke.
        sender: Address,
        /// The earlier-committed transaction.
        earlier_tx: H256,
        /// Its nonce.
        earlier_nonce: u64,
        /// The later-committed transaction.
        later_tx: H256,
        /// Its (not larger) nonce.
        later_nonce: u64,
    },
    /// One sender committed the same nonce twice (a replay).
    NonceReplayed {
        /// The sender.
        sender: Address,
        /// The repeated nonce.
        nonce: u64,
        /// The second transaction carrying it.
        tx: H256,
    },
}

impl core::fmt::Display for SeqConViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ProgramOrderInverted { sender, earlier_nonce, later_nonce, .. } => write!(
                f,
                "program order inverted for {sender:?}: nonce {later_nonce} committed after {earlier_nonce}"
            ),
            Self::NonceReplayed { sender, nonce, .. } => {
                write!(f, "nonce {nonce} of {sender:?} committed twice")
            }
        }
    }
}

/// Checks sequential consistency; an empty result means the history
/// satisfies it.
pub fn check(history: &History) -> Vec<SeqConViolation> {
    let mut violations = Vec::new();
    let mut last_seen: HashMap<Address, (u64, H256)> = HashMap::new();
    for record in history.records() {
        match last_seen.get(&record.sender) {
            Some(&(prev_nonce, prev_tx)) if record.nonce == prev_nonce => {
                violations.push(SeqConViolation::NonceReplayed {
                    sender: record.sender,
                    nonce: record.nonce,
                    tx: record.tx_hash,
                });
                let _ = prev_tx;
            }
            Some(&(prev_nonce, prev_tx)) if record.nonce < prev_nonce => {
                violations.push(SeqConViolation::ProgramOrderInverted {
                    sender: record.sender,
                    earlier_tx: prev_tx,
                    earlier_nonce: prev_nonce,
                    later_tx: record.tx_hash,
                    later_nonce: record.nonce,
                });
            }
            _ => {}
        }
        last_seen.insert(record.sender, (record.nonce, record.tx_hash));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MarketOp, TxRecord};
    use sereth_core::fpv::{Flag, Fpv};
    use sereth_core::mark::genesis_mark;

    fn set_record(sender: u64, nonce: u64, position: u32) -> TxRecord {
        TxRecord {
            tx_hash: H256::from_low_u64(sender * 1_000 + nonce),
            sender: Address::from_low_u64(sender),
            nonce,
            block_number: 1,
            index_in_block: position,
            op: MarketOp::Set(Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(5))),
            effective: false,
        }
    }

    #[test]
    fn per_sender_order_passes() {
        let history = History::from_records(vec![
            set_record(1, 0, 0),
            set_record(2, 0, 1),
            set_record(1, 1, 2),
            set_record(2, 1, 3),
        ]);
        assert!(check(&history).is_empty());
    }

    #[test]
    fn nonce_gaps_are_allowed() {
        // Gaps appear when intervening transactions target other
        // contracts; program order is still respected.
        let history = History::from_records(vec![set_record(1, 0, 0), set_record(1, 5, 1)]);
        assert!(check(&history).is_empty());
    }

    #[test]
    fn inversion_is_detected() {
        let history = History::from_records(vec![set_record(1, 3, 0), set_record(1, 1, 1)]);
        let violations = check(&history);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], SeqConViolation::ProgramOrderInverted { later_nonce: 1, .. }));
    }

    #[test]
    fn replay_is_detected() {
        let history = History::from_records(vec![set_record(1, 2, 0), set_record(1, 2, 1)]);
        let violations = check(&history);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], SeqConViolation::NonceReplayed { nonce: 2, .. }));
    }

    #[test]
    fn cross_sender_order_is_unconstrained() {
        // Sender 2 commits before sender 1 despite higher label — fine.
        let history = History::from_records(vec![set_record(2, 0, 0), set_record(1, 0, 1)]);
        assert!(check(&history).is_empty());
    }
}
