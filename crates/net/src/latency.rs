//! Link latency models and failure injection.
//!
//! The paper's testbed was EC2 instances gossiping over TCP; what matters
//! for the reproduced phenomena is the *relative* timing of transaction
//! submission, gossip, and block publication (see `DESIGN.md` §7), so links
//! are modelled by sampled delays plus optional loss and duplication.

use rand::Rng;
use sereth_types::SimTime;

use crate::topology::ActorId;

/// A per-message delay distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many milliseconds.
    Constant(SimTime),
    /// Uniformly distributed in `[min, max]` milliseconds.
    Uniform {
        /// Minimum delay.
        min: SimTime,
        /// Maximum delay (inclusive).
        max: SimTime,
    },
    /// `base` plus an exponentially-distributed tail with the given mean —
    /// a decent stand-in for internet paths.
    LongTail {
        /// Fixed propagation floor.
        base: SimTime,
        /// Mean of the exponential tail.
        tail_mean: SimTime,
    },
}

impl LatencyModel {
    /// Samples one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match self {
            Self::Constant(ms) => *ms,
            Self::Uniform { min, max } => rng.gen_range(*min..=*max),
            Self::LongTail { base, tail_mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let tail = -(u.ln()) * *tail_mean as f64;
                base + tail.min(60_000.0) as SimTime
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::Uniform { min: 20, max: 120 }
    }
}

/// One scheduled partition episode: while `from_ms <= now < until_ms`,
/// every message between the `island` and the rest of the network is
/// dropped, in both directions. Traffic within the island and within the
/// mainland flows normally, as do an actor's local timers.
///
/// The cut is evaluated at *send* time: a message sent just before the
/// partition opens still arrives (it is already "on the wire"), matching
/// how a real link failure behaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Actors on one side of the cut.
    pub island: Vec<ActorId>,
    /// When the cut opens (inclusive, ms).
    pub from_ms: SimTime,
    /// When it heals (exclusive, ms).
    pub until_ms: SimTime,
}

impl Partition {
    /// `true` if a message from `from` to `to` at time `now` crosses the
    /// cut while it is open.
    pub fn severs(&self, now: SimTime, from: ActorId, to: ActorId) -> bool {
        if now < self.from_ms || now >= self.until_ms {
            return false;
        }
        self.island.contains(&from) != self.island.contains(&to)
    }
}

/// A straggler: every message to or from one of `actors` pays `extra_ms`
/// on top of the sampled link latency — a slow NIC, a congested uplink,
/// an overloaded peer. Unlike a partition the traffic still arrives, just
/// late, which is exactly the regime where delayed competing blocks force
/// reorgs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// The slow actors.
    pub actors: Vec<ActorId>,
    /// Delay added per crossing message, in milliseconds.
    pub extra_ms: SimTime,
}

impl Straggler {
    /// The extra delay this straggler adds to a `from → to` message.
    pub fn extra(&self, from: ActorId, to: ActorId) -> SimTime {
        if self.actors.contains(&from) || self.actors.contains(&to) {
            self.extra_ms
        } else {
            0
        }
    }
}

/// Link-level fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// Probability a delivered message is delivered twice (with a fresh
    /// latency sample for the duplicate).
    pub duplicate_probability: f64,
    /// Scheduled partition episodes (may overlap).
    pub partitions: Vec<Partition>,
    /// Straggler links (extra delays stack if several apply).
    pub stragglers: Vec<Straggler>,
}

impl FaultModel {
    /// No faults.
    pub const fn none() -> Self {
        Self {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            partitions: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// Samples whether to drop a message.
    pub fn should_drop<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_probability > 0.0 && rng.gen_bool(self.drop_probability.clamp(0.0, 1.0))
    }

    /// Samples whether to duplicate a message.
    pub fn should_duplicate<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.duplicate_probability > 0.0 && rng.gen_bool(self.duplicate_probability.clamp(0.0, 1.0))
    }

    /// `true` if any scheduled partition severs `from → to` at `now`.
    pub fn severs(&self, now: SimTime, from: ActorId, to: ActorId) -> bool {
        self.partitions.iter().any(|p| p.severs(now, from, to))
    }

    /// Total straggler delay a `from → to` message pays (0 when no
    /// straggler touches either endpoint).
    pub fn extra_delay(&self, from: ActorId, to: ActorId) -> SimTime {
        self.stragglers.iter().map(|s| s.extra(from, to)).sum()
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = LatencyModel::Constant(42);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), 42);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let model = LatencyModel::Uniform { min: 10, max: 20 };
        for _ in 0..1000 {
            let sample = model.sample(&mut rng);
            assert!((10..=20).contains(&sample));
        }
    }

    #[test]
    fn long_tail_is_at_least_base() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = LatencyModel::LongTail { base: 30, tail_mean: 50 };
        let mut above_base = 0;
        for _ in 0..1000 {
            let sample = model.sample(&mut rng);
            assert!(sample >= 30);
            if sample > 30 {
                above_base += 1;
            }
        }
        assert!(above_base > 500, "the tail should usually add something");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = LatencyModel::Uniform { min: 0, max: 1000 };
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let seq_a: Vec<SimTime> = (0..50).map(|_| model.sample(&mut a)).collect();
        let seq_b: Vec<SimTime> = (0..50).map(|_| model.sample(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn fault_probabilities_behave() {
        let mut rng = SmallRng::seed_from_u64(4);
        let never = FaultModel::none();
        assert!(!never.should_drop(&mut rng));
        assert!(!never.should_duplicate(&mut rng));
        let always = FaultModel { drop_probability: 1.0, duplicate_probability: 1.0, ..FaultModel::none() };
        assert!(always.should_drop(&mut rng));
        assert!(always.should_duplicate(&mut rng));
    }

    #[test]
    fn partition_severs_only_across_the_cut_and_only_while_open() {
        let partition = Partition { island: vec![0, 1], from_ms: 100, until_ms: 200 };
        // Across the cut, while open: severed, in both directions.
        assert!(partition.severs(100, 0, 2));
        assert!(partition.severs(150, 2, 1));
        // Within the island or within the mainland: never.
        assert!(!partition.severs(150, 0, 1));
        assert!(!partition.severs(150, 2, 3));
        // Before it opens / after it heals: never.
        assert!(!partition.severs(99, 0, 2));
        assert!(!partition.severs(200, 0, 2), "heal boundary is exclusive");
    }

    #[test]
    fn fault_model_combines_partitions() {
        let faults = FaultModel {
            partitions: vec![
                Partition { island: vec![0], from_ms: 0, until_ms: 50 },
                Partition { island: vec![1], from_ms: 100, until_ms: 150 },
            ],
            ..FaultModel::none()
        };
        assert!(faults.severs(10, 0, 1), "first episode");
        assert!(!faults.severs(75, 0, 1), "between episodes");
        assert!(faults.severs(120, 2, 1), "second episode");
        assert!(!FaultModel::none().severs(10, 0, 1));
    }

    #[test]
    fn stragglers_delay_crossing_traffic_only() {
        let faults = FaultModel {
            stragglers: vec![
                Straggler { actors: vec![3], extra_ms: 400 },
                Straggler { actors: vec![3, 5], extra_ms: 100 },
            ],
            ..FaultModel::none()
        };
        // Either direction across a straggler pays; overlapping stragglers stack.
        assert_eq!(faults.extra_delay(0, 3), 500);
        assert_eq!(faults.extra_delay(3, 0), 500);
        assert_eq!(faults.extra_delay(0, 5), 100);
        // Untouched links are free.
        assert_eq!(faults.extra_delay(0, 1), 0);
        assert_eq!(FaultModel::none().extra_delay(0, 3), 0);
    }
}
