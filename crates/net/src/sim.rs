//! The deterministic discrete-event simulator.
//!
//! Actors exchange messages through a simulated network with per-link
//! latency and fault injection; every run is a pure function of its seed,
//! which is what lets the experiment harness attach confidence intervals
//! to Figure 2 by sweeping seeds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sereth_types::SimTime;

use crate::latency::{FaultModel, LatencyModel};
use crate::topology::{ActorId, Topology, TopologyKind};

/// One behavioural unit: a node, a client driver, a workload generator.
pub trait Actor<M> {
    /// Handles a delivered message or timer.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);
}

/// What the simulator hands an actor while it runs.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ActorId,
    topology: &'a Topology,
    latency: &'a LatencyModel,
    faults: &'a FaultModel,
    rng: &'a mut SmallRng,
    outbox: Vec<(SimTime, ActorId, M)>,
}

impl<'a, M: Clone> Context<'a, M> {
    /// Current simulated time in milliseconds.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The executing actor's id.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Network neighbors of the executing actor.
    pub fn neighbors(&self) -> &[ActorId] {
        self.topology.neighbors_of(self.self_id)
    }

    /// The deterministic RNG (actors must take all randomness from here).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to` over the network: latency is sampled (plus any
    /// straggler penalty on the link), and the fault model may drop,
    /// duplicate, or partition it away.
    pub fn send_to(&mut self, to: ActorId, msg: M) {
        send_one(self.now, self.self_id, to, self.latency, self.faults, self.rng, &mut self.outbox, msg);
    }

    /// Broadcasts `msg` to every neighbor (flood gossip's one hop).
    ///
    /// Equivalent to calling [`Context::send_to`] once per neighbor in
    /// neighbor order — same RNG draws, same outbox order, so delivery is
    /// deterministic — but iterating the topology's slice directly
    /// instead of cloning the neighbor list into a fresh `Vec` per call.
    pub fn broadcast(&mut self, msg: M) {
        let Self { now, self_id, topology, latency, faults, rng, outbox } = self;
        for &peer in topology.neighbors_of(*self_id) {
            send_one(*now, *self_id, peer, latency, faults, rng, outbox, msg.clone());
        }
    }

    /// Schedules `msg` back to the executing actor after exactly `delay`
    /// milliseconds — a reliable local timer (no loss, no jitter).
    pub fn wake_self(&mut self, delay: SimTime, msg: M) {
        self.outbox.push((self.now + delay, self.self_id, msg));
    }
}

/// One network send: the shared core of [`Context::send_to`] and
/// [`Context::broadcast`], free-standing so `broadcast` can borrow the
/// topology's neighbor slice while mutating the RNG and outbox.
#[allow(clippy::too_many_arguments)]
fn send_one<M: Clone>(
    now: SimTime,
    from: ActorId,
    to: ActorId,
    latency: &LatencyModel,
    faults: &FaultModel,
    rng: &mut SmallRng,
    outbox: &mut Vec<(SimTime, ActorId, M)>,
    msg: M,
) {
    if faults.severs(now, from, to) {
        return;
    }
    if faults.should_drop(rng) {
        return;
    }
    let extra = faults.extra_delay(from, to);
    let delay = latency.sample(rng) + extra;
    if faults.should_duplicate(rng) {
        outbox.push((now + delay, to, msg.clone()));
        let delay = latency.sample(rng) + extra;
        outbox.push((now + delay, to, msg));
    } else {
        outbox.push((now + delay, to, msg));
    }
}

struct QueuedEvent<M> {
    time: SimTime,
    seq: u64,
    target: ActorId,
    msg: M,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Network-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Peer wiring.
    pub topology: TopologyKind,
    /// Per-message delay distribution.
    pub latency: LatencyModel,
    /// Loss and duplication.
    pub faults: FaultModel,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            topology: TopologyKind::Complete,
            latency: LatencyModel::default(),
            faults: FaultModel::none(),
        }
    }
}

/// The simulation: actors, an event queue, and a seeded RNG.
pub struct Simulation<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    topology: Topology,
    latency: LatencyModel,
    faults: FaultModel,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    now: SimTime,
    seq: u64,
    rng: SmallRng,
    events_processed: u64,
}

impl<M: Clone> Simulation<M> {
    /// Builds a simulation over `actors` with the given network `config`
    /// and RNG `seed`. Identical seeds and actors produce identical runs.
    pub fn new(actors: Vec<Box<dyn Actor<M>>>, config: &NetworkConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topology = Topology::build(&config.topology, actors.len(), &mut rng);
        Self {
            actors,
            topology,
            latency: config.latency.clone(),
            faults: config.faults.clone(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            rng,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Injects an event from outside the simulation (e.g. the initial
    /// timers that bootstrap miners and workload drivers).
    pub fn schedule(&mut self, time: SimTime, target: ActorId, msg: M) {
        let event = QueuedEvent { time, seq: self.seq, target, msg };
        self.seq += 1;
        self.queue.push(Reverse(event));
    }

    /// Delivers the next event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else { return false };
        debug_assert!(event.time >= self.now, "time must not run backwards");
        self.now = event.time;
        self.events_processed += 1;

        let mut ctx = Context {
            now: self.now,
            self_id: event.target,
            topology: &self.topology,
            latency: &self.latency,
            faults: &self.faults,
            rng: &mut self.rng,
            outbox: Vec::new(),
        };
        self.actors[event.target].on_message(event.msg, &mut ctx);
        let outbox = ctx.outbox;
        for (time, target, msg) in outbox {
            let event = QueuedEvent { time, seq: self.seq, target, msg };
            self.seq += 1;
            self.queue.push(Reverse(event));
        }
        true
    }

    /// Runs until the queue drains or simulated time exceeds `end`.
    pub fn run_until(&mut self, end: SimTime) {
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.time > end {
                break;
            }
            self.step();
        }
        self.now = self.now.max(end);
    }

    /// Immutable access to an actor (for post-run inspection).
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id].as_ref()
    }

    /// Mutable access to an actor (for wiring before the run).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut (dyn Actor<M> + 'static) {
        self.actors[id].as_mut()
    }

    /// Consumes the simulation, returning its actors for inspection.
    pub fn into_actors(self) -> Vec<Box<dyn Actor<M>>> {
        self.actors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Tick,
    }

    /// Records everything it receives; replies to pings once.
    struct Recorder {
        received: Vec<(SimTime, TestMsg)>,
        reply_to: Option<ActorId>,
    }

    impl Actor<TestMsg> for Recorder {
        fn on_message(&mut self, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            self.received.push((ctx.now(), msg.clone()));
            if let (TestMsg::Ping(n), Some(peer)) = (&msg, self.reply_to) {
                if *n < 3 {
                    ctx.send_to(peer, TestMsg::Ping(n + 1));
                }
            }
        }
    }

    fn recorder_sim(latency: LatencyModel, seed: u64) -> Simulation<TestMsg> {
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![
            Box::new(Recorder { received: vec![], reply_to: Some(1) }),
            Box::new(Recorder { received: vec![], reply_to: Some(0) }),
        ];
        let config = NetworkConfig { topology: TopologyKind::Complete, latency, faults: FaultModel::none() };
        Simulation::new(actors, &config, seed)
    }

    #[test]
    fn ping_pong_converges_with_constant_latency() {
        let mut sim = recorder_sim(LatencyModel::Constant(10), 1);
        sim.schedule(0, 0, TestMsg::Ping(0));
        sim.run_until(1_000);
        // Ping(0) at t=0 to actor 0; replies bounce 0→1→0→1 with 10ms
        // latency: 4 deliveries total (n = 0..3).
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.now(), 1_000);
    }

    #[test]
    fn timers_fire_exactly() {
        struct Timer {
            fired_at: Vec<SimTime>,
        }
        impl Actor<TestMsg> for Timer {
            fn on_message(&mut self, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                if msg == TestMsg::Tick {
                    self.fired_at.push(ctx.now());
                    if self.fired_at.len() < 3 {
                        ctx.wake_self(100, TestMsg::Tick);
                    }
                }
            }
        }
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![Box::new(Timer { fired_at: vec![] })];
        let mut sim = Simulation::new(actors, &NetworkConfig::default(), 1);
        sim.schedule(50, 0, TestMsg::Tick);
        sim.run_until(10_000);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn identical_seeds_produce_identical_histories() {
        let run = |seed: u64| {
            let mut sim = recorder_sim(LatencyModel::Uniform { min: 5, max: 500 }, seed);
            sim.schedule(0, 0, TestMsg::Ping(0));
            sim.run_until(5_000);
            (sim.events_processed(), sim.now())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn different_seeds_usually_differ_in_timing() {
        // Smoke test that the rng actually feeds latency: with a wide
        // uniform range two seeds are overwhelmingly unlikely to match
        // event-for-event; we just check the sim runs for both.
        let mut a = recorder_sim(LatencyModel::Uniform { min: 5, max: 500 }, 1);
        a.schedule(0, 0, TestMsg::Ping(0));
        a.run_until(5_000);
        let mut b = recorder_sim(LatencyModel::Uniform { min: 5, max: 500 }, 2);
        b.schedule(0, 0, TestMsg::Ping(0));
        b.run_until(5_000);
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![
            Box::new(Recorder { received: vec![], reply_to: Some(1) }),
            Box::new(Recorder { received: vec![], reply_to: None }),
        ];
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(1),
            faults: FaultModel { drop_probability: 1.0, duplicate_probability: 0.0, ..FaultModel::none() },
        };
        let mut sim = Simulation::new(actors, &config, 1);
        // The externally-scheduled event arrives (it bypasses the network);
        // the actor's reply is dropped.
        sim.schedule(0, 0, TestMsg::Ping(0));
        sim.run_until(1_000);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn duplicates_arrive_twice() {
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![
            Box::new(Recorder { received: vec![], reply_to: Some(1) }),
            Box::new(Recorder { received: vec![], reply_to: None }),
        ];
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(1),
            faults: FaultModel { drop_probability: 0.0, duplicate_probability: 1.0, ..FaultModel::none() },
        };
        let mut sim = Simulation::new(actors, &config, 1);
        sim.schedule(0, 0, TestMsg::Ping(5)); // n >= 3: recorder won't re-reply
        sim.run_until(1_000);
        // 1 external + 2 duplicated deliveries of the reply… but Ping(5)
        // doesn't trigger a reply; so just the external one.
        assert_eq!(sim.events_processed(), 1);

        // Now with a replying ping: reply is duplicated.
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![
            Box::new(Recorder { received: vec![], reply_to: Some(1) }),
            Box::new(Recorder { received: vec![], reply_to: None }),
        ];
        let mut sim = Simulation::new(actors, &config, 1);
        sim.schedule(0, 0, TestMsg::Ping(0));
        sim.run_until(1_000);
        assert_eq!(sim.events_processed(), 3, "external + duplicated reply");
    }

    #[test]
    fn partitioned_links_drop_messages_until_heal() {
        use crate::latency::Partition;

        /// Pings its peer every 100 ms forever.
        struct Pinger {
            peer: ActorId,
        }
        impl Actor<TestMsg> for Pinger {
            fn on_message(&mut self, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                if msg == TestMsg::Tick {
                    ctx.send_to(self.peer, TestMsg::Ping(0));
                    if ctx.now() < 1_000 {
                        ctx.wake_self(100, TestMsg::Tick);
                    }
                }
            }
        }
        /// Appends delivery times to a shared buffer.
        struct SharedRecorder {
            deliveries: std::sync::Arc<std::sync::Mutex<Vec<SimTime>>>,
        }
        impl Actor<TestMsg> for SharedRecorder {
            fn on_message(&mut self, _msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                self.deliveries.lock().unwrap().push(ctx.now());
            }
        }

        let deliveries = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<TestMsg>>> =
            vec![Box::new(Pinger { peer: 1 }), Box::new(SharedRecorder { deliveries: deliveries.clone() })];
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(1),
            faults: FaultModel {
                partitions: vec![Partition { island: vec![1], from_ms: 250, until_ms: 650 }],
                ..FaultModel::none()
            },
        };
        let mut sim = Simulation::new(actors, &config, 1);
        sim.schedule(100, 0, TestMsg::Tick);
        sim.run_until(2_000);
        // Ticks at 100..=1000 send 10 pings; those sent at 300..600 (4 of
        // them) are severed. Timers keep firing — the partition affects
        // only cross-cut traffic.
        let times = deliveries.lock().unwrap().clone();
        assert_eq!(times, vec![101, 201, 701, 801, 901, 1001]);
    }

    #[test]
    fn broadcast_matches_per_neighbor_sends_and_is_deterministic() {
        // `broadcast` must be observationally identical to the hand-rolled
        // per-neighbor `send_to` loop it replaced (which cloned the
        // neighbor list per call): same RNG draws, same outbox order, so
        // two sims — one broadcasting, one looping — produce the same
        // delivery history under jittery latency, duplication, and loss.
        #[derive(Clone, Copy, PartialEq)]
        enum Mode {
            Broadcast,
            Loop,
        }
        struct Flooder {
            mode: Mode,
            log: std::sync::Arc<std::sync::Mutex<Vec<(SimTime, ActorId, u32)>>>,
        }
        impl Actor<TestMsg> for Flooder {
            fn on_message(&mut self, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                let TestMsg::Ping(n) = msg else { return };
                self.log.lock().unwrap().push((ctx.now(), ctx.self_id(), n));
                if n >= 3 {
                    return;
                }
                match self.mode {
                    Mode::Broadcast => ctx.broadcast(TestMsg::Ping(n + 1)),
                    Mode::Loop => {
                        let neighbors: Vec<ActorId> = ctx.neighbors().to_vec();
                        for peer in neighbors {
                            ctx.send_to(peer, TestMsg::Ping(n + 1));
                        }
                    }
                }
            }
        }
        let run = |mode: Mode| {
            let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let actors: Vec<Box<dyn Actor<TestMsg>>> = (0..5)
                .map(|_| Box::new(Flooder { mode, log: log.clone() }) as Box<dyn Actor<TestMsg>>)
                .collect();
            let config = NetworkConfig {
                topology: TopologyKind::Ring,
                latency: LatencyModel::Uniform { min: 5, max: 500 },
                faults: FaultModel {
                    drop_probability: 0.1,
                    duplicate_probability: 0.2,
                    ..FaultModel::none()
                },
            };
            let mut sim = Simulation::new(actors, &config, 99);
            sim.schedule(0, 0, TestMsg::Ping(0));
            sim.run_until(100_000);
            let history = log.lock().unwrap().clone();
            (history, sim.events_processed())
        };
        let (broadcast_history, broadcast_events) = run(Mode::Broadcast);
        let (loop_history, loop_events) = run(Mode::Loop);
        assert!(broadcast_events > 1, "the flood must actually fan out");
        assert_eq!(broadcast_events, loop_events);
        assert_eq!(broadcast_history, loop_history, "delivery order must be identical");
        // And the whole thing is a pure function of the seed.
        let (again, _) = run(Mode::Broadcast);
        assert_eq!(broadcast_history, again);
    }

    #[test]
    fn straggler_links_delay_but_deliver() {
        use crate::latency::Straggler;
        struct TimeLogger {
            times: std::sync::Arc<std::sync::Mutex<Vec<SimTime>>>,
        }
        impl Actor<TestMsg> for TimeLogger {
            fn on_message(&mut self, _msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
                self.times.lock().unwrap().push(ctx.now());
            }
        }
        let times = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<TestMsg>>> = vec![
            Box::new(Recorder { received: vec![], reply_to: Some(1) }),
            Box::new(TimeLogger { times: times.clone() }),
        ];
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(1),
            faults: FaultModel {
                stragglers: vec![Straggler { actors: vec![1], extra_ms: 250 }],
                ..FaultModel::none()
            },
        };
        let mut sim = Simulation::new(actors, &config, 1);
        sim.schedule(0, 0, TestMsg::Ping(0));
        sim.run_until(10_000);
        // External delivery at t=0; the reply to actor 1 pays 1 + 250.
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(times.lock().unwrap().clone(), vec![251]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let actors: Vec<Box<dyn Actor<TestMsg>>> =
            vec![Box::new(Recorder { received: vec![], reply_to: None })];
        let mut sim = Simulation::new(actors, &NetworkConfig::default(), 1);
        sim.run_until(9_999);
        assert_eq!(sim.now(), 9_999);
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn events_beyond_horizon_stay_queued() {
        let actors: Vec<Box<dyn Actor<TestMsg>>> =
            vec![Box::new(Recorder { received: vec![], reply_to: None })];
        let mut sim = Simulation::new(actors, &NetworkConfig::default(), 1);
        sim.schedule(5_000, 0, TestMsg::Tick);
        sim.run_until(1_000);
        assert_eq!(sim.events_processed(), 0);
        sim.run_until(6_000);
        assert_eq!(sim.events_processed(), 1);
    }
}
