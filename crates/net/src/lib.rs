//! A deterministic discrete-event network simulator.
//!
//! Substitutes for the paper's AWS EC2 testbed (see `DESIGN.md` §7): actors
//! (nodes, clients, workload drivers) exchange messages over links with
//! sampled latency, optional loss/duplication, and configurable topology.
//! Every run is a pure function of its seed, so the experiment harness can
//! sweep seeds to reproduce Figure 2's confidence bands.
//!
//! * [`sim`] — the event queue, [`sim::Actor`] trait, and [`sim::Context`];
//! * [`latency`] — delay distributions and fault injection;
//! * [`topology`] — complete/ring/star/random peer wirings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod sim;
pub mod topology;

pub use latency::{FaultModel, LatencyModel};
pub use sim::{Actor, Context, NetworkConfig, Simulation};
pub use topology::{ActorId, Topology, TopologyKind};
