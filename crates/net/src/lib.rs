//! A deterministic discrete-event network simulator.
//!
//! Substitutes for the paper's AWS EC2 testbed (see `DESIGN.md` §7): actors
//! (nodes, clients, workload drivers) exchange messages over links with
//! sampled latency, optional loss/duplication, and configurable topology.
//! Every run is a pure function of its seed, so the experiment harness can
//! sweep seeds to reproduce Figure 2's confidence bands.
//!
//! * [`sim`] — the event queue, [`sim::Actor`] trait, and [`sim::Context`];
//! * [`latency`] — delay distributions and fault injection;
//! * [`topology`] — complete/ring/star/random peer wirings.
//!
//! # Determinism contract
//!
//! Replaying `(actors, topology, latency, faults, seed)` reproduces a
//! run event-for-event. Three rules make that hold:
//!
//! * events pop in `(time, sequence)` order — two deliveries at the
//!   same instant arrive in the order they were *sent* (FIFO ties);
//! * all randomness — latency jitter, drop/duplicate draws, anything
//!   actors draw through [`sim::Context::rng`] — comes from one RNG
//!   seeded at construction and advanced only by the event loop;
//! * faults are evaluated at **send** time, so a partition or straggler
//!   window applies to the moment a message enters the link, not the
//!   moment it would surface.
//!
//! The multi-node cluster scenarios (`sereth-sim::cluster`) and the
//! NET-SCALE bench lean on this: their convergence times are simulated
//! time, hence host-independent and comparable against committed
//! baselines.
//!
//! # Fault vocabulary
//!
//! [`latency::FaultModel`] composes per-message drop probability,
//! duplication probability, timed [`latency::Partition`] windows
//! (messages crossing a severed cut are silently lost), and
//! [`latency::Straggler`] links (a fixed extra delay on every message
//! touching a slow actor).
//!
//! # Examples
//!
//! Two actors, a ping and its echo:
//!
//! ```
//! use sereth_net::latency::LatencyModel;
//! use sereth_net::sim::{Actor, Context, NetworkConfig, Simulation};
//! use sereth_net::topology::TopologyKind;
//!
//! struct Echo;
//! impl Actor<u64> for Echo {
//!     fn on_message(&mut self, msg: u64, ctx: &mut Context<'_, u64>) {
//!         if msg == 0 {
//!             ctx.broadcast(msg + 1); // ping every neighbor back
//!         }
//!     }
//! }
//!
//! let config = NetworkConfig {
//!     topology: TopologyKind::Complete,
//!     latency: LatencyModel::Constant(5),
//!     ..NetworkConfig::default()
//! };
//! let mut sim = Simulation::new(vec![Box::new(Echo), Box::new(Echo)], &config, 42);
//! sim.schedule(0, 0, 0); // external ping into actor 0 at t = 0
//! sim.run_until(1_000);
//! assert_eq!(sim.events_processed(), 2); // the ping and its echo
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod sim;
pub mod topology;

pub use latency::{FaultModel, LatencyModel};
pub use sim::{Actor, Context, NetworkConfig, Simulation};
pub use topology::{ActorId, Topology, TopologyKind};
