//! Peer topologies: who gossips with whom.

use rand::seq::SliceRandom;
use rand::Rng;

/// Identifies an actor in the simulation.
pub type ActorId = usize;

/// How peers are wired together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// Every peer links to every other (the paper's small private nets).
    Complete,
    /// A ring; gossip takes O(n) hops.
    Ring,
    /// Everyone links to peer 0.
    Star,
    /// Each peer links to `degree` random distinct others (undirected).
    Random {
        /// Target degree per peer.
        degree: usize,
    },
}

/// An undirected adjacency over `n` actors.
#[derive(Debug, Clone)]
pub struct Topology {
    neighbors: Vec<Vec<ActorId>>,
}

impl Topology {
    /// Builds a topology over `n` peers. `rng` is only consulted for
    /// [`TopologyKind::Random`].
    pub fn build<R: Rng + ?Sized>(kind: &TopologyKind, n: usize, rng: &mut R) -> Self {
        let mut neighbors: Vec<Vec<ActorId>> = vec![Vec::new(); n];
        match kind {
            TopologyKind::Complete => {
                for (a, peers) in neighbors.iter_mut().enumerate() {
                    for b in 0..n {
                        if a != b {
                            peers.push(b);
                        }
                    }
                }
            }
            TopologyKind::Ring => {
                if n > 1 {
                    for a in 0..n {
                        let next = (a + 1) % n;
                        neighbors[a].push(next);
                        neighbors[next].push(a);
                    }
                }
            }
            TopologyKind::Star => {
                for a in 1..n {
                    neighbors[0].push(a);
                    neighbors[a].push(0);
                }
            }
            TopologyKind::Random { degree } => {
                let degree = (*degree).min(n.saturating_sub(1));
                for a in 0..n {
                    let mut candidates: Vec<ActorId> = (0..n).filter(|&b| b != a).collect();
                    candidates.shuffle(rng);
                    for &b in candidates.iter().take(degree) {
                        if !neighbors[a].contains(&b) {
                            neighbors[a].push(b);
                            neighbors[b].push(a);
                        }
                    }
                }
                // Guarantee connectivity with a backbone ring.
                if n > 1 {
                    for a in 0..n {
                        let next = (a + 1) % n;
                        if !neighbors[a].contains(&next) {
                            neighbors[a].push(next);
                            neighbors[next].push(a);
                        }
                    }
                }
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup();
        }
        Self { neighbors }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` when the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The neighbors of `actor`.
    pub fn neighbors_of(&self, actor: ActorId) -> &[ActorId] {
        &self.neighbors[actor]
    }

    /// `true` if every peer can reach every other (BFS from 0).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(a) = stack.pop() {
            for &b in &self.neighbors[a] {
                if !seen[b] {
                    seen[b] = true;
                    count += 1;
                    stack.push(b);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_topology_links_everyone() {
        let mut rng = SmallRng::seed_from_u64(1);
        let topo = Topology::build(&TopologyKind::Complete, 5, &mut rng);
        for a in 0..5 {
            assert_eq!(topo.neighbors_of(a).len(), 4);
        }
        assert!(topo.is_connected());
    }

    #[test]
    fn ring_topology_has_degree_two() {
        let mut rng = SmallRng::seed_from_u64(1);
        let topo = Topology::build(&TopologyKind::Ring, 6, &mut rng);
        for a in 0..6 {
            assert_eq!(topo.neighbors_of(a).len(), 2);
        }
        assert!(topo.is_connected());
    }

    #[test]
    fn star_topology_centres_on_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let topo = Topology::build(&TopologyKind::Star, 5, &mut rng);
        assert_eq!(topo.neighbors_of(0).len(), 4);
        for a in 1..5 {
            assert_eq!(topo.neighbors_of(a), &[0]);
        }
        assert!(topo.is_connected());
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let a = Topology::build(&TopologyKind::Random { degree: 3 }, 12, &mut rng_a);
        let b = Topology::build(&TopologyKind::Random { degree: 3 }, 12, &mut rng_b);
        assert!(a.is_connected());
        for i in 0..12 {
            assert_eq!(a.neighbors_of(i), b.neighbors_of(i), "peer {i}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in [TopologyKind::Complete, TopologyKind::Ring, TopologyKind::Star] {
            let one = Topology::build(&kind, 1, &mut rng);
            assert!(one.neighbors_of(0).is_empty());
            assert!(one.is_connected());
            let zero = Topology::build(&kind, 0, &mut rng);
            assert!(zero.is_connected());
            assert!(zero.is_empty());
        }
    }
}
